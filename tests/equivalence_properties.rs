//! Property-based tests of the protocol's correctness guarantees
//! (Theorem 3.8 and the treaty invariants), driven by proptest.

use proptest::prelude::*;

use homeostasis::lang::{programs, Database};
use homeostasis::protocol::correctness::verify_round;
use homeostasis::protocol::{
    HomeostasisCluster, Loc, OptimizerConfig, ReplicatedCounters, ReplicatedMode,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any schedule of T1/T2 from any starting state is observationally
    /// equivalent to its serial execution, with and without the optimizer.
    #[test]
    fn general_protocol_matches_serial_execution(
        x in -30i64..60,
        y in -30i64..60,
        schedule in proptest::collection::vec(0usize..2, 1..60),
        use_optimizer in proptest::bool::ANY,
    ) {
        let optimizer = if use_optimizer {
            Some(OptimizerConfig { lookahead: 6, futures: 2, seed: 9 })
        } else {
            None
        };
        let mut cluster = HomeostasisCluster::new(
            vec![programs::t1(), programs::t2()],
            Loc::from_pairs([("x", 0usize), ("y", 1usize)]),
            2,
            Database::from_pairs([("x", x), ("y", y)]),
            optimizer,
        );
        let mut serial = Database::from_pairs([("x", x), ("y", y)]);
        for &t in &schedule {
            let out = cluster.execute(t).unwrap();
            prop_assert!(out.committed);
            serial = homeostasis::lang::Evaluator::eval(
                &cluster.transactions()[t], &serial, &[],
            ).unwrap().database;
        }
        prop_assert!(verify_round(&cluster).is_equivalent());
        prop_assert_eq!(cluster.global_database(), serial);
    }

    /// The replicated-counter path tracks the serial decrement/refill
    /// semantics exactly, for every mode, site count and operation pattern,
    /// and never lets a counter drop below its treaty bound.
    #[test]
    fn replicated_counters_match_serial_semantics(
        sites in 2usize..5,
        initial in 2i64..60,
        refill in 5i64..80,
        ops in proptest::collection::vec((0usize..4, 1i64..3), 1..120),
        even_split in proptest::bool::ANY,
    ) {
        let mode = if even_split {
            ReplicatedMode::EvenSplit
        } else {
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig { lookahead: 6, futures: 2, seed: 3 }),
            }
        };
        let mut counters = ReplicatedCounters::new(sites, mode);
        let obj = homeostasis::lang::ids::ObjId::new("stock[0]");
        counters.register(obj.clone(), initial, 1);
        let mut serial = initial;
        for (site, amount) in ops {
            let site = site % sites;
            counters.order(site, &obj, amount, Some(refill));
            serial = if serial - amount >= 1 { serial - amount } else { refill };
            prop_assert_eq!(counters.logical_value(&obj), serial);
            prop_assert!(counters.logical_value(&obj) >= 1);
        }
    }

    /// Symbolic-table evaluation agrees with direct evaluation on arbitrary
    /// databases — Definition 2.2 as a property.
    #[test]
    fn symbolic_tables_preserve_semantics(
        x in -100i64..100,
        y in -100i64..100,
        which in 0usize..4,
    ) {
        let txn = match which {
            0 => programs::t1(),
            1 => programs::t2(),
            2 => programs::t3(),
            _ => programs::t4(),
        };
        let table = homeostasis::analysis::SymbolicTable::analyze(&txn);
        let db = Database::from_pairs([("x", x), ("y", y)]);
        let direct = homeostasis::lang::Evaluator::eval(&txn, &db, &[]).unwrap();
        let via = table.eval_via_table(&db, &[]).unwrap().expect("a row matches");
        prop_assert_eq!(direct.database, via.database);
        prop_assert_eq!(direct.log, via.log);
    }
}
