//! Property-based tests of the protocol's correctness guarantees
//! (Theorem 3.8 and the treaty invariants).
//!
//! Driven by the in-tree deterministic RNG rather than proptest: the build
//! environment is offline, and seeded generation keeps every failure exactly
//! reproducible from the case number printed in the assertion message.

use homeostasis::lang::{programs, Database};
use homeostasis::protocol::correctness::verify_round;
use homeostasis::protocol::{HomeostasisCluster, Loc, OptimizerConfig, ReplicatedMode};
use homeostasis::runtime::{ReplicatedRuntime, SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, Timer};

const CASES: usize = 24;

/// Any schedule of T1/T2 from any starting state is observationally
/// equivalent to its serial execution, with and without the optimizer.
#[test]
fn general_protocol_matches_serial_execution() {
    let mut rng = DetRng::seed_from(0xE0E0);
    for case in 0..CASES {
        let x = rng.int_inclusive(-30, 59);
        let y = rng.int_inclusive(-30, 59);
        let schedule: Vec<usize> = (0..rng.int_inclusive(1, 59))
            .map(|_| rng.index(2))
            .collect();
        let use_optimizer = rng.chance(0.5);
        let optimizer = if use_optimizer {
            Some(OptimizerConfig {
                lookahead: 6,
                futures: 2,
                seed: 9,
            })
        } else {
            None
        };
        let mut cluster = HomeostasisCluster::new(
            vec![programs::t1(), programs::t2()],
            Loc::from_pairs([("x", 0usize), ("y", 1usize)]),
            2,
            Database::from_pairs([("x", x), ("y", y)]),
            optimizer,
        );
        let mut serial = Database::from_pairs([("x", x), ("y", y)]);
        for &t in &schedule {
            let out = cluster.execute(t).unwrap();
            assert!(out.committed, "case {case}: transaction {t} aborted");
            serial = homeostasis::lang::Evaluator::eval(&cluster.transactions()[t], &serial, &[])
                .unwrap()
                .database;
        }
        assert!(
            verify_round(&cluster).is_equivalent(),
            "case {case}: round not equivalent (x={x}, y={y}, schedule={schedule:?}, optimizer={use_optimizer})"
        );
        assert_eq!(
            cluster.global_database(),
            serial,
            "case {case}: global state diverged from serial execution"
        );
    }
}

/// The replicated-counter path tracks the serial decrement/refill semantics
/// exactly, for every mode, site count and operation pattern, and never lets
/// a counter drop below its treaty bound.
#[test]
fn replicated_counters_match_serial_semantics() {
    let mut rng = DetRng::seed_from(0xC0C0);
    for case in 0..CASES {
        let sites = rng.int_inclusive(2, 4) as usize;
        let initial = rng.int_inclusive(2, 59);
        let refill = rng.int_inclusive(5, 79);
        let ops: Vec<(usize, i64)> = (0..rng.int_inclusive(1, 119))
            .map(|_| (rng.index(4), rng.int_inclusive(1, 2)))
            .collect();
        let even_split = rng.chance(0.5);
        let mode = if even_split {
            ReplicatedMode::EvenSplit
        } else {
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 6,
                    futures: 2,
                    seed: 3,
                }),
            }
        };
        let mut counters = ReplicatedRuntime::new(sites, mode).with_timer(Timer::fixed_zero());
        let obj = homeostasis::lang::ids::ObjId::new("stock[0]");
        counters.register(obj.clone(), initial, 1);
        let mut serial = initial;
        for (site, amount) in ops {
            let site = site % sites;
            counters.execute(
                site,
                SiteOp::Order {
                    obj: obj.clone(),
                    amount,
                    refill_to: Some(refill),
                },
            );
            serial = if serial - amount >= 1 {
                serial - amount
            } else {
                refill
            };
            assert_eq!(
                counters.logical_value(&obj),
                serial,
                "case {case}: counter diverged (sites={sites}, initial={initial}, refill={refill}, even_split={even_split})"
            );
            assert!(
                counters.logical_value(&obj) >= 1,
                "case {case}: treaty bound violated"
            );
        }
    }
}

/// Symbolic-table evaluation agrees with direct evaluation on arbitrary
/// databases — Definition 2.2 as a property.
#[test]
fn symbolic_tables_preserve_semantics() {
    let mut rng = DetRng::seed_from(0xABBA);
    for case in 0..CASES {
        let x = rng.int_inclusive(-100, 99);
        let y = rng.int_inclusive(-100, 99);
        let which = rng.index(4);
        let txn = match which {
            0 => programs::t1(),
            1 => programs::t2(),
            2 => programs::t3(),
            _ => programs::t4(),
        };
        let table = homeostasis::analysis::SymbolicTable::analyze(&txn);
        let db = Database::from_pairs([("x", x), ("y", y)]);
        let direct = homeostasis::lang::Evaluator::eval(&txn, &db, &[]).unwrap();
        let via = table
            .eval_via_table(&db, &[])
            .unwrap()
            .expect("a row matches");
        assert_eq!(
            direct.database, via.database,
            "case {case}: database mismatch (x={x}, y={y}, which={which})"
        );
        assert_eq!(
            direct.log, via.log,
            "case {case}: print log mismatch (x={x}, y={y}, which={which})"
        );
    }
}
