//! Batched-vs-serial equivalence on the shared `SiteRuntime` surface.
//!
//! The batched submission path (`SiteRuntime::submit_batch`) is an
//! optimization, not a semantic: a runtime fed a seeded operation stream in
//! chunks must end in exactly the state it reaches executing the same
//! stream one operation at a time — same per-operation outcomes, same
//! values on every site, same counter totals, and a WAL that recovers to
//! the same durable state. The suite checks that on every runtime:
//!
//! * `ReplicatedRuntime` (homeo and OPT) — where batching group-commits
//!   runs of within-treaty writes, so the WAL's transaction grouping
//!   differs but its *recovered state* must be byte-identical;
//! * the 2PC and local baselines — where batching only skips inbox
//!   round-trips, so even the WAL frame must be byte-identical;
//! * `ClusterRuntime` on both backends — the threaded cluster (real worker
//!   threads over channels) and the deterministic simulation under a seeded
//!   fault schedule (Table 1 RTTs, jitter, reordering, retransmitted
//!   drops) — where a batch travels as one `Submit` frame; the protocol
//!   traffic, engine transactions and WAL frames must come out identical.

use homeostasis::baselines::{LocalRuntime, TwoPcRuntime};
use homeostasis::cluster::{ClusterConfig, ClusterRuntime, SimNetConfig};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::{OptimizerConfig, ReplicatedMode};
use homeostasis::runtime::{OpOutcome, ReplicatedRuntime, SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, RttMatrix, Timer};
use homeostasis::store::Engine;

const SITES: usize = 3;
const ITEMS: usize = 10;
const INITIAL: i64 = 30;
const REFILL: i64 = 45;
const OPS: usize = 300;

fn item_obj(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

/// A seeded mixed stream: mostly orders, some increments, rare pins.
fn op_stream(seed: u64) -> Vec<(usize, SiteOp)> {
    let mut rng = DetRng::seed_from(seed);
    (0..OPS)
        .map(|_| {
            let site = rng.index(SITES);
            let obj = item_obj(rng.index(ITEMS));
            let op = match rng.index(10) {
                0..=6 => SiteOp::Order {
                    obj,
                    amount: rng.int_inclusive(1, 3),
                    refill_to: Some(REFILL),
                },
                7 | 8 => SiteOp::Increment {
                    obj,
                    amount: rng.int_inclusive(1, 4),
                },
                _ => SiteOp::ForceSync { obj },
            };
            (site, op)
        })
        .collect()
}

fn build(label: &str) -> Box<dyn SiteRuntime> {
    let homeo_mode = ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 8,
            futures: 2,
            seed: 13,
        }),
    };
    let mut runtime: Box<dyn SiteRuntime> = match label {
        "homeo" => {
            Box::new(ReplicatedRuntime::new(SITES, homeo_mode).with_timer(Timer::fixed_zero()))
        }
        "opt" => Box::new(
            ReplicatedRuntime::new(SITES, ReplicatedMode::EvenSplit)
                .with_timer(Timer::fixed_zero()),
        ),
        "2pc" => {
            let mut c = TwoPcRuntime::new(SITES);
            for i in 0..ITEMS {
                c.populate(item_obj(i), INITIAL);
            }
            return Box::new(c);
        }
        "local" => {
            let mut l = LocalRuntime::new(SITES);
            for i in 0..ITEMS {
                l.populate(item_obj(i), INITIAL);
            }
            return Box::new(l);
        }
        "cluster-threaded" => Box::new(ClusterRuntime::threaded(
            SITES,
            ClusterConfig::new(homeo_mode).with_timer(Timer::fixed_zero()),
        )),
        "cluster-sim-faulty" => Box::new(ClusterRuntime::sim(
            SITES,
            ClusterConfig::new(homeo_mode).with_timer(Timer::fixed_zero()),
            SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xFA17),
        )),
        other => panic!("unknown runtime label `{other}`"),
    };
    for i in 0..ITEMS {
        runtime.ensure_registered(&item_obj(i), INITIAL, 1);
    }
    runtime
}

/// Every runtime label under test. The sim backend runs a seeded fault
/// schedule; everything else is fault-free.
fn labels() -> [&'static str; 6] {
    [
        "homeo",
        "opt",
        "2pc",
        "local",
        "cluster-threaded",
        "cluster-sim-faulty",
    ]
}

/// Executes the stream one op at a time (`execute`).
fn run_serial(runtime: &mut dyn SiteRuntime, ops: &[(usize, SiteOp)]) -> Vec<OpOutcome> {
    ops.iter()
        .map(|(site, op)| runtime.execute(*site, op.clone()))
        .collect()
}

/// Executes the stream through `submit_batch`, chunking per-site runs of
/// varying length (1, 2, 5, 17, 64, cycling) so every chunk shape is hit.
fn run_batched(runtime: &mut dyn SiteRuntime, ops: &[(usize, SiteOp)]) -> Vec<OpOutcome> {
    let chunk_sizes = [1usize, 2, 5, 17, 64];
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut cursor = 0;
    let mut next_size = 0;
    while cursor < ops.len() {
        // A batch targets one site: take the run of ops for the next op's
        // site, capped at the cycling chunk size.
        let site = ops[cursor].0;
        let cap = chunk_sizes[next_size % chunk_sizes.len()];
        next_size += 1;
        let mut batch = Vec::new();
        while cursor < ops.len() && ops[cursor].0 == site && batch.len() < cap {
            batch.push(ops[cursor].1.clone());
            cursor += 1;
        }
        outcomes.extend(runtime.submit_batch(site, &batch));
    }
    outcomes
}

/// The durable state a WAL frame recovers to.
fn recovered_state(frame: &[u8]) -> Vec<(String, i64)> {
    let engine = Engine::reopen_from_frame(frame).expect("intact frame");
    engine.snapshot().into_iter().collect()
}

#[test]
fn submit_batch_is_equivalent_to_one_at_a_time_on_every_runtime() {
    let ops = op_stream(0xBA7C);
    for label in labels() {
        let mut serial = build(label);
        let serial_outcomes = run_serial(serial.as_mut(), &ops);
        let mut batched = build(label);
        let batched_outcomes = run_batched(batched.as_mut(), &ops);

        assert_eq!(
            serial_outcomes, batched_outcomes,
            "{label}: per-operation outcomes diverged"
        );
        // Compare the logs while the client-driven stream is the only
        // traffic there has been: each polled operation ran to completion,
        // so both runs are quiescent and their per-site logs comparable.
        // (The `synchronize` below folds every counter *concurrently* on
        // the threaded backend, which interleaves the fold's install writes
        // in thread-timing order — equivalent state, unordered log.)
        for site in 0..SITES {
            let serial_frame = serial.engine(site).wal_frame();
            let batched_frame = batched.engine(site).wal_frame();
            // The WAL must recover to byte-identical durable state on every
            // site, batched or not.
            assert_eq!(
                recovered_state(&serial_frame),
                recovered_state(&batched_frame),
                "{label}: site {site} recovers differently"
            );
            // Engine-level commit structure: identical frames for runtimes
            // without group commit; a shorter (never longer) log with it.
            match label {
                "homeo" | "opt" => assert!(
                    serial.engine(site).wal_len() >= batched.engine(site).wal_len(),
                    "{label}: group commit must not grow the log"
                ),
                _ => assert_eq!(
                    serial_frame, batched_frame,
                    "{label}: site {site} WAL frames must be byte-identical"
                ),
            }
        }
        // Fold outstanding deltas so every site holds the authoritative
        // state, then compare values through the shared surface.
        serial.synchronize(0);
        batched.synchronize(0);
        for i in 0..ITEMS {
            for site in 0..SITES {
                assert_eq!(
                    serial.value_at(site, &item_obj(i)),
                    batched.value_at(site, &item_obj(i)),
                    "{label}: item {i} at site {site} diverged"
                );
            }
        }
    }
}

#[test]
fn batched_runs_are_reproducible_under_the_fault_schedule() {
    // The sim backend consumes its seeded network RNG per frame; batching
    // must leave the frame sequence — and with it the whole run —
    // byte-for-byte reproducible.
    let run = || {
        let ops = op_stream(0x5EED);
        let mut runtime = build("cluster-sim-faulty");
        let outcomes = run_batched(runtime.as_mut(), &ops);
        runtime.synchronize(0);
        let values: Vec<i64> = (0..ITEMS)
            .map(|i| runtime.value_at(0, &item_obj(i)))
            .collect();
        let wals: Vec<Vec<u8>> = (0..SITES).map(|s| runtime.engine(s).wal_frame()).collect();
        (outcomes, values, wals)
    };
    assert_eq!(run(), run());
}
