//! Telemetry-layer integration: histogram accuracy against exact
//! sort-based quantiles under seeded workloads, merge algebra over random
//! partitions, top-bucket saturation, and — the property that makes the
//! instrumentation safe to leave on — **scrape non-interference**: a
//! cluster whose metrics endpoint is polled mid-run produces execution
//! fingerprints byte-identical to an unobserved run, on every backend.

use homeostasis::cluster::{ClusterConfig, ClusterRuntime, SimNetConfig};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::{OptimizerConfig, ReplicatedMode};
use homeostasis::runtime::{SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, RttMatrix, Timer};
use homeostasis::telemetry::Histogram;

/// Exact quantile with the same rank convention the histogram documents:
/// the `ceil(q·n)`-th smallest sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn histogram_quantiles_stay_within_bucket_error_across_distributions() {
    // Three shapes latency streams actually take: uniform noise, a long
    // exponential tail, and the bimodal fast-path/sync-path split.
    type Stream = Box<dyn Fn(&mut DetRng) -> u64>;
    let streams: Vec<(&str, Stream)> = vec![
        (
            "uniform",
            Box::new(|rng: &mut DetRng| rng.int_inclusive(1, 50_000) as u64),
        ),
        (
            "exponential",
            Box::new(|rng: &mut DetRng| (-(1.0 - rng.unit()).ln() * 2_000.0) as u64),
        ),
        (
            "bimodal",
            Box::new(|rng: &mut DetRng| {
                if rng.chance(0.9) {
                    rng.int_inclusive(20, 80) as u64
                } else {
                    rng.int_inclusive(100_000, 300_000) as u64
                }
            }),
        ),
    ];
    for (label, gen) in &streams {
        let mut rng = DetRng::seed_from(0x7E1E ^ label.len() as u64);
        let mut hist = Histogram::new();
        let mut exact: Vec<u64> = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            let v = gen(&mut rng);
            hist.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let truth = exact_quantile(&exact, q);
            let approx = hist.quantile(q);
            // The bucket holding the target rank is reported by its upper
            // bound, and bucket width is ≤ 1/16 of the lower bound (exact
            // below 16), so the estimate can only overshoot, by ≤ 6.25 %.
            assert!(
                approx >= truth && approx as f64 <= truth as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "{label} q={q}: histogram {approx} vs exact {truth}"
            );
        }
        assert_eq!(hist.quantile(0.0), exact[0], "{label}: exact minimum");
        assert_eq!(
            hist.quantile(1.0),
            *exact.last().unwrap(),
            "{label}: exact maximum"
        );
        assert_eq!(hist.count() as usize, exact.len());
    }
}

#[test]
fn merging_random_partitions_reproduces_the_whole_histogram() {
    // Split one seeded stream across k shards at random, merge the shards
    // back in a shuffled order: the result must equal recording everything
    // into one histogram directly — merge is associative and commutative,
    // so sharded telemetry aggregates exactly.
    let mut rng = DetRng::seed_from(0xACC0);
    for shards in [2usize, 3, 7] {
        let mut whole = Histogram::new();
        let mut parts = vec![Histogram::new(); shards];
        for _ in 0..5_000 {
            let v = (-(1.0 - rng.unit()).ln() * 10_000.0) as u64;
            whole.record(v);
            parts[rng.index(shards)].record(v);
        }
        // Merge in a seeded shuffled order, pairwise-nested differently
        // per iteration (fold left after a rotation).
        let rotation = rng.index(shards);
        parts.rotate_left(rotation);
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged, whole, "{shards} shards, rotation {rotation}");
    }
}

#[test]
fn oversized_samples_saturate_without_losing_the_count() {
    let mut rng = DetRng::seed_from(0xB16);
    let mut hist = Histogram::new();
    for _ in 0..100 {
        // All beyond the 2^40 saturation point, in a random spread.
        hist.record((1u64 << 40) + rng.next_u64() % (1 << 50));
    }
    hist.record(u64::MAX);
    assert_eq!(hist.count(), 101);
    // Mid-quantiles land in the top bucket (≥ the saturation point) and
    // the extremes stay exact.
    assert!(hist.quantile(0.5) >= 1 << 40);
    assert_eq!(hist.quantile(1.0), u64::MAX);
    assert!(hist.min() >= 1 << 40);
}

const SITES: usize = 2;
const ITEMS: usize = 4;
const INITIAL: i64 = 20;
const OPS: usize = 300;

fn item_obj(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

fn mode() -> ReplicatedMode {
    ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 8,
            futures: 2,
            seed: 13,
        }),
    }
}

fn cluster(backend: &str) -> ClusterRuntime {
    let config = ClusterConfig::new(mode()).with_timer(Timer::fixed_zero());
    let mut runtime = match backend {
        "threaded" => ClusterRuntime::threaded(SITES, config),
        "sim" => ClusterRuntime::sim(
            SITES,
            config,
            SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xC0DE),
        ),
        "tcp" => ClusterRuntime::tcp(SITES, config),
        other => panic!("unknown backend {other}"),
    };
    for i in 0..ITEMS {
        runtime.register(item_obj(i), INITIAL, 1);
    }
    runtime
}

/// Runs the seeded stream, optionally scraping every site's metrics dump
/// every `scrape_every` operations, and fingerprints everything the
/// execution observably produces.
fn fingerprint(runtime: &mut ClusterRuntime, scrape_every: Option<usize>) -> (Vec<bool>, Vec<i64>) {
    let mut rng = DetRng::seed_from(0x0B5E);
    let mut synchronized = Vec::with_capacity(OPS);
    for n in 0..OPS {
        let (site, item) = (rng.index(SITES), rng.index(ITEMS));
        let out = runtime.execute(
            site,
            SiteOp::Order {
                obj: item_obj(item),
                amount: 1,
                refill_to: Some(INITIAL),
            },
        );
        assert!(out.committed);
        synchronized.push(out.synchronized);
        if scrape_every.is_some_and(|every| n % every == 0) {
            // The observation under test: a metrics scrape interleaved
            // with protocol traffic must not perturb the execution.
            let dumps = runtime.metrics_text();
            assert_eq!(dumps.len(), SITES);
        }
    }
    runtime.synchronize(0);
    let mut values = Vec::with_capacity(SITES * ITEMS);
    for site in 0..SITES {
        for item in 0..ITEMS {
            values.push(runtime.value_at(site, &item_obj(item)));
        }
    }
    (synchronized, values)
}

#[test]
fn metrics_scrapes_leave_execution_fingerprints_byte_identical() {
    for backend in ["threaded", "sim", "tcp"] {
        let mut unobserved = cluster(backend);
        let mut observed = cluster(backend);
        let base = fingerprint(&mut unobserved, None);
        let scraped = fingerprint(&mut observed, Some(37));
        assert!(
            base.0.iter().any(|s| *s),
            "{backend}: the stream must exercise the violation path"
        );
        assert_eq!(base, scraped, "{backend}: scraping changed the execution");
        assert_eq!(
            unobserved.stats(),
            observed.stats(),
            "{backend}: scraping changed the statistics"
        );
    }
}

#[test]
fn a_live_site_dumps_nonzero_sync_phase_histograms() {
    let mut runtime = cluster("tcp");
    let _ = fingerprint(&mut runtime, None);
    let dumps = runtime.metrics_text();
    // Coordinator-side round phases and participant-side freezes both ran
    // somewhere in the cluster; the wire dump must carry them.
    let total = |key: &str| -> f64 {
        dumps
            .iter()
            .flat_map(|text| text.lines())
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                (parts.next()? == key).then(|| parts.next()?.parse::<f64>().ok())?
            })
            .sum()
    };
    for key in [
        "homeo_sync_violation_round_micros_count",
        "homeo_sync_violation_collect_micros_count",
        "homeo_sync_violation_install_micros_count",
        "homeo_sync_freeze_micros_count",
        "homeo_local_commits_total",
        "homeo_synchronizations_total",
        "homeo_reactor_frames_in_total",
    ] {
        assert!(total(key) > 0.0, "`{key}` is zero across every site dump");
    }
}
