//! Cross-crate integration tests: the full pipeline from transaction source
//! text through analysis, treaty generation and protocol execution.

use homeostasis::analysis::{JointSymbolicTable, SymbolicTable};
use homeostasis::lang::{parse_program, Database, Evaluator};
use homeostasis::protocol::correctness::verify_round;
use homeostasis::protocol::templates::{preprocess_guard, TreatyTemplates};
use homeostasis::protocol::{HomeostasisCluster, Loc, OptimizerConfig};
use homeostasis::sim::DetRng;
use homeostasis::HomeostasisSystem;

const WORKLOAD_SRC: &str = r#"
    transaction Debit() {
      bal := read(balance);
      if (bal >= 10) then {
        write(balance = bal - 10);
      } else {
        print(bal);
      }
    }
    transaction Credit() {
      bal := read(balance);
      write(balance = bal + 5);
      audit := read(audit_count);
      write(audit_count = audit + 1);
    }
"#;

#[test]
fn parsed_workload_flows_through_analysis_and_treaties() {
    // Parse from source text (the role ANTLR plays in the paper's prototype).
    let transactions = parse_program(WORKLOAD_SRC).expect("workload parses");
    assert_eq!(transactions.len(), 2);

    // Analysis: symbolic tables and the joint table.
    let tables: Vec<SymbolicTable> = transactions.iter().map(SymbolicTable::analyze).collect();
    assert_eq!(tables[0].len(), 2);
    assert_eq!(tables[1].len(), 1);
    let joint = JointSymbolicTable::build(&tables);
    assert_eq!(joint.len(), 2);

    // Treaty generation for a concrete database.
    let db = Database::from_pairs([("balance", 100), ("audit_count", 3)]);
    let row = joint.find_row(&db).unwrap().expect("row for the database");
    let psi = preprocess_guard(&row.guard, &db);
    let loc = Loc::from_pairs([("balance", 0usize), ("audit_count", 1usize)]);
    let templates = TreatyTemplates::generate(&psi, &loc, 2);
    let config = templates.default_config(&db);
    assert!(templates.config_is_valid(&config, &db));
    for local in templates.local_treaties(&config, &db) {
        assert!(local.holds_on(&db));
        assert!(local.is_well_located(&loc));
    }
}

#[test]
fn protocol_execution_of_the_parsed_workload_is_equivalent_to_serial() {
    let transactions = parse_program(WORKLOAD_SRC).expect("workload parses");
    let loc = Loc::from_pairs([("balance", 0usize), ("audit_count", 0usize)]);
    let initial = Database::from_pairs([("balance", 60)]);
    let mut cluster = HomeostasisCluster::new(transactions.clone(), loc, 2, initial.clone(), None);

    let mut serial = initial;
    let mut rng = DetRng::seed_from(2024);
    for _ in 0..40 {
        let t = rng.index(2);
        let out = cluster.execute(t).unwrap();
        assert!(out.committed);
        serial = Evaluator::eval(&transactions[t], &serial, &[])
            .unwrap()
            .database;
        assert!(verify_round(&cluster).is_equivalent());
    }
    assert_eq!(cluster.global_database(), serial);
}

#[test]
fn facade_system_supports_optimized_and_default_treaties() {
    for optimizer in [
        None,
        Some(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 5,
        }),
    ] {
        let mut builder = HomeostasisSystem::builder()
            .transactions(vec![
                homeostasis::lang::programs::t1(),
                homeostasis::lang::programs::t2(),
            ])
            .location(Loc::from_pairs([("x", 0usize), ("y", 1usize)]))
            .sites(2)
            .initial_database(Database::from_pairs([("x", 12), ("y", 11)]));
        if let Some(cfg) = optimizer {
            builder = builder.optimizer(cfg);
        }
        let mut system = builder.build();
        let mut syncs = 0;
        for i in 0..30 {
            let out = system.execute_index(i % 2).unwrap();
            assert!(out.committed);
            if out.synchronized {
                syncs += 1;
                assert_eq!(out.comm_rounds, 2);
            }
        }
        assert!(system.verify_equivalence());
        // With the optimizer, at least some transactions must avoid
        // synchronization; the default (Theorem 4.3) configuration may
        // synchronize more often but never breaks equivalence.
        if optimizer.is_some() {
            assert!(syncs < 30);
        }
    }
}

#[test]
fn store_engine_recovery_preserves_protocol_state() {
    use homeostasis::store::Engine;
    // A site crash in the middle of a round: committed writes survive, the
    // in-flight transaction disappears, and the homeostasis layer can
    // recompute its in-memory treaty state from the recovered database
    // (Section 5.2's failure-handling story).
    let engine = Engine::new();
    engine.poke("stock[1]", 100);
    let mut committed = engine.begin();
    engine.write(&committed, "stock[1]", 99).unwrap();
    engine.commit(&mut committed).unwrap();
    let in_flight = engine.begin();
    engine.write(&in_flight, "stock[1]", 42).unwrap(); // staged but never committed
    engine.crash_and_recover();
    assert_eq!(engine.peek("stock[1]"), 99);

    // Rebuild treaties from the recovered state.
    let db = Database::from_pairs([("stock[1]", engine.peek("stock[1]"))]);
    let templates = TreatyTemplates::generate(
        &[homeostasis::solver::LinearConstraint::ge(
            homeostasis::solver::LinExpr::var("stock[1]"),
            homeostasis::solver::LinExpr::constant(0),
        )],
        &Loc::new().with_default_site(0),
        2,
    );
    let config = templates.default_config(&db);
    assert!(templates.config_is_valid(&config, &db));
}
