//! Cross-protocol equivalence on the shared `SiteRuntime` surface.
//!
//! The consolidation promise of the runtime layer: homeostasis, OPT
//! (even-split), 2PC and local execution are all driven through the *same*
//! `submit / poll / synchronize` trait on a seeded microbenchmark, and the
//! final databases agree exactly where the paper predicts —
//!
//! * homeostasis, OPT and 2PC all implement the serial decrement-or-refill
//!   semantics of Listing 1, so after a final synchronization every replica
//!   of every one of them holds the serial oracle's values;
//! * the local baseline provides no consistency: each replica equals the
//!   serial execution of *its own* operation subsequence, and replicas
//!   diverge (Section 6.1: "database consistency across replicas is not
//!   guaranteed").

use homeostasis::baselines::{LocalRuntime, TwoPcRuntime};
use homeostasis::cluster::{ClusterConfig, ClusterRuntime, SimNetConfig};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::{OptimizerConfig, ReplicatedMode};
use homeostasis::runtime::{ReplicatedRuntime, SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, RttMatrix, Timer};

const SITES: usize = 3;
const ITEMS: usize = 12;
const INITIAL: i64 = 25;
const REFILL: i64 = 40;
const OPS: usize = 400;

fn item_obj(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

/// The seeded operation stream: (site, item) pairs, one unit decrement each.
fn op_sequence(seed: u64) -> Vec<(usize, usize)> {
    let mut rng = DetRng::seed_from(seed);
    (0..OPS)
        .map(|_| (rng.index(SITES), rng.index(ITEMS)))
        .collect()
}

/// The serial decrement-or-refill oracle of Listing 1 over one subsequence.
fn serial_oracle(ops: impl Iterator<Item = usize>) -> Vec<i64> {
    let mut values = vec![INITIAL; ITEMS];
    for item in ops {
        values[item] = if values[item] > 1 {
            values[item] - 1
        } else {
            REFILL
        };
    }
    values
}

/// Builds the synchronized runtimes (homeo, opt, 2pc) under test.
fn synchronized_runtimes() -> Vec<(&'static str, Box<dyn SiteRuntime>)> {
    let mut homeo = ReplicatedRuntime::new(
        SITES,
        ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 8,
                futures: 2,
                seed: 13,
            }),
        },
    )
    .with_timer(Timer::fixed_zero());
    let mut opt =
        ReplicatedRuntime::new(SITES, ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
    for i in 0..ITEMS {
        homeo.register(item_obj(i), INITIAL, 1);
        opt.register(item_obj(i), INITIAL, 1);
    }
    let mut twopc = TwoPcRuntime::new(SITES);
    for i in 0..ITEMS {
        twopc.populate(item_obj(i), INITIAL);
    }
    // The cluster subsystem behind the same surface: the homeostasis
    // protocol as message-passing worker threads (channel transport, one
    // OS thread per site), as the deterministic fault-injected
    // simulation (jitter, reordering, retransmitted drops), and as real
    // TCP endpoints over loopback sockets (every frame crosses the kernel).
    let mut homeo_threaded = ClusterRuntime::threaded(
        SITES,
        ClusterConfig::new(ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 8,
                futures: 2,
                seed: 13,
            }),
        })
        .with_timer(Timer::fixed_zero()),
    );
    let mut opt_sim = ClusterRuntime::sim(
        SITES,
        ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xC0DE),
    );
    let mut opt_tcp = ClusterRuntime::tcp(
        SITES,
        ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
    );
    for i in 0..ITEMS {
        homeo_threaded.register(item_obj(i), INITIAL, 1);
        opt_sim.register(item_obj(i), INITIAL, 1);
        opt_tcp.register(item_obj(i), INITIAL, 1);
    }
    vec![
        ("homeo", Box::new(homeo)),
        ("opt", Box::new(opt)),
        ("2pc", Box::new(twopc)),
        ("homeo-cluster-threaded", Box::new(homeo_threaded)),
        ("opt-cluster-sim", Box::new(opt_sim)),
        ("opt-cluster-tcp", Box::new(opt_tcp)),
    ]
}

fn apply_ops(runtime: &mut dyn SiteRuntime, ops: &[(usize, usize)]) {
    for &(site, item) in ops {
        let out = runtime.execute(
            site,
            SiteOp::Order {
                obj: item_obj(item),
                amount: 1,
                refill_to: Some(REFILL),
            },
        );
        assert!(out.committed);
    }
}

#[test]
fn synchronized_protocols_agree_with_the_serial_oracle() {
    let ops = op_sequence(0xD15C);
    let oracle = serial_oracle(ops.iter().map(|&(_, item)| item));
    for (label, mut runtime) in synchronized_runtimes() {
        apply_ops(runtime.as_mut(), &ops);
        // Fold outstanding deltas so every replica holds the authoritative
        // state, then compare through the same trait surface.
        runtime.synchronize(0);
        for (i, &expected) in oracle.iter().enumerate() {
            for site in 0..SITES {
                assert_eq!(
                    runtime.value_at(site, &item_obj(i)),
                    expected,
                    "{label}: item {i} at site {site} diverged from the serial oracle"
                );
            }
        }
    }
}

#[test]
fn the_local_baseline_diverges_exactly_as_predicted() {
    let ops = op_sequence(0xD15C);
    let mut local = LocalRuntime::new(SITES);
    for i in 0..ITEMS {
        local.populate(item_obj(i), INITIAL);
    }
    apply_ops(&mut local, &ops);
    // `synchronize` is (deliberately) a no-op for the local baseline.
    assert_eq!(local.synchronize(0), 0);
    // Each replica matches the serial execution of its own subsequence...
    for site in 0..SITES {
        let oracle = serial_oracle(
            ops.iter()
                .filter(|&&(s, _)| s == site)
                .map(|&(_, item)| item),
        );
        for (i, &expected) in oracle.iter().enumerate() {
            assert_eq!(
                local.value_at(site, &item_obj(i)),
                expected,
                "local: item {i} at site {site}"
            );
        }
    }
    // ...and the replicas have, in fact, diverged from each other.
    let diverged = (0..ITEMS).any(|i| !local.is_consistent(&item_obj(i)));
    assert!(diverged, "local replicas unexpectedly agree everywhere");
}

/// A general-transaction program spread over the sites: one
/// decrement-or-refill `L++` transaction per item, homed at `item % SITES`.
fn general_fixture() -> (
    Vec<homeostasis::lang::ast::Transaction>,
    homeostasis::protocol::Loc,
    homeostasis::lang::Database,
) {
    use homeostasis::lang::programs;
    const GITEMS: i64 = 6;
    let txns: Vec<_> = (0..GITEMS)
        .map(|i| programs::micro_order_for_item(i, 12))
        .collect();
    let loc = homeostasis::protocol::Loc::from_pairs(
        (0..GITEMS).map(|i| (programs::stock_obj(i), (i as usize) % SITES)),
    );
    let initial = homeostasis::lang::Database::from_pairs(
        (0..GITEMS).map(|i| (programs::stock_obj(i), 7i64)),
    );
    (txns, loc, initial)
}

#[test]
fn general_transactions_agree_across_all_cluster_backends() {
    // The tentpole claim of the cluster-wide general path: a registered
    // L++ program executes on the threaded, simulated and TCP backends
    // with the same outcomes and the same committed state as the serial
    // `GeneralRuntime` oracle — byte-identical, per site, after the fold.
    use homeostasis::protocol::{HomeostasisCluster, ProgramBundle};
    use homeostasis::runtime::GeneralRuntime;

    let (txns, loc, initial) = general_fixture();
    let bundle = ProgramBundle::from_transactions(&txns, &loc, &initial, None);
    let mut rng = DetRng::seed_from(0x6E6E);
    let schedule: Vec<usize> = (0..150).map(|_| rng.index(txns.len())).collect();

    // The serial oracle.
    let mut oracle = GeneralRuntime::new(
        HomeostasisCluster::new(txns.clone(), loc.clone(), SITES, initial.clone(), None)
            .with_timer(Timer::fixed_zero()),
    );
    let oracle_outcomes: Vec<_> = schedule
        .iter()
        .map(|&index| {
            let site = oracle.home_site(index);
            oracle.execute(site, SiteOp::Transaction { index })
        })
        .collect();
    assert!(
        oracle_outcomes.iter().all(|o| o.committed),
        "oracle must commit every transaction"
    );
    assert!(
        oracle_outcomes.iter().any(|o| o.synchronized),
        "draining 150 orders over 7-unit counters must violate treaties"
    );
    oracle.synchronize(0);
    let oracle_db = oracle.cluster().global_database();

    let config = || ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
    let backends: Vec<(&str, ClusterRuntime)> = vec![
        (
            "cluster-threaded",
            ClusterRuntime::threaded(SITES, config()),
        ),
        (
            "cluster-sim",
            ClusterRuntime::sim(SITES, config(), SimNetConfig::reliable(SITES, 100)),
        ),
        ("cluster-tcp", ClusterRuntime::tcp(SITES, config())),
    ];
    for (label, mut cluster) in backends {
        assert_eq!(
            cluster.register_program(&bundle),
            txns.len() as u64,
            "{label}: registration"
        );
        let homes: Vec<usize> = (0..txns.len()).map(|i| oracle.home_site(i)).collect();
        for (k, &index) in schedule.iter().enumerate() {
            let out = cluster.execute(homes[index], SiteOp::Transaction { index });
            assert!(!out.unsupported, "{label}: op {k} rejected");
            assert_eq!(
                (out.committed, out.synchronized, out.comm_rounds),
                (
                    oracle_outcomes[k].committed,
                    oracle_outcomes[k].synchronized,
                    oracle_outcomes[k].comm_rounds,
                ),
                "{label}: op {k} (txn {index}) diverged from the oracle"
            );
        }
        cluster.synchronize(0);
        for (obj, value) in oracle_db.iter() {
            for site in 0..SITES {
                assert_eq!(
                    cluster.value_at(site, obj),
                    value,
                    "{label}: {obj} at site {site} diverged from the oracle"
                );
            }
        }
    }
}

#[test]
fn seeded_runs_are_reproducible_across_protocols() {
    // With a fixed timer and a fixed seed, two full runs produce identical
    // final states, WAL lengths and statistics — the determinism the
    // injectable timing source buys.
    let run = || {
        let ops = op_sequence(0xBEEF);
        let mut results = Vec::new();
        for (label, mut runtime) in synchronized_runtimes() {
            apply_ops(runtime.as_mut(), &ops);
            runtime.synchronize(0);
            let values: Vec<i64> = (0..ITEMS)
                .map(|i| runtime.value_at(0, &item_obj(i)))
                .collect();
            let wal_lens: Vec<usize> = (0..SITES).map(|s| runtime.engine(s).wal_len()).collect();
            results.push((label, values, wal_lens));
        }
        results
    };
    assert_eq!(run(), run());
}
