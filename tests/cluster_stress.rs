//! Stress and determinism coverage for the cluster subsystem, beyond the
//! happy path the closed-loop driver exercises:
//!
//! * seeded interleavings of `submit` / `poll` / `synchronize` across sites
//!   with conservation of counter totals checked against the outcome
//!   stream, on both the threaded and the simulated backend;
//! * `SimTransport` determinism: the same seed produces byte-for-byte
//!   identical metrics, values and WALs under jitter, reordering, drops,
//!   partitions and a site crash;
//! * the convergence acceptance run: partitions plus one site kill/restart,
//!   after which every site agrees and nothing is lost;
//! * elastic membership under faults: a join parked behind an active
//!   partition, a leave racing the membership coordinator's crash/restart
//!   (WAL recovery replays into the current epoch), and the stale-epoch
//!   rejection of frames from an evicted member.

use std::collections::VecDeque;

use homeostasis::cluster::{ClusterConfig, ClusterRuntime, SimCluster, SimMetrics, SimNetConfig};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::{OptimizerConfig, ReplicatedMode};
use homeostasis::runtime::{SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, RttMatrix, Timer};

const SITES: usize = 3;
const ITEMS: usize = 6;
const INITIAL: i64 = 50;
/// Low enough that no-refill orders always apply their decrement (keeping
/// conservation exact) while the headroom above it stays small enough that
/// treaty violations — and thus real synchronization rounds — occur.
const LOWER: i64 = 0;

fn item_obj(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

fn homeo_config() -> ClusterConfig {
    ClusterConfig::new(ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 8,
            futures: 2,
            seed: 31,
        }),
    })
    .with_timer(Timer::fixed_zero())
}

/// Interleaves batched submits, polls and synchronizes across all sites,
/// pairing every outcome with its submitted operation, and returns the net
/// committed delta per item.
fn stress(runtime: &mut dyn SiteRuntime, seed: u64, steps: usize) -> Vec<i64> {
    for i in 0..ITEMS {
        runtime.ensure_registered(&item_obj(i), INITIAL, LOWER);
    }
    let mut rng = DetRng::seed_from(seed);
    // Per site, the amounts of submitted-but-not-yet-polled operations
    // (positive = increment, negative = order/decrement).
    let mut in_flight: Vec<VecDeque<i64>> = vec![VecDeque::new(); SITES];
    let mut net_delta = vec![0i64; ITEMS];
    let drain = |site: usize,
                 runtime: &mut dyn SiteRuntime,
                 in_flight: &mut Vec<VecDeque<i64>>,
                 net_delta: &mut Vec<i64>,
                 items: &mut VecDeque<usize>| {
        for outcome in runtime.poll(site) {
            let amount = in_flight[site].pop_front().expect("outcome without op");
            let item = items.pop_front().expect("outcome without item");
            if outcome.committed {
                net_delta[item] += amount;
            }
        }
    };
    // Items of in-flight ops, per site, in submission order.
    let mut in_flight_items: Vec<VecDeque<usize>> = vec![VecDeque::new(); SITES];
    for _ in 0..steps {
        let site = rng.index(SITES);
        match rng.index(10) {
            // Mostly submits: orders (70%) and increments (20%)…
            0..=6 => {
                let item = rng.index(ITEMS);
                let amount = rng.int_inclusive(1, 3);
                runtime.submit(
                    site,
                    SiteOp::Order {
                        obj: item_obj(item),
                        amount,
                        refill_to: None,
                    },
                );
                in_flight[site].push_back(-amount);
                in_flight_items[site].push_back(item);
            }
            7..=8 => {
                let item = rng.index(ITEMS);
                let amount = rng.int_inclusive(1, 5);
                runtime.submit(
                    site,
                    SiteOp::Increment {
                        obj: item_obj(item),
                        amount,
                    },
                );
                in_flight[site].push_back(amount);
                in_flight_items[site].push_back(item);
            }
            // …with polls and the occasional cluster-wide fold mixed in.
            _ => {
                if rng.chance(0.5) {
                    drain(
                        site,
                        runtime,
                        &mut in_flight,
                        &mut net_delta,
                        &mut in_flight_items[site],
                    );
                } else {
                    runtime.synchronize(site);
                }
            }
        }
    }
    for site in 0..SITES {
        drain(
            site,
            runtime,
            &mut in_flight,
            &mut net_delta,
            &mut in_flight_items[site],
        );
        assert!(in_flight[site].is_empty(), "poll must drain everything");
    }
    net_delta
}

/// Conservation + convergence: after a final fold, every site observes
/// `INITIAL + net committed delta` for every item.
fn assert_conserved(runtime: &mut dyn SiteRuntime, net_delta: &[i64]) {
    runtime.synchronize(0);
    for (i, delta) in net_delta.iter().enumerate() {
        let expected = INITIAL + delta;
        for site in 0..SITES {
            assert_eq!(
                runtime.value_at(site, &item_obj(i)),
                expected,
                "stock[{i}] at site {site}: committed outcomes and state disagree"
            );
        }
    }
}

#[test]
fn threaded_interleaved_stress_conserves_totals() {
    let mut runtime = ClusterRuntime::threaded(SITES, homeo_config());
    let net_delta = stress(&mut runtime, 0xBEEF, 600);
    assert_conserved(&mut runtime, &net_delta);
}

#[test]
fn simulated_interleaved_stress_conserves_totals_under_faults() {
    let mut runtime = ClusterRuntime::sim(
        SITES,
        homeo_config(),
        SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xD06),
    );
    let net_delta = stress(&mut runtime, 0xBEEF, 600);
    assert_conserved(&mut runtime, &net_delta);
}

#[test]
fn threaded_and_simulated_backends_agree_on_final_state() {
    // Same seeded interleaving, same protocol: the scheduler (real threads
    // vs virtual clock with faults) must not change what commits.
    let mut threaded = ClusterRuntime::threaded(SITES, homeo_config());
    let threaded_delta = stress(&mut threaded, 0x5EED, 400);
    assert_conserved(&mut threaded, &threaded_delta);
    let mut sim = ClusterRuntime::sim(
        SITES,
        homeo_config(),
        SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xD06),
    );
    let sim_delta = stress(&mut sim, 0x5EED, 400);
    assert_conserved(&mut sim, &sim_delta);
    assert_eq!(threaded_delta, sim_delta);
}

/// The convergence acceptance run: a seeded `SimTransport` cluster with
/// jitter, reordering and drops, a partition that heals, and one site
/// crash/restart. Returns every determinism witness the run produces.
fn faulted_run() -> (SimMetrics, Vec<i64>, Vec<usize>) {
    let net = SimNetConfig {
        rtt: RttMatrix::table1().truncated(SITES),
        jitter_us: 10_000,
        drop_chance: 0.05,
        reorder_chance: 0.10,
        seed: 0xFA17,
    };
    let mut cluster = SimCluster::new(SITES, homeo_config(), net);
    for i in 0..ITEMS {
        cluster.register(item_obj(i), INITIAL, LOWER);
    }
    let mut rng = DetRng::seed_from(0xFA17);
    let mut net_delta = vec![0i64; ITEMS];
    let run_ops = |cluster: &mut SimCluster,
                   rng: &mut DetRng,
                   net_delta: &mut Vec<i64>,
                   sites: &[usize],
                   ops: usize,
                   increments_only: bool| {
        for _ in 0..ops {
            let site = sites[rng.index(sites.len())];
            let item = rng.index(ITEMS);
            let op = if increments_only || rng.chance(0.3) {
                net_delta[item] += 2;
                SiteOp::Increment {
                    obj: item_obj(item),
                    amount: 2,
                }
            } else {
                net_delta[item] -= 1;
                SiteOp::Order {
                    obj: item_obj(item),
                    amount: 1,
                    refill_to: None,
                }
            };
            let out = cluster.execute(site, op);
            assert!(out.committed, "polled ops must commit");
        }
    };
    // Phase 1: all sites, mixed load, full fault cocktail.
    run_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2],
        120,
        false,
    );
    // Phase 2: partition site 2 away; both sides keep committing
    // treaty-covered work (increments never violate).
    cluster.partition(0, 2);
    cluster.partition(1, 2);
    run_ops(&mut cluster, &mut rng, &mut net_delta, &[0, 1], 40, true);
    run_ops(&mut cluster, &mut rng, &mut net_delta, &[2], 20, true);
    cluster.heal_all();
    run_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2],
        60,
        false,
    );
    // Phase 3: crash site 1 (quiescent after the polls above), run on the
    // survivors, restart, and converge.
    cluster.synchronize(0);
    cluster.kill(1);
    run_ops(&mut cluster, &mut rng, &mut net_delta, &[0, 2], 30, true);
    cluster.restart(1);
    cluster.run_until_quiescent();
    run_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2],
        40,
        false,
    );
    // Convergence: after the final fold every site agrees with the ledger
    // of committed outcomes — nothing was lost to the partition, the
    // faults, or the crash.
    cluster.synchronize(0);
    let mut values = Vec::new();
    for (i, delta) in net_delta.iter().enumerate() {
        let expected = INITIAL + delta;
        for site in 0..SITES {
            assert_eq!(
                cluster.value_at(site, &item_obj(i)),
                expected,
                "stock[{i}] at site {site} after heal + restart"
            );
        }
        values.push(expected);
    }
    let wal_lens = (0..SITES).map(|s| cluster.engine(s).wal_len()).collect();
    (cluster.metrics(), values, wal_lens)
}

#[test]
fn partitions_plus_crash_converge_and_are_reproducible() {
    let first = faulted_run();
    let second = faulted_run();
    assert!(
        first.0.frames_retransmitted > 0,
        "the fault cocktail must actually drop frames"
    );
    assert_eq!(first, second, "same seed must be byte-for-byte identical");
}

#[test]
fn general_programs_conserve_stock_under_faults_and_crash() {
    // The general-path version of the conservation stress: one registered
    // order *program* per stock item (decrement while qty > 1, else refill)
    // running over the seeded-faulty simulated network with a mid-run
    // crash/restart. The per-operation outcome stream defines an exact
    // ledger — `refilled` resets the expected value, a plain commit
    // decrements it — and after the final fold every site must hold
    // exactly the ledger value for every item: nothing the faults or the
    // crash did may lose or duplicate a committed decrement.
    use homeostasis::lang::programs;
    use homeostasis::lang::Database;
    use homeostasis::protocol::{Loc, ProgramBundle};

    const REFILL: i64 = 12;
    const GENERAL_INITIAL: i64 = 8;
    const OPS: usize = 300;

    let objects: Vec<ObjId> = (0..ITEMS).map(item_obj).collect();
    let txns: Vec<_> = objects
        .iter()
        .map(|o| programs::order_for_object(o.clone(), REFILL))
        .collect();
    let loc = Loc::from_pairs(
        objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.clone(), i % SITES)),
    );
    let initial = Database::from_pairs(objects.iter().map(|o| (o.clone(), GENERAL_INITIAL)));
    let bundle = ProgramBundle::from_transactions(&txns, &loc, &initial, None);

    let net = SimNetConfig {
        rtt: RttMatrix::table1().truncated(SITES),
        jitter_us: 8_000,
        drop_chance: 0.04,
        reorder_chance: 0.08,
        seed: 0x6E5A,
    };
    let mut cluster = SimCluster::new(
        SITES,
        ClusterConfig::new(ReplicatedMode::Homeostasis { optimizer: None })
            .with_timer(Timer::fixed_zero()),
        net,
    );
    assert_eq!(
        cluster.register_program(&bundle),
        ITEMS as u64,
        "program registration over the faulty network"
    );

    let mut rng = DetRng::seed_from(0x6E5A);
    let mut expected: Vec<i64> = vec![GENERAL_INITIAL; ITEMS];
    let mut synchronized = 0u64;
    for k in 0..OPS {
        let index = rng.index(ITEMS);
        let out = cluster.execute(index % SITES, SiteOp::Transaction { index });
        assert!(!out.unsupported, "op {k}: registered program rejected");
        assert!(out.committed, "op {k}: registered program aborted");
        // Each program touches only its own object and runs serially at
        // its home site, so the ledger can replay the program's branch
        // exactly: refill when the stock is at (or below) one, else
        // decrement. The final fold below verifies the replay — a single
        // diverged branch would leave every later value off by one.
        if expected[index] <= 1 {
            expected[index] = REFILL - 1;
        } else {
            expected[index] -= 1;
        }
        synchronized += u64::from(out.synchronized);
        // Mid-run crash of a quiescent non-coordinator site: WAL recovery
        // plus the surviving sites must not disturb the ledger.
        if k == OPS / 2 {
            cluster.synchronize(0);
            cluster.kill(1);
            cluster.restart(1);
            cluster.run_until_quiescent();
        }
    }
    assert!(
        synchronized > 0,
        "draining {OPS} orders over {GENERAL_INITIAL}-unit items must violate treaties"
    );
    cluster.synchronize(0);
    for (i, want) in expected.iter().enumerate() {
        for site in 0..SITES {
            assert_eq!(
                cluster.value_at(site, &item_obj(i)),
                *want,
                "stock[{i}] at site {site}: ledger and folded state disagree"
            );
        }
    }
}

/// Seeded mixed load over `sites` through the polled path, with every
/// committed delta recorded in the per-item ledger. `increments_only`
/// restricts the mix to treaty-covered work that commits without reaching
/// a (possibly unreachable) coordinator.
fn elastic_ops(
    cluster: &mut SimCluster,
    rng: &mut DetRng,
    net_delta: &mut [i64],
    sites: &[usize],
    ops: usize,
    increments_only: bool,
) {
    for _ in 0..ops {
        let site = sites[rng.index(sites.len())];
        let item = rng.index(ITEMS);
        let op = if increments_only || rng.chance(0.3) {
            net_delta[item] += 2;
            SiteOp::Increment {
                obj: item_obj(item),
                amount: 2,
            }
        } else {
            net_delta[item] -= 1;
            SiteOp::Order {
                obj: item_obj(item),
                amount: 1,
                refill_to: None,
            }
        };
        let out = cluster.execute(site, op);
        assert!(out.committed, "polled ops must commit");
    }
}

/// After a final fold, every *member* site must hold `INITIAL + delta` for
/// every item, and the authoritative logical value must agree. Retired and
/// mid-join sites hold stale engine values on purpose, so only members are
/// consulted.
fn assert_members_converged(cluster: &mut SimCluster, members: &[usize], net_delta: &[i64]) {
    cluster.synchronize(members[0]);
    for (i, delta) in net_delta.iter().enumerate() {
        let expected = INITIAL + delta;
        for &site in members {
            assert_eq!(
                cluster.value_at(site, &item_obj(i)),
                expected,
                "stock[{i}] at member {site}: committed outcomes and state disagree"
            );
        }
        assert_eq!(
            cluster.logical_value(&item_obj(i)),
            expected,
            "stock[{i}]: authoritative total and ledger disagree"
        );
    }
}

#[test]
fn join_parked_behind_a_partition_commits_after_heal() {
    // The handoff freezes, folds and re-splits every counter over the grown
    // member set, so it needs the *full* old membership reachable: a join
    // started while a member is partitioned away must park — committing
    // nothing, adopting no roster — and complete untouched once the
    // partition heals. The net config covers four sites up front (the RTT
    // matrix must span the maximum membership the run grows to).
    let mut cluster = SimCluster::new(
        SITES,
        homeo_config(),
        SimNetConfig::faulty(RttMatrix::table1().truncated(SITES + 1), 0x10A7),
    );
    for i in 0..ITEMS {
        cluster.register(item_obj(i), INITIAL, LOWER);
    }
    let mut rng = DetRng::seed_from(0x10A7);
    let mut net_delta = vec![0i64; ITEMS];
    elastic_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2],
        90,
        false,
    );
    // Cut member 2 off completely, then start the join: every handoff frame
    // addressed to it parks on the wire.
    cluster.partition(0, 2);
    cluster.partition(1, 2);
    let joiner = cluster.begin_join();
    cluster.run_until_quiescent();
    assert_eq!(
        cluster.roster(0).members,
        vec![0, 1, 2],
        "the membership change must not commit while a member is unreachable"
    );
    assert_eq!(cluster.roster(0).epoch, 0);
    cluster.heal_all();
    cluster.run_until_quiescent();
    for site in [0, 1, 2, joiner] {
        assert_eq!(
            cluster.roster(site).members,
            vec![0, 1, 2, 3],
            "site {site} must adopt the post-heal roster"
        );
        assert_eq!(cluster.roster(site).epoch, 1);
    }
    // The grown cluster carries load — including the joiner — and the
    // ledger holds across the partition and the handoff.
    elastic_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2, joiner],
        80,
        false,
    );
    assert_members_converged(&mut cluster, &[0, 1, 2, joiner], &net_delta);
}

#[test]
fn leave_during_membership_coordinator_crash_commits_after_wal_recovery() {
    // A leave submitted while the membership coordinator (the lowest
    // member) is down parks at its held-frame queue; the crash/restart
    // replays the WAL, refetches treaty metadata from a live buddy, and
    // only then serves the parked `Leave` — the handoff runs in the
    // recovered epoch and nothing committed before or during the outage is
    // lost.
    let mut cluster = SimCluster::new(
        SITES,
        homeo_config(),
        SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xC4A5),
    );
    for i in 0..ITEMS {
        cluster.register(item_obj(i), INITIAL, LOWER);
    }
    let mut rng = DetRng::seed_from(0xC4A5);
    let mut net_delta = vec![0i64; ITEMS];
    elastic_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2],
        90,
        false,
    );
    // Fail-stop between rounds: quiesce, then crash the coordinator.
    cluster.synchronize(0);
    cluster.kill(0);
    cluster.begin_leave(2);
    cluster.run_until_quiescent();
    assert_eq!(
        cluster.roster(1).members,
        vec![0, 1, 2],
        "no membership change without the membership coordinator"
    );
    // The survivors — the leaver included, its Leave still parked — keep
    // committing treaty-covered work while the coordinator is down.
    elastic_ops(&mut cluster, &mut rng, &mut net_delta, &[1, 2], 40, true);
    cluster.restart(0);
    cluster.run_until_quiescent();
    for site in [0, 1] {
        assert_eq!(
            cluster.roster(site).members,
            vec![0, 1],
            "site {site} must adopt the post-recovery eviction"
        );
        assert_eq!(cluster.roster(site).epoch, 1);
    }
    elastic_ops(&mut cluster, &mut rng, &mut net_delta, &[0, 1], 60, false);
    assert_members_converged(&mut cluster, &[0, 1], &net_delta);
}

#[test]
fn a_retired_sites_recovery_probe_is_rejected_as_stale() {
    // Frames from a member evicted by a committed roster carry treaty
    // state from a dead epoch: the survivors must drop them on receipt. A
    // retired site that crashes and restarts probes its old buddy with
    // `StateRequest` — organically producing exactly such a frame — and
    // must be left un-answered without disturbing the survivors' state.
    let mut cluster = SimCluster::new(
        SITES,
        homeo_config(),
        SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0x57A1),
    );
    for i in 0..ITEMS {
        cluster.register(item_obj(i), INITIAL, LOWER);
    }
    let mut rng = DetRng::seed_from(0x57A1);
    let mut net_delta = vec![0i64; ITEMS];
    elastic_ops(
        &mut cluster,
        &mut rng,
        &mut net_delta,
        &[0, 1, 2],
        90,
        false,
    );
    // Graceful retirement: site 2's unsynchronized deltas fold into the
    // survivors' bases and the epoch-bumped roster evicts it.
    cluster.leave(2);
    assert_eq!(cluster.roster(0).members, vec![0, 1]);
    assert_eq!(cluster.stale_rejects(), 0);
    elastic_ops(&mut cluster, &mut rng, &mut net_delta, &[0, 1], 40, false);
    // The retired site crashes and comes back: its recovery probe is a
    // frame from an evicted member and must be rejected, not answered.
    cluster.synchronize(0);
    cluster.kill(2);
    cluster.restart(2);
    cluster.run_until_quiescent();
    assert!(
        cluster.stale_rejects() >= 1,
        "the evicted member's recovery probe must be dropped as stale"
    );
    assert_eq!(
        cluster.roster(0).members,
        vec![0, 1],
        "a stale probe must not re-enter the evicted site"
    );
    elastic_ops(&mut cluster, &mut rng, &mut net_delta, &[0, 1], 40, false);
    assert_members_converged(&mut cluster, &[0, 1], &net_delta);
}
