//! The cluster over real sockets: loopback TCP equivalence, torn-frame
//! robustness, and fail-stop kill/restart convergence.
//!
//! These tests mirror what the simulator pins deterministically
//! (`cluster_stress`, the `cluster-crash` scenario), but over an actual
//! network stack: frames cross kernel sockets with partial reads and
//! connection loss, sites die as whole thread-families, and recovery rides
//! the same WAL-plus-`StateRequest` protocol — exercised here against real
//! reconnect-with-backoff instead of a virtual clock.

use homeostasis::cluster::tcp::TcpCluster;
use homeostasis::cluster::{
    tcp_load_opts, ClusterConfig, ClusterSpec, CodecError, FrameAssembler, LoadOptions, Message,
};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::ReplicatedMode;
use homeostasis::runtime::{SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, Timer};

fn stock(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

fn cluster(sites: usize) -> TcpCluster {
    TcpCluster::new(
        sites,
        ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
    )
}

/// The codec survives arbitrary tearing: a protocol-shaped frame stream is
/// split at seeded byte boundaries (including inside length prefixes) and
/// must reassemble into exactly the original messages — while a stream with
/// an oversized prefix must error out instead of allocating.
#[test]
fn torn_frames_reassemble_and_hostile_prefixes_error() {
    let msgs: Vec<Message> = vec![
        Message::Submit {
            ops: vec![
                SiteOp::Order {
                    obj: stock(0),
                    amount: 3,
                    refill_to: Some(99),
                },
                SiteOp::Increment {
                    obj: stock(1),
                    amount: -7,
                },
            ],
        },
        Message::StateRequest,
        Message::DeltaReply {
            sync: 41,
            obj: stock(2),
            delta: -12,
        },
        Message::PollRequest,
        Message::SyncAllReply { solver_micros: 5 },
    ];
    let stream: Vec<u8> = msgs.iter().flat_map(Message::encode).collect();
    let mut rng = DetRng::seed_from(0xF4A7);
    for _ in 0..300 {
        let mut asm = FrameAssembler::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let take = 1 + rng.index(13.min(stream.len() - pos));
            asm.push(&stream[pos..pos + take]);
            pos += take;
            while let Some(msg) = asm.next_message().expect("well-formed stream") {
                decoded.push(msg);
            }
        }
        assert_eq!(decoded, msgs);
        assert_eq!(asm.pending(), 0);
    }
    // An untrusted 4 GiB length prefix is rejected from the prefix alone.
    let mut asm = FrameAssembler::new();
    asm.push(&u32::MAX.to_be_bytes());
    assert!(matches!(
        asm.next_message(),
        Err(CodecError::Oversized { .. })
    ));
}

/// The sim `kill/restart` scenario over real sockets: a site's whole
/// thread-family dies mid-run at a quiescent point, the survivors keep
/// serving treaty-covered work, the victim restarts from its WAL (treaty
/// state refetched from a live peer over TCP), and the coordinators
/// converge after the senders reconnect — verified by forcing
/// synchronization rounds that need the restarted site's deltas, then
/// folding and checking agreement plus counter conservation.
#[test]
fn killed_site_rejoins_over_tcp_and_coordinators_converge() {
    const SITES: usize = 3;
    const ITEMS: usize = 4;
    // Small enough that 150 seeded orders drain every allowance (per-site
    // share is (24-1)/3 = 7 per counter) and force real sync rounds.
    const INITIAL: i64 = 24;
    let mut cluster = cluster(SITES);
    for i in 0..ITEMS {
        cluster.register(stock(i), INITIAL, 1);
    }
    let mut rng = DetRng::seed_from(0xC4A5);
    let mut orders = 0i64;
    let mut increments = 0i64;
    let order = |cluster: &mut TcpCluster, site: usize, item: usize, orders: &mut i64| {
        let out = cluster.execute(
            site,
            SiteOp::Order {
                obj: stock(item),
                amount: 1,
                refill_to: None,
            },
        );
        assert!(
            out.committed,
            "a polled order must commit (order #{} at site {site} on stock[{item}]: {out:?})",
            *orders
        );
        *orders += 1;
        out.synchronized
    };

    // Phase 1: drain headroom from every site until rounds synchronize.
    let mut synced = 0;
    for _ in 0..150 {
        if order(
            &mut cluster,
            rng.index(SITES),
            rng.index(ITEMS),
            &mut orders,
        ) {
            synced += 1;
        }
    }
    assert!(
        synced > 0,
        "draining 150 over the headroom must synchronize"
    );

    // Quiescent point: everything polled, every round completed. Kill.
    cluster.synchronize(0);
    let victim = 2;
    let pre_crash: Vec<i64> = (0..ITEMS)
        .map(|i| cluster.value_at(victim, &stock(i)))
        .collect();
    cluster.kill(victim);

    // Survivors keep serving treaty-covered work while the site is gone.
    for _ in 0..40 {
        let site = rng.index(2); // sites 0 and 1
        let out = cluster.execute(
            site,
            SiteOp::Increment {
                obj: stock(rng.index(ITEMS)),
                amount: 1,
            },
        );
        assert!(
            out.committed && !out.synchronized,
            "increments must commit locally with a peer down"
        );
        increments += 1;
    }

    // Restart: WAL-recovered engine, treaty state refetched from a peer.
    cluster.restart(victim);
    for (i, expected) in pre_crash.iter().enumerate() {
        assert_eq!(
            cluster.value_at(victim, &stock(i)),
            *expected,
            "stock[{i}]: WAL recovery must replay every committed write"
        );
    }

    // Phase 3: orders from every site (including the victim) until the
    // coordinators run post-restart rounds — these need the victim's
    // deltas, so they only complete if the reconnect actually works.
    let mut synced_after = 0;
    for _ in 0..150 {
        if order(
            &mut cluster,
            rng.index(SITES),
            rng.index(ITEMS),
            &mut orders,
        ) {
            synced_after += 1;
        }
    }
    assert!(
        synced_after > 0,
        "post-restart traffic must synchronize through the reconnected site"
    );

    // Fold and verify: all sites agree, and the folded total equals the
    // seeded total minus the orders plus the increments (conservation).
    cluster.synchronize(0);
    let mut total = 0i64;
    for i in 0..ITEMS {
        let expected = cluster.value_at(0, &stock(i));
        for site in 1..SITES {
            assert_eq!(
                cluster.value_at(site, &stock(i)),
                expected,
                "stock[{i}] diverged at site {site} after the fold"
            );
        }
        total += expected;
    }
    assert_eq!(
        total,
        ITEMS as i64 * INITIAL - orders + increments,
        "counter conservation across the crash"
    );

    // Phase 4: the reconnected cluster serves a real fan-out load — 32
    // pipelined connections spread over all sites (the restarted one
    // included), driven by the epoll load driver. The load client
    // self-verifies conservation from the post-crash folded state.
    let spec = ClusterSpec {
        addrs: cluster.addrs().to_vec(),
        mode: ReplicatedMode::EvenSplit,
        join: None,
        epoch: None,
    };
    let report = tcp_load_opts(
        &spec,
        &LoadOptions {
            clients: 32,
            window: 4,
            batch: 16,
            ..LoadOptions::new(120, ITEMS, 0xD1AD)
        },
    )
    .expect("fan-out load over a restarted cluster");
    assert_eq!(report.clients, 32);
    assert_eq!(report.committed, (SITES * 120) as u64);
    assert!(
        report.conserved,
        "post-restart fan-out load must conserve: {report:?}"
    );
}

/// Alternating order traffic through real sockets lands on the same serial
/// decrement-or-refill oracle the in-memory runtimes pin — the smallest
/// end-to-end equivalence check for the TCP path.
#[test]
fn tcp_orders_match_the_serial_oracle() {
    let mut cluster = cluster(2);
    cluster.register(stock(0), 30, 1);
    for i in 0..90 {
        let site = i % 2;
        let out = cluster.execute(
            site,
            SiteOp::Order {
                obj: stock(0),
                amount: 1,
                refill_to: Some(29),
            },
        );
        assert!(out.committed);
    }
    cluster.synchronize(0);
    // 90 unit decrements over a 30-high counter with refill-to-29: the
    // serial oracle of the decrement-or-refill loop.
    let mut serial = 30i64;
    for _ in 0..90 {
        serial = if serial > 1 { serial - 1 } else { 29 };
    }
    assert_eq!(cluster.value_at(0, &stock(0)), serial);
    assert_eq!(cluster.value_at(1, &stock(0)), serial);
}
