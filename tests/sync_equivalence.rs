//! Cold-vs-cached negotiation equivalence across every runtime.
//!
//! The cheap-synchronization machinery ([`SyncTuning`]) promises that the
//! template cache, the exact-result memo and the solver warm start are pure
//! performance: under [`SyncTuning::default`] every negotiation installs
//! allowances byte-identical to a cold solve, so executions under the two
//! tunings are indistinguishable — same per-operation outcomes, same
//! synchronization points, same final values, same statistics. This suite
//! pins that claim on the in-process [`ReplicatedRuntime`] and on all three
//! cluster backends (worker threads over channels, the fault-injected
//! deterministic simulation, real loopback TCP sockets).
//!
//! The demand-adaptive loop ([`SyncTuning::adaptive`]) deliberately changes
//! *when* negotiations happen (proactive re-splits, drifted weights), so it
//! is not byte-identical to cold — instead it must preserve the protocol's
//! correctness promise: after a final synchronization, every replica agrees
//! with the serial decrement-or-refill oracle.

use homeostasis::cluster::{ClusterConfig, ClusterRuntime, SimNetConfig};
use homeostasis::lang::ids::ObjId;
use homeostasis::protocol::{OptimizerConfig, ReplicatedMode, SyncTuning};
use homeostasis::runtime::{ReplicatedRuntime, SiteOp, SiteRuntime};
use homeostasis::sim::{DetRng, RttMatrix, Timer};

const SITES: usize = 2;
const ITEMS: usize = 6;
const INITIAL: i64 = 30;
const OPS: usize = 600;
/// Share of operations issued by the hot site — the skew that makes the
/// demand-adaptive loop (and the warm start's repeated headrooms) matter.
const HOT_SHARE: f64 = 0.8;

fn item_obj(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

fn mode() -> ReplicatedMode {
    ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 8,
            futures: 2,
            seed: 13,
        }),
    }
}

/// The seeded 80/20-skewed operation stream: (site, item) pairs.
fn op_sequence(seed: u64) -> Vec<(usize, usize)> {
    let mut rng = DetRng::seed_from(seed);
    (0..OPS)
        .map(|_| {
            let site = usize::from(!rng.chance(HOT_SHARE));
            (site, rng.index(ITEMS))
        })
        .collect()
}

/// Runs the stream and captures everything the execution observably
/// produces: the per-operation synchronization points and the final value of
/// every item at every site (after a closing synchronization).
fn fingerprint(runtime: &mut dyn SiteRuntime, ops: &[(usize, usize)]) -> (Vec<bool>, Vec<i64>) {
    let mut synchronized = Vec::with_capacity(ops.len());
    for &(site, item) in ops {
        let out = runtime.execute(
            site,
            SiteOp::Order {
                obj: item_obj(item),
                amount: 1,
                refill_to: Some(INITIAL),
            },
        );
        assert!(out.committed);
        synchronized.push(out.synchronized);
    }
    runtime.synchronize(0);
    let mut values = Vec::with_capacity(SITES * ITEMS);
    for site in 0..SITES {
        for item in 0..ITEMS {
            values.push(runtime.value_at(site, &item_obj(item)));
        }
    }
    (synchronized, values)
}

fn replicated(tuning: SyncTuning) -> ReplicatedRuntime {
    let mut runtime = ReplicatedRuntime::new(SITES, mode())
        .with_timer(Timer::fixed_zero())
        .with_sync_tuning(tuning);
    for i in 0..ITEMS {
        runtime.register(item_obj(i), INITIAL, 1);
    }
    runtime
}

fn cluster(backend: &str, tuning: SyncTuning) -> ClusterRuntime {
    let config = ClusterConfig::new(mode())
        .with_timer(Timer::fixed_zero())
        .with_tuning(tuning);
    let mut runtime = match backend {
        "threaded" => ClusterRuntime::threaded(SITES, config),
        "sim" => ClusterRuntime::sim(
            SITES,
            config,
            SimNetConfig::faulty(RttMatrix::table1().truncated(SITES), 0xC0DE),
        ),
        "tcp" => ClusterRuntime::tcp(SITES, config),
        other => panic!("unknown backend {other}"),
    };
    for i in 0..ITEMS {
        runtime.register(item_obj(i), INITIAL, 1);
    }
    runtime
}

#[test]
fn warm_start_is_byte_identical_to_cold_on_the_replicated_runtime() {
    let ops = op_sequence(0x51AC);
    let mut cold = replicated(SyncTuning::cold());
    let mut warm = replicated(SyncTuning::default());
    let cold_fp = fingerprint(&mut cold, &ops);
    let warm_fp = fingerprint(&mut warm, &ops);
    assert_eq!(cold.stats, warm.stats, "statistics diverged");
    assert!(
        cold.stats.synchronizations > 0,
        "the stream must exercise the violation path"
    );
    assert_eq!(cold_fp, warm_fp, "cold and warm executions diverged");
}

#[test]
fn warm_start_is_byte_identical_to_cold_on_every_cluster_backend() {
    let ops = op_sequence(0x51AD);
    for backend in ["threaded", "sim", "tcp"] {
        let mut cold = cluster(backend, SyncTuning::cold());
        let mut warm = cluster(backend, SyncTuning::default());
        let cold_fp = fingerprint(&mut cold, &ops);
        let warm_fp = fingerprint(&mut warm, &ops);
        assert_eq!(cold.stats(), warm.stats(), "{backend}: statistics diverged");
        assert!(
            cold.stats().synchronizations > 0,
            "{backend}: the stream must exercise the violation path"
        );
        assert_eq!(cold_fp, warm_fp, "{backend}: executions diverged");
    }
}

/// The serial decrement-or-refill oracle of Listing 1.
fn serial_oracle(ops: &[(usize, usize)]) -> Vec<i64> {
    let mut values = vec![INITIAL; ITEMS];
    for &(_, item) in ops {
        values[item] = if values[item] > 1 {
            values[item] - 1
        } else {
            INITIAL
        };
    }
    values
}

#[test]
fn the_adaptive_loop_preserves_serial_oracle_semantics() {
    let ops = op_sequence(0x51AE);
    let oracle = serial_oracle(&ops);
    let mut runtimes: Vec<(&str, Box<dyn SiteRuntime>)> = vec![
        ("replicated", Box::new(replicated(SyncTuning::adaptive()))),
        (
            "threaded",
            Box::new(cluster("threaded", SyncTuning::adaptive())),
        ),
        ("sim", Box::new(cluster("sim", SyncTuning::adaptive()))),
        ("tcp", Box::new(cluster("tcp", SyncTuning::adaptive()))),
    ];
    for (label, runtime) in &mut runtimes {
        for &(site, item) in &ops {
            let out = runtime.execute(
                site,
                SiteOp::Order {
                    obj: item_obj(item),
                    amount: 1,
                    refill_to: Some(INITIAL),
                },
            );
            assert!(out.committed, "{label}: operation aborted");
        }
        runtime.synchronize(0);
        for (item, &expected) in oracle.iter().enumerate() {
            for site in 0..SITES {
                assert_eq!(
                    runtime.value_at(site, &item_obj(item)),
                    expected,
                    "{label}: item {item} at site {site} diverged from the serial oracle"
                );
            }
        }
    }
}
