//! The e-commerce microbenchmark of Section 6.1.
//!
//! A single table `Stock(itemid INT, qty INT)` with 10 000 items; the
//! workload is the single parameterized transaction of Listing 1 (read the
//! quantity; decrement it if it is above one, otherwise refill). The system
//! is fully replicated and evaluated in four modes: the homeostasis protocol
//! (`homeo`), the hand-crafted demarcation split (`opt`), two-phase commit
//! (`2pc`) and uncoordinated local execution (`local`).
//!
//! The executor produced here implements [`homeo_sim::SiteExecutor`]: every
//! call executes one client transaction *for real* against the protocol (or
//! baseline) state and reports its cost components so the closed-loop driver
//! can turn them into latency and throughput figures.

use serde::{Deserialize, Serialize};

use homeo_baselines::{LocalCounters, TwoPcCluster};
use homeo_lang::ids::ObjId;
use homeo_lang::programs;
use homeo_protocol::{OptimizerConfig, ReplicatedCounters, ReplicatedMode};
use homeo_sim::clock::{millis, SimTime};
use homeo_sim::{ClientOutcome, CostComponents, DetRng, RttMatrix, SiteExecutor};
use homeo_store::{Column, Engine, TableSchema, Value};

/// The execution modes compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// The homeostasis protocol with the Algorithm 1 optimizer.
    Homeostasis,
    /// The hand-crafted demarcation-style optimum (even split).
    Opt,
    /// Two-phase commit.
    TwoPc,
    /// Local execution with no coordination.
    Local,
}

impl Mode {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Homeostasis => "homeo",
            Mode::Opt => "opt",
            Mode::TwoPc => "2pc",
            Mode::Local => "local",
        }
    }

    /// All four modes in the order the paper lists them.
    pub fn all() -> [Mode; 4] {
        [Mode::Homeostasis, Mode::Opt, Mode::TwoPc, Mode::Local]
    }
}

/// Configuration of the microbenchmark (defaults follow Section 6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroConfig {
    /// Number of items in the `Stock` table.
    pub num_items: usize,
    /// The REFILL constant of Listing 1.
    pub refill: i64,
    /// Number of replicas.
    pub replicas: usize,
    /// Round-trip time between replicas, in milliseconds.
    pub rtt_ms: u64,
    /// Number of distinct items ordered per transaction (Appendix F.1 varies
    /// this from 1 to 5; the default is 1).
    pub items_per_txn: usize,
    /// Lookahead interval `L` of Algorithm 1.
    pub lookahead: usize,
    /// Cost factor `f` of Algorithm 1.
    pub futures: usize,
    /// Local execution time of a transaction, in microseconds (the paper
    /// measures ~2 ms in local mode).
    pub local_exec_us: u64,
    /// Extra local time spent on the treaty check / stored-procedure
    /// indirection under homeostasis (< 2 ms in the paper).
    pub treaty_check_us: u64,
    /// Random seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            num_items: 10_000,
            refill: 100,
            replicas: 2,
            rtt_ms: 100,
            items_per_txn: 1,
            lookahead: 20,
            futures: 3,
            local_exec_us: 2_000,
            treaty_check_us: 1_500,
            seed: 42,
        }
    }
}

impl MicroConfig {
    /// The RTT matrix for this configuration (uniform, as in Section 6.1).
    pub fn rtt_matrix(&self) -> RttMatrix {
        RttMatrix::uniform(self.replicas, self.rtt_ms)
    }

    /// The optimizer settings derived from this configuration.
    pub fn optimizer(&self) -> OptimizerConfig {
        OptimizerConfig {
            lookahead: self.lookahead,
            futures: self.futures,
            seed: self.seed,
        }
    }
}

/// The stock object for item `i` (shared with [`homeo_lang::programs`]).
pub fn stock_obj(item: usize) -> ObjId {
    programs::stock_obj(item as i64)
}

/// Populates a relational `stock` table in a storage engine — the analogue of
/// loading MySQL before the experiment. Returns the engine.
pub fn populate_stock_engine(config: &MicroConfig) -> Engine {
    let engine = Engine::new();
    engine.create_table(TableSchema::new(
        "stock",
        vec![Column::int("itemid"), Column::int("qty")],
        &["itemid"],
    ));
    for item in 0..config.num_items {
        engine
            .insert_row(
                "stock",
                vec![Value::Int(item as i64), Value::Int(config.refill)],
            )
            .expect("fresh table accepts all items");
        engine.poke(stock_obj(item).as_str(), config.refill);
    }
    engine
}

enum ModeState {
    Replicated(ReplicatedCounters),
    TwoPc(TwoPcCluster),
    Local(LocalCounters),
}

/// The microbenchmark executor: owns the system under test for one mode and
/// implements [`SiteExecutor`].
pub struct MicroExecutor {
    config: MicroConfig,
    mode: Mode,
    rtt: RttMatrix,
    state: ModeState,
    /// The per-replica storage engines holding the relational `stock` table
    /// (population data; the protocol state itself lives in `state`).
    pub engines: Vec<Engine>,
}

impl MicroExecutor {
    /// Builds the executor for a mode.
    pub fn new(config: MicroConfig, mode: Mode) -> Self {
        let rtt = config.rtt_matrix();
        let engines = (0..config.replicas)
            .map(|_| populate_stock_engine(&config))
            .collect();
        let state = match mode {
            Mode::Homeostasis => ModeState::Replicated(ReplicatedCounters::new(
                config.replicas,
                ReplicatedMode::Homeostasis {
                    optimizer: Some(config.optimizer()),
                },
            )),
            Mode::Opt => ModeState::Replicated(ReplicatedCounters::new(
                config.replicas,
                ReplicatedMode::EvenSplit,
            )),
            Mode::TwoPc => {
                let mut cluster = TwoPcCluster::new();
                for item in 0..config.num_items {
                    cluster.populate(stock_obj(item), config.refill);
                }
                ModeState::TwoPc(cluster)
            }
            Mode::Local => {
                let mut counters = LocalCounters::new(config.replicas);
                for item in 0..config.num_items {
                    counters.populate(stock_obj(item), config.refill);
                }
                ModeState::Local(counters)
            }
        };
        MicroExecutor {
            config,
            mode,
            rtt,
            state,
            engines,
        }
    }

    /// The mode this executor runs.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The synchronization ratio observed so far (homeo/opt only).
    pub fn sync_ratio_percent(&self) -> f64 {
        match &self.state {
            ModeState::Replicated(counters) => {
                let total = counters.stats.local_commits + counters.stats.synchronizations;
                if total == 0 {
                    0.0
                } else {
                    100.0 * counters.stats.synchronizations as f64 / total as f64
                }
            }
            _ => 0.0,
        }
    }

    fn local_cost(&self) -> SimTime {
        match self.mode {
            Mode::Homeostasis | Mode::Opt => {
                self.config.local_exec_us + self.config.treaty_check_us
            }
            Mode::TwoPc | Mode::Local => self.config.local_exec_us,
        }
    }

    fn sync_comm_cost(&self, replica: usize) -> SimTime {
        // A synchronization is two global rounds: state exchange plus treaty
        // distribution (Section 5.1), each bounded by the slowest peer.
        2 * self.rtt.max_rtt_from(replica)
    }

    fn pick_items(&self, rng: &mut DetRng) -> Vec<usize> {
        rng.distinct_indices(self.config.num_items, self.config.items_per_txn.max(1))
    }
}

impl SiteExecutor for MicroExecutor {
    fn execute(&mut self, replica: usize, rng: &mut DetRng) -> ClientOutcome {
        let items = self.pick_items(rng);
        let refill_to = self.config.refill - 1;
        let local = self.local_cost() * items.len() as u64;
        match &mut self.state {
            ModeState::Replicated(counters) => {
                let mut synchronized = false;
                let mut solver = 0u64;
                for item in &items {
                    let obj = stock_obj(*item);
                    if !counters.is_registered(&obj) {
                        counters.register(obj.clone(), self.config.refill, 1);
                    }
                    let out = counters.order(replica, &obj, 1, Some(refill_to));
                    synchronized |= out.synchronized;
                    solver += out.solver_micros;
                }
                ClientOutcome {
                    committed: true,
                    synchronized,
                    costs: CostComponents {
                        local,
                        communication: if synchronized {
                            self.sync_comm_cost(replica)
                        } else {
                            0
                        },
                        solver,
                    },
                }
            }
            ModeState::TwoPc(cluster) => {
                let mut committed = true;
                for item in &items {
                    let out = cluster.order(&stock_obj(*item), 1, Some(refill_to));
                    committed &= out.committed;
                }
                ClientOutcome {
                    committed,
                    synchronized: true,
                    costs: CostComponents {
                        local,
                        communication: 2 * self.rtt.max_rtt_from(replica),
                        solver: 0,
                    },
                }
            }
            ModeState::Local(counters) => {
                for item in &items {
                    counters.order(replica, &stock_obj(*item), 1, Some(refill_to));
                }
                ClientOutcome {
                    committed: true,
                    synchronized: false,
                    costs: CostComponents {
                        local,
                        communication: 0,
                        solver: 0,
                    },
                }
            }
        }
    }
}

/// Convenience: the closed-loop configuration matching Section 6.1 defaults
/// (5 s warm-up; the measurement window is supplied by the caller since the
/// reproduction typically uses a shorter window than the paper's 300 s).
pub fn closed_loop_config(
    config: &MicroConfig,
    clients_per_replica: usize,
    measure_ms: u64,
) -> homeo_sim::ClosedLoopConfig {
    homeo_sim::ClosedLoopConfig {
        replicas: config.replicas,
        clients_per_replica,
        warmup: millis(1_000),
        measure: millis(measure_ms),
        seed: config.seed,
        cores_per_replica: 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_sim::closedloop;

    fn small_config() -> MicroConfig {
        MicroConfig {
            num_items: 200,
            replicas: 2,
            rtt_ms: 100,
            lookahead: 10,
            futures: 2,
            ..MicroConfig::default()
        }
    }

    fn run_mode(mode: Mode, config: &MicroConfig) -> homeo_sim::RunMetrics {
        let mut exec = MicroExecutor::new(config.clone(), mode);
        let loop_config = closed_loop_config(config, 8, 3_000);
        closedloop::run(&loop_config, &mut exec)
    }

    #[test]
    fn homeostasis_mostly_commits_locally() {
        let config = small_config();
        let metrics = run_mode(Mode::Homeostasis, &config);
        // Section 6.1: "97% of the transactions execute locally".
        assert!(
            metrics.sync_ratio_percent() < 15.0,
            "sync ratio {}",
            metrics.sync_ratio_percent()
        );
        let mut lat = metrics.latency.clone();
        assert!(lat.percentile_ms(50.0) < 10.0);
    }

    #[test]
    fn mode_ordering_matches_the_paper() {
        let config = small_config();
        let homeo = run_mode(Mode::Homeostasis, &config);
        let opt = run_mode(Mode::Opt, &config);
        let twopc = run_mode(Mode::TwoPc, &config);
        let local = run_mode(Mode::Local, &config);
        // Throughput: local ≥ opt ≈ homeo ≫ 2pc.
        assert!(local.throughput_per_replica() >= homeo.throughput_per_replica());
        assert!(homeo.throughput_per_replica() > 10.0 * twopc.throughput_per_replica());
        assert!(opt.throughput_per_replica() > 10.0 * twopc.throughput_per_replica());
        // Latency medians: homeo and local are milliseconds, 2PC is ~2 RTT.
        let mut twopc_lat = twopc.latency.clone();
        assert!(twopc_lat.percentile_ms(50.0) >= 190.0);
        let mut homeo_lat = homeo.latency.clone();
        assert!(homeo_lat.percentile_ms(50.0) < 20.0);
    }

    #[test]
    fn stock_population_loads_engine_and_counters() {
        let config = MicroConfig {
            num_items: 50,
            ..small_config()
        };
        let exec = MicroExecutor::new(config.clone(), Mode::Homeostasis);
        assert_eq!(exec.engines.len(), 2);
        let row = exec.engines[0]
            .get_row("stock", &[Value::Int(7)])
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(config.refill));
        assert_eq!(exec.engines[0].peek(stock_obj(7).as_str()), config.refill);
    }

    #[test]
    fn multi_item_transactions_synchronize_more_often() {
        let config = small_config();
        let single = run_mode(Mode::Homeostasis, &config);
        let multi = run_mode(
            Mode::Homeostasis,
            &MicroConfig {
                items_per_txn: 5,
                ..config
            },
        );
        assert!(multi.sync_ratio_percent() >= single.sync_ratio_percent());
    }
}
