//! The e-commerce microbenchmark of Section 6.1.
//!
//! A single table `Stock(itemid INT, qty INT)` with 10 000 items; the
//! workload is the single parameterized transaction of Listing 1 (read the
//! quantity; decrement it if it is above one, otherwise refill). The system
//! is fully replicated and evaluated in four modes: the homeostasis protocol
//! (`homeo`), the hand-crafted demarcation split (`opt`), two-phase commit
//! (`2pc`) and uncoordinated local execution (`local`).
//!
//! All four modes execute through the shared [`SiteRuntime`] surface
//! (built by [`build_runtime`]); [`MicroWorkload`] implements
//! [`homeo_runtime::WorkloadDriver`], issuing every client transaction *for
//! real* against the runtime's engines and pricing its cost components so
//! the closed-loop driver can build the latency and throughput figures.

use serde::{Deserialize, Serialize};

use homeo_baselines::{LocalRuntime, TwoPcRuntime};
use homeo_lang::ids::ObjId;
use homeo_lang::programs;
use homeo_protocol::{OptimizerConfig, ReplicatedMode};
use homeo_runtime::{ReplicatedRuntime, SiteOp, SiteRuntime, WorkloadDriver};
use homeo_sim::clock::{millis, SimTime};
use homeo_sim::{ClientOutcome, CostComponents, DetRng, RttMatrix, Timer};
use homeo_store::{Column, Engine, TableSchema, Value};

/// The execution modes compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// The homeostasis protocol with the Algorithm 1 optimizer.
    Homeostasis,
    /// The hand-crafted demarcation-style optimum (even split).
    Opt,
    /// Two-phase commit.
    TwoPc,
    /// Local execution with no coordination.
    Local,
}

impl Mode {
    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Homeostasis => "homeo",
            Mode::Opt => "opt",
            Mode::TwoPc => "2pc",
            Mode::Local => "local",
        }
    }

    /// All four modes in the order the paper lists them.
    pub fn all() -> [Mode; 4] {
        [Mode::Homeostasis, Mode::Opt, Mode::TwoPc, Mode::Local]
    }
}

/// Configuration of the microbenchmark (defaults follow Section 6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroConfig {
    /// Number of items in the `Stock` table.
    pub num_items: usize,
    /// The REFILL constant of Listing 1.
    pub refill: i64,
    /// Number of replicas.
    pub replicas: usize,
    /// Round-trip time between replicas, in milliseconds.
    pub rtt_ms: u64,
    /// Number of distinct items ordered per transaction (Appendix F.1 varies
    /// this from 1 to 5; the default is 1).
    pub items_per_txn: usize,
    /// Lookahead interval `L` of Algorithm 1.
    pub lookahead: usize,
    /// Cost factor `f` of Algorithm 1.
    pub futures: usize,
    /// Local execution time of a transaction, in microseconds (the paper
    /// measures ~2 ms in local mode).
    pub local_exec_us: u64,
    /// Extra local time spent on the treaty check / stored-procedure
    /// indirection under homeostasis (< 2 ms in the paper).
    pub treaty_check_us: u64,
    /// Random seed.
    pub seed: u64,
}

impl Default for MicroConfig {
    fn default() -> Self {
        MicroConfig {
            num_items: 10_000,
            refill: 100,
            replicas: 2,
            rtt_ms: 100,
            items_per_txn: 1,
            lookahead: 20,
            futures: 3,
            local_exec_us: 2_000,
            treaty_check_us: 1_500,
            seed: 42,
        }
    }
}

impl MicroConfig {
    /// The RTT matrix for this configuration (uniform, as in Section 6.1).
    pub fn rtt_matrix(&self) -> RttMatrix {
        RttMatrix::uniform(self.replicas, self.rtt_ms)
    }

    /// The optimizer settings derived from this configuration.
    pub fn optimizer(&self) -> OptimizerConfig {
        OptimizerConfig {
            lookahead: self.lookahead,
            futures: self.futures,
            seed: self.seed,
        }
    }
}

/// The stock object for item `i` (shared with [`homeo_lang::programs`]).
pub fn stock_obj(item: usize) -> ObjId {
    programs::stock_obj(item as i64)
}

/// Populates a relational `stock` table (plus the flat stock objects) in a
/// storage engine — the analogue of loading MySQL before the experiment.
/// Returns the engine.
pub fn populate_stock_engine(config: &MicroConfig) -> Engine {
    let engine = Engine::new();
    engine.create_table(TableSchema::new(
        "stock",
        vec![Column::int("itemid"), Column::int("qty")],
        &["itemid"],
    ));
    for item in 0..config.num_items {
        engine
            .insert_row(
                "stock",
                vec![Value::Int(item as i64), Value::Int(config.refill)],
            )
            .expect("fresh table accepts all items");
        engine.poke(stock_obj(item).as_str(), config.refill);
    }
    engine
}

/// Builds the [`SiteRuntime`] under test for one mode: per-replica engines
/// populated with the stock table, wrapped in the mode's runtime.
pub fn build_runtime(config: &MicroConfig, mode: Mode) -> Box<dyn SiteRuntime> {
    build_runtime_with_timer(config, mode, Timer::Wall)
}

/// [`build_runtime`] with an explicit solver [`Timer`] ([`Timer::Fixed`]
/// makes seeded runs byte-for-byte reproducible).
pub fn build_runtime_with_timer(
    config: &MicroConfig,
    mode: Mode,
    timer: Timer,
) -> Box<dyn SiteRuntime> {
    let engines: Vec<Engine> = (0..config.replicas)
        .map(|_| populate_stock_engine(config))
        .collect();
    match mode {
        Mode::Homeostasis => Box::new(
            ReplicatedRuntime::from_engines(
                engines,
                ReplicatedMode::Homeostasis {
                    optimizer: Some(config.optimizer()),
                },
            )
            .with_timer(timer),
        ),
        Mode::Opt => Box::new(
            ReplicatedRuntime::from_engines(engines, ReplicatedMode::EvenSplit).with_timer(timer),
        ),
        Mode::TwoPc => Box::new(TwoPcRuntime::from_engines(engines)),
        Mode::Local => Box::new(LocalRuntime::from_engines(engines)),
    }
}

/// The microbenchmark workload: issues Listing 1 transactions through any
/// [`SiteRuntime`] and prices their cost components.
pub struct MicroWorkload {
    config: MicroConfig,
    mode: Mode,
    rtt: RttMatrix,
}

impl MicroWorkload {
    /// Builds the workload for a mode.
    pub fn new(config: MicroConfig, mode: Mode) -> Self {
        let rtt = config.rtt_matrix();
        MicroWorkload { config, mode, rtt }
    }

    /// The mode this workload drives.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    fn local_cost(&self) -> SimTime {
        match self.mode {
            Mode::Homeostasis | Mode::Opt => {
                self.config.local_exec_us + self.config.treaty_check_us
            }
            Mode::TwoPc | Mode::Local => self.config.local_exec_us,
        }
    }

    fn sync_comm_cost(&self, replica: usize) -> SimTime {
        // A synchronization (and a 2PC commit) is two global rounds: state
        // exchange plus treaty distribution (Section 5.1), each bounded by
        // the slowest peer.
        2 * self.rtt.max_rtt_from(replica)
    }

    fn pick_items(&self, rng: &mut DetRng) -> Vec<usize> {
        rng.distinct_indices(self.config.num_items, self.config.items_per_txn.max(1))
    }
}

impl WorkloadDriver for MicroWorkload {
    fn run_once(
        &mut self,
        site: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome {
        let items = self.pick_items(rng);
        let refill_to = self.config.refill - 1;
        let local = self.local_cost() * items.len() as u64;
        // A multi-item transaction is one batch: its within-treaty orders
        // group-commit through a single WAL cycle (or one wire frame on the
        // cluster backends).
        let ops: Vec<SiteOp> = items
            .iter()
            .map(|item| {
                let obj = stock_obj(*item);
                runtime.ensure_registered(&obj, self.config.refill, 1);
                SiteOp::Order {
                    obj,
                    amount: 1,
                    refill_to: Some(refill_to),
                }
            })
            .collect();
        let outcomes = runtime.submit_batch(site, &ops);
        let committed = outcomes.iter().all(|o| o.committed);
        let synchronized = outcomes.iter().any(|o| o.synchronized);
        let communicated = outcomes.iter().any(|o| o.comm_rounds > 0);
        let solver = outcomes.iter().map(|o| o.solver_micros).sum();
        ClientOutcome {
            committed,
            synchronized,
            costs: CostComponents {
                local,
                communication: if communicated {
                    self.sync_comm_cost(site)
                } else {
                    0
                },
                solver,
            },
        }
    }
}

/// Convenience: the closed-loop configuration matching Section 6.1 defaults
/// (5 s warm-up; the measurement window is supplied by the caller since the
/// reproduction typically uses a shorter window than the paper's 300 s).
pub fn closed_loop_config(
    config: &MicroConfig,
    clients_per_replica: usize,
    measure_ms: u64,
) -> homeo_sim::ClosedLoopConfig {
    homeo_sim::ClosedLoopConfig {
        replicas: config.replicas,
        clients_per_replica,
        warmup: millis(1_000),
        measure: millis(measure_ms),
        seed: config.seed,
        cores_per_replica: 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_runtime::drive;

    fn small_config() -> MicroConfig {
        MicroConfig {
            num_items: 200,
            replicas: 2,
            rtt_ms: 100,
            lookahead: 10,
            futures: 2,
            ..MicroConfig::default()
        }
    }

    fn run_mode(mode: Mode, config: &MicroConfig) -> homeo_sim::RunMetrics {
        let mut runtime = build_runtime_with_timer(config, mode, Timer::fixed_zero());
        let mut workload = MicroWorkload::new(config.clone(), mode);
        let loop_config = closed_loop_config(config, 8, 3_000);
        drive(&loop_config, runtime.as_mut(), &mut workload)
    }

    #[test]
    fn homeostasis_mostly_commits_locally() {
        let config = small_config();
        let metrics = run_mode(Mode::Homeostasis, &config);
        // Section 6.1: "97% of the transactions execute locally".
        assert!(
            metrics.sync_ratio_percent() < 15.0,
            "sync ratio {}",
            metrics.sync_ratio_percent()
        );
        let lat = &metrics.latency;
        assert!(lat.percentile_ms(50.0) < 10.0);
    }

    #[test]
    fn mode_ordering_matches_the_paper() {
        let config = small_config();
        let homeo = run_mode(Mode::Homeostasis, &config);
        let opt = run_mode(Mode::Opt, &config);
        let twopc = run_mode(Mode::TwoPc, &config);
        let local = run_mode(Mode::Local, &config);
        // Throughput: local ≥ opt ≈ homeo ≫ 2pc.
        assert!(local.throughput_per_replica() >= homeo.throughput_per_replica());
        assert!(homeo.throughput_per_replica() > 10.0 * twopc.throughput_per_replica());
        assert!(opt.throughput_per_replica() > 10.0 * twopc.throughput_per_replica());
        // Latency medians: homeo and local are milliseconds, 2PC is ~2 RTT.
        let twopc_lat = &twopc.latency;
        assert!(twopc_lat.percentile_ms(50.0) >= 190.0);
        let homeo_lat = &homeo.latency;
        assert!(homeo_lat.percentile_ms(50.0) < 20.0);
    }

    #[test]
    fn stock_population_loads_every_replica_engine() {
        let config = MicroConfig {
            num_items: 50,
            ..small_config()
        };
        let runtime = build_runtime(&config, Mode::Homeostasis);
        assert_eq!(runtime.sites(), 2);
        for site in 0..2 {
            let row = runtime
                .engine(site)
                .get_row("stock", &[Value::Int(7)])
                .unwrap()
                .unwrap();
            assert_eq!(row[1], Value::Int(config.refill));
            assert_eq!(runtime.value_at(site, &stock_obj(7)), config.refill);
        }
    }

    #[test]
    fn multi_item_transactions_synchronize_more_often() {
        let config = small_config();
        let single = run_mode(Mode::Homeostasis, &config);
        let multi = run_mode(
            Mode::Homeostasis,
            &MicroConfig {
                items_per_txn: 5,
                ..config
            },
        );
        assert!(multi.sync_ratio_percent() >= single.sync_ratio_percent());
    }

    #[test]
    fn all_modes_share_the_runtime_surface_and_stay_engine_backed() {
        let config = MicroConfig {
            num_items: 20,
            ..small_config()
        };
        for mode in Mode::all() {
            let mut runtime = build_runtime_with_timer(&config, mode, Timer::fixed_zero());
            let mut workload = MicroWorkload::new(config.clone(), mode);
            let mut rng = DetRng::seed_from(1);
            for site in [0usize, 1, 0, 1] {
                let out = workload.run_once(site, runtime.as_mut(), &mut rng);
                assert!(out.committed, "{mode:?}");
            }
            // Every mode's orders ran through a WAL-logged engine.
            assert!(
                runtime.engine(0).wal_len() > 0 || runtime.engine(1).wal_len() > 0,
                "{mode:?} did not log through the engine"
            );
        }
    }
}
