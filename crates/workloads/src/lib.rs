//! # homeo-workloads
//!
//! The workloads of the paper's evaluation (Section 6), ready to run under
//! the closed-loop simulator:
//!
//! * [`datacenters`] — the five EC2 datacenters of Table 1 and their RTTs;
//! * [`micro`] — the configurable e-commerce microbenchmark of Section 6.1
//!   (a single `Stock(itemid, qty)` table and the decrement-or-refill
//!   transaction of Listing 1), covering the four execution modes
//!   (`homeo`, `opt`, `2pc`, `local`);
//! * [`tpcc`] — the TPC-C subset of Section 6.2 (New Order / Payment /
//!   Delivery at 45/45/10, hot-item skew `H`) for `homeo`, `opt` and `2pc`.
//!
//! Every mode executes through the shared `SiteRuntime` surface of
//! `homeo-runtime`: each workload module provides a `build_runtime`
//! constructor for the system under test and a `WorkloadDriver` that issues
//! transactions against it and reports their cost components (local
//! execution, communication rounds, solver time), from which the simulator
//! builds the latency/throughput/synchronization-ratio figures of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datacenters;
pub mod micro;
pub mod tpcc;

pub use datacenters::{table1_rtt_matrix, Datacenter, TABLE1};
pub use micro::{MicroConfig, MicroWorkload, Mode};
pub use tpcc::{TpccConfig, TpccWorkload};
