//! # homeo-workloads
//!
//! The workloads of the paper's evaluation (Section 6), ready to run under
//! the closed-loop simulator:
//!
//! * [`datacenters`] — the five EC2 datacenters of Table 1 and their RTTs;
//! * [`micro`] — the configurable e-commerce microbenchmark of Section 6.1
//!   (a single `Stock(itemid, qty)` table and the decrement-or-refill
//!   transaction of Listing 1), with executors for the four execution modes
//!   (`homeo`, `opt`, `2pc`, `local`);
//! * [`tpcc`] — the TPC-C subset of Section 6.2 (New Order / Payment /
//!   Delivery at 45/45/10, hot-item skew `H`), with executors for `homeo`,
//!   `opt` and `2pc`.
//!
//! Both workloads report the cost components of every transaction (local
//! execution, communication rounds, solver time) so the simulator can build
//! the latency/throughput/synchronization-ratio figures of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datacenters;
pub mod micro;
pub mod tpcc;

pub use datacenters::{table1_rtt_matrix, Datacenter, TABLE1};
pub use micro::{MicroConfig, MicroExecutor, Mode};
pub use tpcc::{TpccConfig, TpccExecutor};
