//! The five EC2 datacenters of the TPC-C evaluation and their average
//! round-trip times (Table 1 of the paper).

use homeo_sim::RttMatrix;
use serde::{Deserialize, Serialize};

/// A datacenter used in the evaluation, in the order replicas are added
//  (Section 6.2: "the replicas are added in the order UE, UW, IE, SG, BR").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Datacenter {
    /// US East (Virginia).
    VirginiaUE,
    /// US West (Oregon).
    OregonUW,
    /// Ireland.
    IrelandIE,
    /// Singapore.
    SingaporeSG,
    /// São Paulo.
    SaoPauloBR,
}

impl Datacenter {
    /// Short label used in the paper's table.
    pub fn label(&self) -> &'static str {
        match self {
            Datacenter::VirginiaUE => "UE",
            Datacenter::OregonUW => "UW",
            Datacenter::IrelandIE => "IE",
            Datacenter::SingaporeSG => "SG",
            Datacenter::SaoPauloBR => "BR",
        }
    }
}

/// The datacenters in replica-addition order.
pub const TABLE1: [Datacenter; 5] = [
    Datacenter::VirginiaUE,
    Datacenter::OregonUW,
    Datacenter::IrelandIE,
    Datacenter::SingaporeSG,
    Datacenter::SaoPauloBR,
];

/// The Table 1 RTT constants, re-exported from their single source of truth
/// in the network model ([`homeo_sim::net::TABLE1_RTT_MS`]).
pub use homeo_sim::TABLE1_RTT_MS;

/// Builds the RTT matrix for the first `replicas` datacenters in Table 1
/// order (a truncation of [`RttMatrix::table1`]).
pub fn table1_rtt_matrix(replicas: usize) -> RttMatrix {
    assert!(
        (1..=5).contains(&replicas),
        "Table 1 covers between 1 and 5 datacenters"
    );
    RttMatrix::table1().truncated(replicas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_sim::clock::millis;

    #[test]
    fn matrix_matches_table_1() {
        let m = table1_rtt_matrix(5);
        assert_eq!(m.rtt(0, 1), millis(64)); // UE-UW
        assert_eq!(m.rtt(0, 3), millis(243)); // UE-SG
        assert_eq!(m.rtt(3, 4), millis(372)); // SG-BR
        assert_eq!(m.rtt(2, 2), 0);
        assert_eq!(m.max_rtt(), millis(372));
    }

    #[test]
    fn truncation_follows_replica_addition_order() {
        let two = table1_rtt_matrix(2);
        assert_eq!(two.sites(), 2);
        assert_eq!(two.max_rtt(), millis(64)); // UE-UW only
        let three = table1_rtt_matrix(3);
        assert_eq!(three.max_rtt(), millis(170)); // UW-IE
    }

    #[test]
    fn labels_are_the_paper_codes() {
        let labels: Vec<_> = TABLE1.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["UE", "UW", "IE", "SG", "BR"]);
    }

    #[test]
    #[should_panic(expected = "between 1 and 5")]
    fn more_than_five_replicas_is_rejected() {
        table1_rtt_matrix(6);
    }
}
