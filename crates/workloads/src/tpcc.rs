//! The TPC-C subset of Section 6.2.
//!
//! Tables: Warehouse, District, Customer, Item, Stock, NewOrder (populated
//! into the per-replica storage engines). Workload: 45% New Order, 45%
//! Payment, 10% Delivery, with 1% of the items marked "hot" and a knob `H`
//! giving the percentage of New Order transactions that hit hot items.
//!
//! Treaties follow Appendix E:
//!
//! * New Order needs a per-item treaty `S_QUANTITY ≥ 0`, enforced through
//!   the replicated-counter machinery (stock decrements are the only
//!   operations that can violate it);
//! * Payment only increments balances, which never threatens a treaty, so it
//!   always commits locally;
//! * Delivery updates the per-district "lowest unprocessed order id", whose
//!   treaty pins it to its current value — every execution violates it and
//!   synchronizes.
//!
//! Execution goes through the shared [`SiteRuntime`] surface:
//! [`build_runtime`] constructs the mode under test over populated engines
//! and [`TpccWorkload`] implements [`homeo_runtime::WorkloadDriver`].

use serde::{Deserialize, Serialize};

use homeo_baselines::TwoPcRuntime;
use homeo_lang::ids::ObjId;
use homeo_protocol::{OptimizerConfig, ReplicatedMode};
use homeo_runtime::{ReplicatedRuntime, SiteOp, SiteRuntime, WorkloadDriver};
use homeo_sim::clock::SimTime;
use homeo_sim::{
    ClientOutcome, CostComponents, DetRng, LatencyStats, RttMatrix, SyncCounter, Timer,
};
use homeo_store::{Column, Engine, TableSchema, Value};

use crate::datacenters::table1_rtt_matrix;
use crate::micro::Mode;

/// Configuration of the TPC-C experiments (defaults follow Section 6.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: usize,
    /// Districts per warehouse.
    pub districts_per_warehouse: usize,
    /// Items per district.
    pub items_per_district: usize,
    /// Number of customers.
    pub customers: usize,
    /// Number of replicas (datacenters, added in Table 1 order).
    pub replicas: usize,
    /// Percentage of New Order transactions that order hot items (`H`).
    pub hotness: u32,
    /// Fraction of items that are hot (the paper marks 1%).
    pub hot_fraction: f64,
    /// Transaction mix in percent: (New Order, Payment, Delivery).
    pub mix: (u32, u32, u32),
    /// Maximum initial stock level (initial levels are uniform in 0..=max).
    pub initial_stock_max: i64,
    /// Stock refill level used when an order cannot be served.
    pub refill: i64,
    /// Lookahead interval `L` for the optimizer.
    pub lookahead: usize,
    /// Cost factor `f` for the optimizer.
    pub futures: usize,
    /// Local execution time per transaction, in microseconds.
    pub local_exec_us: u64,
    /// Extra treaty-check time under homeostasis, in microseconds.
    pub treaty_check_us: u64,
    /// Random seed.
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 10,
            districts_per_warehouse: 10,
            items_per_district: 1000,
            customers: 10_000,
            replicas: 2,
            hotness: 10,
            hot_fraction: 0.01,
            mix: (45, 45, 10),
            initial_stock_max: 100,
            refill: 91,
            lookahead: 10,
            futures: 2,
            local_exec_us: 3_000,
            treaty_check_us: 1_500,
            seed: 42,
        }
    }
}

impl TpccConfig {
    /// Total number of stock entries.
    pub fn total_items(&self) -> usize {
        self.warehouses * self.districts_per_warehouse * self.items_per_district
    }

    /// The datacenter RTT matrix for this configuration.
    pub fn rtt_matrix(&self) -> RttMatrix {
        table1_rtt_matrix(self.replicas)
    }

    /// Optimizer settings.
    pub fn optimizer(&self) -> OptimizerConfig {
        OptimizerConfig {
            lookahead: self.lookahead,
            futures: self.futures,
            seed: self.seed,
        }
    }
}

/// The stock object for a (warehouse, district, item) triple.
pub fn stock_obj(warehouse: usize, district: usize, item: usize) -> ObjId {
    ObjId::new(format!("stock[{warehouse}.{district}.{item}]"))
}

/// The per-district object holding the lowest unprocessed order id
/// (Appendix E's Delivery treaty target).
pub fn district_order_obj(warehouse: usize, district: usize) -> ObjId {
    ObjId::new(format!("neworder.min[{warehouse}.{district}]"))
}

/// The balance object for a customer.
pub fn customer_balance_obj(customer: usize) -> ObjId {
    ObjId::new(format!("customer.balance[{customer}]"))
}

/// Populates the TPC-C tables (and the flat stock objects) in one storage
/// engine.
pub fn populate_engine(config: &TpccConfig, rng: &mut DetRng) -> Engine {
    let engine = Engine::new();
    engine.create_table(TableSchema::new(
        "warehouse",
        vec![Column::int("w_id"), Column::int("w_ytd")],
        &["w_id"],
    ));
    engine.create_table(TableSchema::new(
        "district",
        vec![
            Column::int("w_id"),
            Column::int("d_id"),
            Column::int("next_o_id"),
        ],
        &["w_id", "d_id"],
    ));
    engine.create_table(TableSchema::new(
        "customer",
        vec![
            Column::int("c_id"),
            Column::int("balance"),
            Column::text("name"),
        ],
        &["c_id"],
    ));
    engine.create_table(TableSchema::new(
        "stock",
        vec![
            Column::int("w_id"),
            Column::int("d_id"),
            Column::int("i_id"),
            Column::int("quantity"),
        ],
        &["w_id", "d_id", "i_id"],
    ));
    engine.create_table(TableSchema::new(
        "neworder",
        vec![
            Column::int("w_id"),
            Column::int("d_id"),
            Column::int("o_id"),
        ],
        &["w_id", "d_id", "o_id"],
    ));
    for w in 0..config.warehouses {
        engine
            .insert_row("warehouse", vec![Value::Int(w as i64), Value::Int(0)])
            .expect("insert warehouse");
        for d in 0..config.districts_per_warehouse {
            engine
                .insert_row(
                    "district",
                    vec![Value::Int(w as i64), Value::Int(d as i64), Value::Int(1)],
                )
                .expect("insert district");
            for i in 0..config.items_per_district {
                let qty = rng.int_inclusive(0, config.initial_stock_max);
                engine
                    .insert_row(
                        "stock",
                        vec![
                            Value::Int(w as i64),
                            Value::Int(d as i64),
                            Value::Int(i as i64),
                            Value::Int(qty),
                        ],
                    )
                    .expect("insert stock");
                engine.poke(stock_obj(w, d, i).as_str(), qty);
            }
        }
    }
    for c in 0..config.customers {
        engine
            .insert_row(
                "customer",
                vec![
                    Value::Int(c as i64),
                    Value::Int(0),
                    Value::Text(format!("customer-{c}")),
                ],
            )
            .expect("insert customer");
    }
    engine
}

/// Builds the [`SiteRuntime`] under test for one TPC-C mode. `Local` is not
/// part of the paper's TPC-C comparison; `Opt` and `Homeostasis` share the
/// replicated runtime.
pub fn build_runtime(config: &TpccConfig, mode: Mode) -> Box<dyn SiteRuntime> {
    build_runtime_with_timer(config, mode, Timer::Wall)
}

/// [`build_runtime`] with an explicit solver [`Timer`].
pub fn build_runtime_with_timer(
    config: &TpccConfig,
    mode: Mode,
    timer: Timer,
) -> Box<dyn SiteRuntime> {
    let engines: Vec<Engine> = (0..config.replicas)
        .map(|_| populate_engine(config, &mut DetRng::seed_from(config.seed)))
        .collect();
    match mode {
        Mode::Homeostasis => Box::new(
            ReplicatedRuntime::from_engines(
                engines,
                ReplicatedMode::Homeostasis {
                    optimizer: Some(config.optimizer()),
                },
            )
            .with_timer(timer),
        ),
        Mode::Opt | Mode::Local => Box::new(
            ReplicatedRuntime::from_engines(engines, ReplicatedMode::EvenSplit).with_timer(timer),
        ),
        Mode::TwoPc => Box::new(TwoPcRuntime::from_engines(engines)),
    }
}

/// The TPC-C workload: drives any [`SiteRuntime`] and separately records the
/// New Order measurements the paper reports.
pub struct TpccWorkload {
    config: TpccConfig,
    mode: Mode,
    rtt: RttMatrix,
    /// Latency samples of New Order transactions only (the paper's Figures
    /// 19–22 report New Order measurements, per the TPC-C specification).
    pub new_order_latency: LatencyStats,
    /// Commit / synchronization counters for New Order only.
    pub new_order_counter: SyncCounter,
    /// Commit / synchronization counters over all transaction types.
    pub all_counter: SyncCounter,
}

impl TpccWorkload {
    /// Builds the workload for a mode.
    pub fn new(config: TpccConfig, mode: Mode) -> Self {
        let rtt = config.rtt_matrix();
        TpccWorkload {
            config,
            mode,
            rtt,
            new_order_latency: LatencyStats::new(),
            new_order_counter: SyncCounter::new(),
            all_counter: SyncCounter::new(),
        }
    }

    /// The mode under test.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    fn sync_comm_cost(&self, replica: usize) -> SimTime {
        2 * self.rtt.max_rtt_from(replica)
    }

    fn local_cost(&self) -> SimTime {
        match self.mode {
            Mode::Homeostasis | Mode::Opt => {
                self.config.local_exec_us + self.config.treaty_check_us
            }
            _ => self.config.local_exec_us,
        }
    }

    fn pick_item(&self, rng: &mut DetRng) -> (usize, usize, usize) {
        let w = rng.index(self.config.warehouses);
        let d = rng.index(self.config.districts_per_warehouse);
        // Hot items are the first `hot_fraction` of each district's item
        // space; `hotness`% of New Orders go to a hot item.
        let per_district = self.config.items_per_district;
        let hot_count = ((per_district as f64 * self.config.hot_fraction).ceil() as usize).max(1);
        let item = if rng.chance(self.config.hotness as f64 / 100.0) {
            rng.index(hot_count)
        } else {
            hot_count + rng.index(per_district - hot_count)
        };
        (w, d, item)
    }

    fn price(&self, replica: usize, out: homeo_runtime::OpOutcome) -> ClientOutcome {
        ClientOutcome {
            committed: out.committed,
            synchronized: out.synchronized,
            costs: CostComponents {
                local: self.local_cost(),
                communication: if out.comm_rounds > 0 {
                    self.sync_comm_cost(replica)
                } else {
                    0
                },
                solver: out.solver_micros,
            },
        }
    }

    fn new_order(
        &mut self,
        replica: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome {
        let (w, d, item) = self.pick_item(rng);
        let qty = rng.int_inclusive(1, 5);
        let obj = stock_obj(w, d, item);
        let initial = runtime.value_at(0, &obj);
        runtime.ensure_registered(&obj, initial, 0);
        let out = runtime.execute(
            replica,
            SiteOp::Order {
                obj,
                amount: qty,
                refill_to: Some(self.config.refill),
            },
        );
        let outcome = self.price(replica, out);
        // Record the per-site order id bookkeeping in the relational layer:
        // each site generates its own monotonically increasing ids, which is
        // exactly the ordering relaxation Appendix E allows.
        let engine = runtime.engine(replica);
        let next = engine
            .get_row("district", &[Value::Int(w as i64), Value::Int(d as i64)])
            .ok()
            .flatten()
            .and_then(|row| row[2].as_int())
            .unwrap_or(1);
        let _ = engine.with_table_mut("district", |t| {
            t.update_column(
                &[Value::Int(w as i64), Value::Int(d as i64)],
                "next_o_id",
                Value::Int(next + 1),
            )
        });
        let _ = engine.insert_row(
            "neworder",
            vec![
                Value::Int(w as i64),
                Value::Int(d as i64),
                Value::Int(next * self.config.replicas as i64 + replica as i64),
            ],
        );
        outcome
    }

    fn payment(
        &mut self,
        replica: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome {
        let customer = rng.index(self.config.customers);
        let amount = rng.int_inclusive(1, 5000);
        let obj = customer_balance_obj(customer);
        runtime.ensure_registered(&obj, 0, -1_000_000_000);
        let out = runtime.execute(replica, SiteOp::Increment { obj, amount });
        self.price(replica, out)
    }

    fn delivery(
        &mut self,
        replica: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome {
        let w = rng.index(self.config.warehouses);
        let d = rng.index(self.config.districts_per_warehouse);
        let obj = district_order_obj(w, d);
        // Remove the oldest order from the relational NewOrder table.
        let _ = runtime.engine(replica).with_table_mut("neworder", |t| {
            if let Some(key) = t.first_key() {
                let _ = t.delete(&key);
            }
        });
        runtime.ensure_registered(&obj, 0, 0);
        let out = runtime.execute(replica, SiteOp::ForceSync { obj });
        self.price(replica, out)
    }
}

impl WorkloadDriver for TpccWorkload {
    fn run_once(
        &mut self,
        site: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome {
        let (no, pay, del) = self.config.mix;
        let kind = rng.weighted_index(&[no as f64, pay as f64, del as f64]);
        let outcome = match kind {
            0 => self.new_order(site, runtime, rng),
            1 => self.payment(site, runtime, rng),
            _ => self.delivery(site, runtime, rng),
        };
        self.all_counter
            .record(outcome.committed, outcome.synchronized);
        if kind == 0 {
            self.new_order_latency.record(outcome.costs.total().max(1));
            self.new_order_counter
                .record(outcome.committed, outcome.synchronized);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_runtime::drive;
    use homeo_sim::clock::millis;

    fn small_config() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            items_per_district: 50,
            customers: 200,
            replicas: 2,
            lookahead: 8,
            futures: 2,
            ..TpccConfig::default()
        }
    }

    fn run(mode: Mode, config: &TpccConfig) -> (homeo_sim::RunMetrics, TpccWorkload) {
        let mut runtime = build_runtime_with_timer(config, mode, Timer::fixed_zero());
        let mut workload = TpccWorkload::new(config.clone(), mode);
        let loop_config = homeo_sim::ClosedLoopConfig {
            replicas: config.replicas,
            clients_per_replica: 8,
            warmup: millis(500),
            measure: millis(4_000),
            seed: 7,
            cores_per_replica: 16,
        };
        let metrics = drive(&loop_config, runtime.as_mut(), &mut workload);
        (metrics, workload)
    }

    #[test]
    fn population_matches_the_scaled_down_schema() {
        let config = small_config();
        let runtime = build_runtime(&config, Mode::Homeostasis);
        let stock_rows = runtime.engine(0).with_table("stock", |t| t.len()).unwrap();
        assert_eq!(stock_rows, config.total_items());
        let customers = runtime
            .engine(0)
            .with_table("customer", |t| t.len())
            .unwrap();
        assert_eq!(customers, 200);
        // The flat stock objects mirror the relational quantities, on every
        // replica identically.
        let row = runtime
            .engine(0)
            .get_row("stock", &[Value::Int(1), Value::Int(1), Value::Int(7)])
            .unwrap()
            .unwrap();
        let qty = row[3].as_int().unwrap();
        assert_eq!(runtime.value_at(0, &stock_obj(1, 1, 7)), qty);
        assert_eq!(runtime.value_at(1, &stock_obj(1, 1, 7)), qty);
    }

    #[test]
    fn homeostasis_outperforms_two_phase_commit() {
        let config = small_config();
        let (_, homeo) = run(Mode::Homeostasis, &config);
        let (_, twopc) = run(Mode::TwoPc, &config);
        // New Order throughput comparison is done on the workload-side
        // counters (the paper reports New Order only).
        let homeo_commits = homeo.new_order_counter.committed;
        let twopc_commits = twopc.new_order_counter.committed;
        assert!(
            homeo_commits > 2 * twopc_commits,
            "homeo {homeo_commits} vs 2pc {twopc_commits}"
        );
        // And homeostasis New Orders mostly commit locally.
        assert!(homeo.new_order_counter.sync_ratio_percent() < 50.0);
    }

    #[test]
    fn payments_never_synchronize_and_deliveries_always_do() {
        let config = small_config();
        let mut runtime = build_runtime_with_timer(&config, Mode::Homeostasis, Timer::fixed_zero());
        let mut workload = TpccWorkload::new(config, Mode::Homeostasis);
        let mut rng = DetRng::seed_from(3);
        let pay = workload.payment(0, runtime.as_mut(), &mut rng);
        assert!(!pay.synchronized);
        let del = workload.delivery(1, runtime.as_mut(), &mut rng);
        assert!(del.synchronized);
    }

    #[test]
    fn hotness_increases_the_new_order_sync_ratio() {
        let cold = small_config();
        let hot = TpccConfig {
            hotness: 50,
            ..small_config()
        };
        let (_, cold_wl) = run(Mode::Homeostasis, &cold);
        let (_, hot_wl) = run(Mode::Homeostasis, &hot);
        assert!(
            hot_wl.new_order_counter.sync_ratio_percent() + 0.5
                >= cold_wl.new_order_counter.sync_ratio_percent(),
            "hot {} vs cold {}",
            hot_wl.new_order_counter.sync_ratio_percent(),
            cold_wl.new_order_counter.sync_ratio_percent()
        );
    }
}
