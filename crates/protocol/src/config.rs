//! The one cluster configuration surface.
//!
//! Every execution layer used to grow its own knob style: the cluster
//! backends took a `ClusterConfig`, the single-process
//! `ReplicatedRuntime` chained `with_sync_tuning` / `with_workload_hints`
//! setters, and the TCP daemon filled a bare `NodeOptions` struct literal.
//! [`ClusterConfig`] is now the canonical carrier for the shared knobs —
//! negotiation mode, solver timer, workload hints, synchronization
//! tuning — and every layer accepts it:
//!
//! * `homeo_cluster::{ThreadedCluster, SimCluster, TcpCluster,
//!   ClusterRuntime}` take it at construction;
//! * `homeo_runtime::ReplicatedRuntime::from_config` builds the
//!   single-process runtime from the same value;
//! * `homeo_cluster::NodeOptions::new` seeds a TCP daemon node from it.
//!
//! ```
//! use homeo_protocol::{ClusterConfig, ReplicatedMode, SyncTuning};
//! use homeo_sim::Timer;
//!
//! let config = ClusterConfig::new(ReplicatedMode::EvenSplit)
//!     .with_timer(Timer::fixed_zero())
//!     .with_tuning(SyncTuning::default());
//! assert_eq!(config.hints(3).site_weights.len(), 3);
//! ```

use homeo_sim::Timer;

use crate::negotiation::SyncTuning;
use crate::replicated::{ReplicatedMode, WorkloadHints};

/// Shared configuration of a replicated execution layer: the negotiation
/// mode, the solver timer, the optimizer's workload hints and the
/// synchronization-round tuning.
///
/// This is the single builder surface consumed by every backend (threaded,
/// simulated, TCP, and the single-process `ReplicatedRuntime`).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// How local treaties are chosen at each negotiation.
    pub mode: ReplicatedMode,
    /// Elapsed-time source for reported solver times ([`Timer::Fixed`]
    /// makes seeded runs byte-for-byte reproducible).
    pub timer: Timer,
    /// Workload hints for the optimizer; `None` means uniform.
    pub hints: Option<WorkloadHints>,
    /// Synchronization-round cost knobs: solver warm starts and the
    /// demand-adaptive proactive control loop.
    pub tuning: SyncTuning,
}

impl ClusterConfig {
    /// A configuration with a wall-clock timer, uniform hints and the
    /// default tuning (warm starts on, proactive control off).
    pub fn new(mode: ReplicatedMode) -> Self {
        ClusterConfig {
            mode,
            timer: Timer::Wall,
            hints: None,
            tuning: SyncTuning::default(),
        }
    }

    /// Replaces the elapsed-time source.
    pub fn with_timer(mut self, timer: Timer) -> Self {
        self.timer = timer;
        self
    }

    /// Replaces the synchronization tuning.
    pub fn with_tuning(mut self, tuning: SyncTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Sets the optimizer's workload hints.
    pub fn with_hints(mut self, hints: WorkloadHints) -> Self {
        self.hints = hints.into();
        self
    }

    /// The effective hints for `sites` replicas (uniform when unset).
    pub fn hints(&self, sites: usize) -> WorkloadHints {
        self.hints
            .clone()
            .unwrap_or_else(|| WorkloadHints::uniform(sites))
    }
}
