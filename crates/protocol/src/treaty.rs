//! Global and local treaties (Definitions 3.6, 3.7 and Section 4.1).
//!
//! A **global treaty** Γ is a set of database states, represented
//! intensionally as a conjunction of linear constraints over object values.
//! A **local treaty** ϕΓᵢ is a constraint that mentions only objects stored
//! at site `i`; the conjunction of all local treaties must imply the global
//! treaty (H1), and every local treaty must hold on the database the round
//! started from (H2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_solver::{LinearConstraint, VarName};

use crate::model::{Loc, SiteId};

/// Evaluates a set of linear constraints against a database (constraint
/// variables are object names).
pub fn constraints_hold_on(constraints: &[LinearConstraint], db: &Database) -> bool {
    let mut assignment: BTreeMap<VarName, i64> = BTreeMap::new();
    for c in constraints {
        for v in c.vars() {
            assignment
                .entry(v.clone())
                .or_insert_with(|| db.get(&ObjId::new(v.clone())));
        }
    }
    constraints.iter().all(|c| c.holds(&assignment))
}

/// The global treaty: a conjunction of linear constraints over the global
/// database state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalTreaty {
    /// The constraints.
    pub constraints: Vec<LinearConstraint>,
}

impl GlobalTreaty {
    /// Creates a treaty from constraints.
    pub fn new(constraints: Vec<LinearConstraint>) -> Self {
        GlobalTreaty { constraints }
    }

    /// True when the treaty holds on the database.
    pub fn holds_on(&self, db: &Database) -> bool {
        constraints_hold_on(&self.constraints, db)
    }

    /// The objects mentioned by the treaty.
    pub fn objects(&self) -> Vec<ObjId> {
        let mut out: Vec<ObjId> = self
            .constraints
            .iter()
            .flat_map(|c| c.vars().map(|v| ObjId::new(v.clone())))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// A local treaty: constraints whose variables are all objects local to one
/// site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalTreaty {
    /// The site that enforces this treaty.
    pub site: SiteId,
    /// The constraints (over local objects only).
    pub constraints: Vec<LinearConstraint>,
}

impl LocalTreaty {
    /// Creates a local treaty.
    pub fn new(site: SiteId, constraints: Vec<LinearConstraint>) -> Self {
        LocalTreaty { site, constraints }
    }

    /// True when the treaty holds on the (site-local view of the) database.
    pub fn holds_on(&self, db: &Database) -> bool {
        constraints_hold_on(&self.constraints, db)
    }

    /// Checks that every mentioned object really is local to the treaty's
    /// site under `loc`.
    pub fn is_well_located(&self, loc: &Loc) -> bool {
        self.constraints
            .iter()
            .flat_map(|c| c.vars())
            .all(|v| loc.is_local(&ObjId::new(v.clone()), self.site))
    }
}

/// The treaty table kept by the protocol: the current global treaty and the
/// per-site local treaties for the current round (Section 5.1's "treaty
/// table" data structure).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreatyTable {
    /// The global treaty of the current round.
    pub global: GlobalTreaty,
    /// The per-site local treaties (indexed by site id).
    pub locals: Vec<LocalTreaty>,
    /// The round number (starts at 0, incremented at every renegotiation).
    pub round: u64,
}

impl TreatyTable {
    /// Creates a treaty table for `sites` sites with trivial (empty) treaties.
    pub fn new(sites: usize) -> Self {
        TreatyTable {
            global: GlobalTreaty::default(),
            locals: (0..sites)
                .map(|s| LocalTreaty::new(s, Vec::new()))
                .collect(),
            round: 0,
        }
    }

    /// Installs a new round's treaties.
    pub fn install(&mut self, global: GlobalTreaty, locals: Vec<LocalTreaty>) {
        self.global = global;
        self.locals = locals;
        self.round += 1;
    }

    /// The local treaty of a site.
    pub fn local(&self, site: SiteId) -> &LocalTreaty {
        &self.locals[site]
    }

    /// True when every local treaty holds on the given (global) database —
    /// by H1 this implies the global treaty holds as well.
    pub fn all_locals_hold_on(&self, db: &Database) -> bool {
        self.locals.iter().all(|l| l.holds_on(db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_solver::LinExpr;

    fn ge(var: &str, n: i64) -> LinearConstraint {
        LinearConstraint::ge(LinExpr::var(var), LinExpr::constant(n))
    }

    #[test]
    fn global_treaty_evaluation() {
        let t = GlobalTreaty::new(vec![LinearConstraint::ge(
            LinExpr::var("x").plus(&LinExpr::var("y")),
            LinExpr::constant(20),
        )]);
        assert!(t.holds_on(&Database::from_pairs([("x", 10), ("y", 13)])));
        assert!(!t.holds_on(&Database::from_pairs([("x", 10), ("y", 9)])));
        assert_eq!(t.objects(), vec![ObjId::new("x"), ObjId::new("y")]);
    }

    #[test]
    fn missing_objects_default_to_zero() {
        let t = GlobalTreaty::new(vec![ge("q", 1)]);
        assert!(!t.holds_on(&Database::new()));
        assert!(t.holds_on(&Database::from_pairs([("q", 5)])));
    }

    #[test]
    fn local_treaty_location_check() {
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
        let ok = LocalTreaty::new(0, vec![ge("x", 0)]);
        let bad = LocalTreaty::new(0, vec![ge("y", 0)]);
        assert!(ok.is_well_located(&loc));
        assert!(!bad.is_well_located(&loc));
    }

    #[test]
    fn treaty_table_rounds_and_checks() {
        let mut table = TreatyTable::new(2);
        assert_eq!(table.round, 0);
        assert!(table.all_locals_hold_on(&Database::new()));
        table.install(
            GlobalTreaty::new(vec![ge("q", 0)]),
            vec![
                LocalTreaty::new(0, vec![ge("dq0", -2)]),
                LocalTreaty::new(1, vec![ge("dq1", -2)]),
            ],
        );
        assert_eq!(table.round, 1);
        let db = Database::from_pairs([("q", 10), ("dq0", -1), ("dq1", -2)]);
        assert!(table.all_locals_hold_on(&db));
        let db2 = Database::from_pairs([("q", 10), ("dq0", -3)]);
        assert!(!table.all_locals_hold_on(&db2));
        assert!(table.local(1).holds_on(&db2));
    }
}
