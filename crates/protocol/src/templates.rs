//! Treaty preprocessing, local-treaty templates and the always-valid default
//! configuration (Section 4.2, Theorem 4.3, Appendix C.1).
//!
//! Starting from the symbolic-table row ψ satisfied by the current database:
//!
//! 1. **preprocess** ψ into a (stronger) conjunction of linear constraints —
//!    non-linear or disjunctive subformulas are replaced by freezing the
//!    involved objects at their current values (Appendix C.1);
//! 2. **generate templates**: every clause `Σ dᵢxᵢ ⋈ n` becomes, for each
//!    site `k`, `Σ_{Loc(xᵢ)=k} dᵢxᵢ + c_k ⋈ n` with a fresh configuration
//!    variable `c_k`;
//! 3. instantiate the configuration variables — either with the default
//!    assignment of Theorem 4.3 (always valid) or with values chosen by the
//!    workload-driven optimizer (Algorithm 1, [`crate::optimizer`]).
//!
//! The exact validity condition (H1) for these templates reduces to linear
//! constraints over the configuration variables (`Σ_k c_k ≥ (K-1)·n` for
//! `≤`-clauses after normalisation, equality for `=`-clauses), which is what
//! the optimizer hands to the MaxSMT engine as hard constraints.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_analysis::linearize::conjuncts_to_constraints;
use homeo_lang::ast::BExp;
use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_solver::{CmpKind, LinExpr, LinearConstraint, VarName};

use crate::model::Loc;
use crate::treaty::{GlobalTreaty, LocalTreaty};

/// Preprocesses a symbolic-table guard ψ into a conjunction of linear
/// constraints that implies it, given the current database `db` (which must
/// satisfy ψ).
///
/// Linearizable conjuncts pass through unchanged. Any conjunct that cannot
/// be expressed as a single conjunction of linear constraints (non-linear
/// arithmetic, disjunctions arising from negated conjunctions or negated
/// equalities) is replaced by equality constraints freezing every object it
/// mentions at its current value — exactly the Appendix C.1 construction.
pub fn preprocess_guard(guard: &BExp, db: &Database) -> Vec<LinearConstraint> {
    let mut out = Vec::new();
    let mut conjuncts = Vec::new();
    flatten_conjuncts(guard, &mut conjuncts);
    for conjunct in conjuncts {
        match conjuncts_to_constraints(&conjunct) {
            Ok(cs) => out.extend(cs),
            Err(_) => {
                for obj in conjunct.reads() {
                    out.push(LinearConstraint::eq(
                        LinExpr::var(obj.as_str()),
                        LinExpr::constant(db.get(&obj)),
                    ));
                }
            }
        }
    }
    out.dedup();
    remove_redundant(out)
}

/// Drops constraints that are implied by the remaining ones (e.g. the
/// `x + y ≥ 10` clause subsumed by `x + y ≥ 20` in the Figure 4c row),
/// keeping the treaty — and therefore the templates — as small as the paper's
/// hand-derived ψ.
fn remove_redundant(mut constraints: Vec<LinearConstraint>) -> Vec<LinearConstraint> {
    let mut i = 0;
    while i < constraints.len() {
        if constraints.len() <= 1 {
            break;
        }
        let mut rest = constraints.clone();
        let candidate = rest.remove(i);
        if homeo_solver::fm::implies(&rest, &[candidate]) {
            constraints.remove(i);
        } else {
            i += 1;
        }
    }
    constraints
}

fn flatten_conjuncts(b: &BExp, out: &mut Vec<BExp>) {
    match b {
        BExp::And(l, r) => {
            flatten_conjuncts(l, out);
            flatten_conjuncts(r, out);
        }
        BExp::True => {}
        other => out.push(other.clone()),
    }
}

/// One clause of the preprocessed global treaty, split by site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClauseTemplate {
    /// The comparison (strict `<` is tightened to `≤` over the integers).
    pub op: CmpKind,
    /// The right-hand side `n` of `Σ dᵢxᵢ ⋈ n`.
    pub bound: i64,
    /// The per-site local parts `Σ_{Loc(xᵢ)=k} dᵢxᵢ` (indexed by site).
    pub site_terms: Vec<LinExpr>,
    /// The per-site configuration variable names (indexed by site).
    pub config_vars: Vec<VarName>,
    /// The full (global) left-hand side.
    pub full_lhs: LinExpr,
}

/// The set of clause templates for one protocol round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreatyTemplates {
    /// Number of sites.
    pub sites: usize,
    /// The clauses.
    pub clauses: Vec<ClauseTemplate>,
}

impl TreatyTemplates {
    /// Generates templates from a preprocessed conjunction of linear
    /// constraints.
    pub fn generate(psi: &[LinearConstraint], loc: &Loc, sites: usize) -> Self {
        let clauses = psi
            .iter()
            .enumerate()
            .map(|(idx, c)| {
                let tightened = c.tightened();
                // tightened.expr ⋈ 0  ⇔  lhs ⋈ bound with bound = -constant.
                let bound = -tightened.expr.constant_part();
                let mut lhs = tightened.expr.clone();
                lhs.add_constant(bound); // remove the constant part
                let mut site_terms = vec![LinExpr::zero(); sites];
                for (var, coeff) in lhs.terms() {
                    let site = loc.site_of(&ObjId::new(var.clone()));
                    site_terms[site].add_term(var.clone(), coeff);
                }
                let config_vars = (0..sites).map(|k| format!("c{idx}@{k}")).collect();
                ClauseTemplate {
                    op: tightened.op,
                    bound,
                    site_terms,
                    config_vars,
                    full_lhs: lhs,
                }
            })
            .collect();
        TreatyTemplates { sites, clauses }
    }

    /// The global treaty these templates enforce.
    pub fn global(&self) -> GlobalTreaty {
        GlobalTreaty::new(
            self.clauses
                .iter()
                .map(|c| match c.op {
                    CmpKind::Le | CmpKind::Lt => {
                        LinearConstraint::le(c.full_lhs.clone(), LinExpr::constant(c.bound))
                    }
                    CmpKind::Eq => {
                        LinearConstraint::eq(c.full_lhs.clone(), LinExpr::constant(c.bound))
                    }
                })
                .collect(),
        )
    }

    /// The always-valid default configuration of Theorem 4.3.
    ///
    /// * equality clauses: `c_k` is the remote part evaluated on `db`;
    /// * inequality clauses: `c_k = n - (local part evaluated on db)`, so the
    ///   local treaty becomes "the local sum never exceeds its current
    ///   value".
    pub fn default_config(&self, db: &Database) -> BTreeMap<VarName, i64> {
        let mut config = BTreeMap::new();
        for clause in &self.clauses {
            for k in 0..self.sites {
                let local_now = eval_on_db(&clause.site_terms[k], db);
                let value = match clause.op {
                    CmpKind::Eq => {
                        let full_now = eval_on_db(&clause.full_lhs, db);
                        full_now - local_now
                    }
                    CmpKind::Le | CmpKind::Lt => clause.bound - local_now,
                };
                config.insert(clause.config_vars[k].clone(), value);
            }
        }
        config
    }

    /// The exact validity condition H1 expressed as linear constraints over
    /// the configuration variables (hard constraints for the optimizer).
    pub fn hard_constraints(&self) -> Vec<LinearConstraint> {
        let k = self.sites as i64;
        self.clauses
            .iter()
            .map(|clause| {
                let mut sum = LinExpr::zero();
                for v in &clause.config_vars {
                    sum.add_term(v.clone(), 1);
                }
                let rhs = LinExpr::constant((k - 1) * clause.bound);
                match clause.op {
                    CmpKind::Le | CmpKind::Lt => LinearConstraint::ge(sum, rhs),
                    CmpKind::Eq => LinearConstraint::eq(sum, rhs),
                }
            })
            .collect()
    }

    /// The constraints on configuration variables under which *all* local
    /// treaties hold on the given database — the per-sampled-state soft
    /// groups of Algorithm 1.
    pub fn soft_group_for_db(&self, db: &Database) -> Vec<LinearConstraint> {
        let mut out = Vec::new();
        for clause in &self.clauses {
            for k in 0..self.sites {
                let local_now = eval_on_db(&clause.site_terms[k], db);
                let cvar = LinExpr::var(clause.config_vars[k].clone());
                let needed = LinExpr::constant(clause.bound - local_now);
                out.push(match clause.op {
                    CmpKind::Le | CmpKind::Lt => LinearConstraint::le(cvar, needed),
                    CmpKind::Eq => LinearConstraint::eq(cvar, needed),
                });
            }
        }
        out
    }

    /// Instantiates the templates into per-site local treaties using a
    /// configuration (missing configuration variables fall back to the
    /// default configuration for `db`).
    pub fn local_treaties(
        &self,
        config: &BTreeMap<VarName, i64>,
        db: &Database,
    ) -> Vec<LocalTreaty> {
        let defaults = self.default_config(db);
        (0..self.sites)
            .map(|k| {
                let constraints = self
                    .clauses
                    .iter()
                    .map(|clause| {
                        let c_value = config
                            .get(&clause.config_vars[k])
                            .or_else(|| defaults.get(&clause.config_vars[k]))
                            .copied()
                            .unwrap_or(0);
                        let lhs = clause.site_terms[k].plus(&LinExpr::constant(c_value));
                        let rhs = LinExpr::constant(clause.bound);
                        match clause.op {
                            CmpKind::Le | CmpKind::Lt => LinearConstraint::le(lhs, rhs),
                            CmpKind::Eq => LinearConstraint::eq(lhs, rhs),
                        }
                    })
                    .collect();
                LocalTreaty::new(k, constraints)
            })
            .collect()
    }

    /// Checks H1 semantically: the conjunction of the instantiated local
    /// treaties implies the global treaty (used by tests and debug
    /// assertions).
    pub fn config_is_valid(&self, config: &BTreeMap<VarName, i64>, db: &Database) -> bool {
        let locals = self.local_treaties(config, db);
        let antecedent: Vec<LinearConstraint> = locals
            .iter()
            .flat_map(|l| l.constraints.iter().cloned())
            .collect();
        let consequent = self.global().constraints;
        homeo_solver::fm::implies(&antecedent, &consequent)
    }
}

fn eval_on_db(expr: &LinExpr, db: &Database) -> i64 {
    let assignment: BTreeMap<VarName, i64> = expr
        .vars()
        .map(|v| (v.clone(), db.get(&ObjId::new(v.clone()))))
        .collect();
    expr.eval(&assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_analysis::{JointSymbolicTable, SymbolicTable};
    use homeo_lang::programs;

    /// The running example of Section 4: T1/T2 with x on site 0, y on site 1,
    /// initial database x = 10, y = 13, ψ : x + y ≥ 20.
    fn paper_setup() -> (Vec<LinearConstraint>, Loc, Database) {
        let t1 = SymbolicTable::analyze(&programs::t1());
        let t2 = SymbolicTable::analyze(&programs::t2());
        let joint = JointSymbolicTable::build(&[t1, t2]);
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        let row = joint.find_row(&db).unwrap().expect("row exists");
        let psi = preprocess_guard(&row.guard, &db);
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
        (psi, loc, db)
    }

    #[test]
    fn preprocessing_the_paper_guard_yields_one_linear_clause() {
        let (psi, _, db) = paper_setup();
        // ψ is x + y ≥ 20 (the third row of Figure 4c): a single clause that
        // holds on D.
        assert_eq!(psi.len(), 1);
        assert!(crate::treaty::constraints_hold_on(&psi, &db));
    }

    #[test]
    fn default_config_satisfies_h1_and_h2() {
        let (psi, loc, db) = paper_setup();
        let templates = TreatyTemplates::generate(&psi, &loc, 2);
        let config = templates.default_config(&db);
        // H1: validity.
        assert!(templates.config_is_valid(&config, &db));
        // H2: the local treaties hold on D.
        for local in templates.local_treaties(&config, &db) {
            assert!(local.holds_on(&db), "local treaty for site {}", local.site);
            assert!(local.is_well_located(&loc));
        }
    }

    #[test]
    fn hard_constraints_match_the_manual_derivation() {
        // For ψ : x + y ≥ 20 over two sites the validity condition on the
        // configuration variables is cx + cy ≤ 20 in the paper's orientation;
        // in our normalised (≤) orientation it is c0 + c1 ≥ -20·(K-1) for the
        // negated clause. Semantic check: the paper's configuration
        // (cy = 12, cx = 8) must be valid, (cy = 13, cx = 8) must not.
        let (psi, loc, db) = paper_setup();
        let templates = TreatyTemplates::generate(&psi, &loc, 2);
        // Find the configuration variable names for site 0 / site 1.
        let clause = &templates.clauses[0];
        let c0 = clause.config_vars[0].clone();
        let c1 = clause.config_vars[1].clone();
        // Paper orientation: local treaty at site 0 is x + cy ≥ 20, i.e. in
        // our encoding the config var at site 0 plays the role of cy.
        let good: BTreeMap<VarName, i64> = [(c0.clone(), 12), (c1.clone(), 8)].into();
        let bad: BTreeMap<VarName, i64> = [(c0, 13), (c1, 8)].into();
        // Orientation note: ψ is stored as -x - y ≤ -20, so config values are
        // negated relative to the paper; validity must still distinguish the
        // two cases via the semantic check.
        let good_valid =
            templates.config_is_valid(&good.iter().map(|(k, v)| (k.clone(), -v)).collect(), &db);
        let bad_valid =
            templates.config_is_valid(&bad.iter().map(|(k, v)| (k.clone(), -v)).collect(), &db);
        assert!(good_valid);
        assert!(!bad_valid);
        // And the syntactic hard constraints agree with the semantic check.
        let hard = templates.hard_constraints();
        let good_neg: BTreeMap<VarName, i64> = good.iter().map(|(k, v)| (k.clone(), -v)).collect();
        let bad_neg: BTreeMap<VarName, i64> = bad.iter().map(|(k, v)| (k.clone(), -v)).collect();
        assert!(hard.iter().all(|c| c.holds(&good_neg)));
        assert!(!hard.iter().all(|c| c.holds(&bad_neg)));
    }

    #[test]
    fn equality_clauses_force_the_default_configuration() {
        // Freeze z at its current value across two sites: the only valid
        // configurations are the defaults.
        let db = Database::from_pairs([("z", 7)]);
        let psi = vec![LinearConstraint::eq(
            LinExpr::var("z"),
            LinExpr::constant(7),
        )];
        let loc = Loc::from_pairs([("z", 0usize)]);
        let templates = TreatyTemplates::generate(&psi, &loc, 2);
        let config = templates.default_config(&db);
        assert!(templates.config_is_valid(&config, &db));
        for local in templates.local_treaties(&config, &db) {
            assert!(local.holds_on(&db));
        }
    }

    #[test]
    fn preprocessing_freezes_nonlinear_conjuncts() {
        use homeo_lang::builder::{num, read};
        // (x*y ≤ 50) ∧ (z ≥ 3): the first conjunct is non-linear and gets
        // replaced by x = D(x) ∧ y = D(y).
        let guard = read("x")
            .mul(read("y"))
            .le(num(50))
            .and(read("z").ge(num(3)));
        let db = Database::from_pairs([("x", 5), ("y", 6), ("z", 4)]);
        let psi = preprocess_guard(&guard, &db);
        assert!(crate::treaty::constraints_hold_on(&psi, &db));
        // Freezing means another database with the same z but different x
        // violates the preprocessed formula even though it satisfies the
        // original guard.
        let other = Database::from_pairs([("x", 4), ("y", 6), ("z", 4)]);
        assert!(!crate::treaty::constraints_hold_on(&psi, &other));
    }

    #[test]
    fn soft_groups_describe_when_local_treaties_hold() {
        let (psi, loc, db) = paper_setup();
        let templates = TreatyTemplates::generate(&psi, &loc, 2);
        // The soft group for D itself must be satisfied by the default
        // configuration.
        let soft = templates.soft_group_for_db(&db);
        let config = templates.default_config(&db);
        assert!(soft.iter().all(|c| c.holds(&config)));
        // A database one decrement ahead produces a (weakly) tighter group.
        let later = Database::from_pairs([("x", 9), ("y", 13)]);
        let soft_later = templates.soft_group_for_db(&later);
        assert_eq!(soft.len(), soft_later.len());
    }
}
