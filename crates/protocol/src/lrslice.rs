//! Local-remote slices (Definition 3.4).
//!
//! An LR-slice `(L, R)` for a transaction `T` is a pair of sets of local and
//! remote value vectors such that the observable behaviour of `T` (its local
//! writes and its log) does not depend on which `r ∈ R` the remote objects
//! hold. A valid global treaty is exactly one whose projections form an
//! LR-slice for every transaction (Definition 3.7); this module provides an
//! executable check used by tests, examples and the treaty validator on
//! small domains.

use homeo_lang::ast::Transaction;
use homeo_lang::database::Database;
use homeo_lang::eval::Evaluator;
use homeo_lang::ids::ObjId;

use crate::model::{observationally_equivalent, Loc, SiteId};

/// A concrete assignment of values to a fixed list of objects.
pub type ValueVector = Vec<i64>;

/// Builds a database from local objects/values plus remote objects/values.
pub fn compose_db(
    local_objs: &[ObjId],
    local_vals: &ValueVector,
    remote_objs: &[ObjId],
    remote_vals: &ValueVector,
) -> Database {
    let mut db = Database::new();
    for (o, v) in local_objs.iter().zip(local_vals) {
        db.set(o.clone(), *v);
    }
    for (o, v) in remote_objs.iter().zip(remote_vals) {
        db.set(o.clone(), *v);
    }
    db
}

/// Checks Definition 3.4 exhaustively: for every `l ∈ L` and every pair
/// `r, r' ∈ R`, `Eval(T,(l,r)) ≡ Eval(T,(l,r'))`.
///
/// `args` are the transaction's parameter values (the check is per concrete
/// invocation). Evaluation errors (e.g. overflow) are treated as
/// inequivalence.
// The eight arguments are the literal components of Definition 3.4's
// `(T, args, Loc, s, L, R)` tuple with the object lists split out; bundling
// them into a struct would only move the noise to the call sites.
#[allow(clippy::too_many_arguments)]
pub fn is_lr_slice(
    txn: &Transaction,
    args: &[i64],
    loc: &Loc,
    site: SiteId,
    local_objs: &[ObjId],
    local_set: &[ValueVector],
    remote_objs: &[ObjId],
    remote_set: &[ValueVector],
) -> bool {
    for l in local_set {
        let mut reference: Option<(Database, Vec<i64>)> = None;
        for r in remote_set {
            let db = compose_db(local_objs, l, remote_objs, r);
            let out = match Evaluator::eval(txn, &db, args) {
                Ok(o) => o,
                Err(_) => return false,
            };
            match &reference {
                None => reference = Some((out.database, out.log)),
                Some((ref_db, ref_log)) => {
                    if !observationally_equivalent(
                        loc,
                        site,
                        (ref_db, ref_log),
                        (&out.database, &out.log),
                    ) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::programs;

    fn loc_t4() -> Loc {
        // y and z local to site 0, x remote (site 1).
        Loc::from_pairs([("y", 0usize), ("z", 0usize), ("x", 1usize)])
    }

    #[test]
    fn example_3_5_first_slice_holds() {
        // ({1}, {11, 12, 13}) is an LR-slice for T4.
        let txn = programs::t4();
        assert!(is_lr_slice(
            &txn,
            &[],
            &loc_t4(),
            0,
            &[ObjId::new("y")],
            &[vec![1]],
            &[ObjId::new("x")],
            &[vec![11], vec![12], vec![13]],
        ));
    }

    #[test]
    fn example_3_5_third_slice_holds() {
        // ({2,3,4}, {0,1,2,3}) is an LR-slice: with y ≠ 1 the threshold is
        // 100, and all of 0..3 are below it.
        let txn = programs::t4();
        assert!(is_lr_slice(
            &txn,
            &[],
            &loc_t4(),
            0,
            &[ObjId::new("y")],
            &[vec![2], vec![3], vec![4]],
            &[ObjId::new("x")],
            &[vec![0], vec![1], vec![2], vec![3]],
        ));
    }

    #[test]
    fn crossing_the_threshold_breaks_the_slice() {
        // With y = 1 the threshold is 10, so {5, 15} is not a valid remote set.
        let txn = programs::t4();
        assert!(!is_lr_slice(
            &txn,
            &[],
            &loc_t4(),
            0,
            &[ObjId::new("y")],
            &[vec![1]],
            &[ObjId::new("x")],
            &[vec![5], vec![15]],
        ));
    }

    #[test]
    fn t3_slice_requires_sign_stability() {
        // T3 writes y depending on sign(x): any all-positive remote set works.
        let txn = programs::t3();
        let loc = Loc::from_pairs([("y", 0usize), ("x", 1usize)]);
        assert!(is_lr_slice(
            &txn,
            &[],
            &loc,
            0,
            &[ObjId::new("y")],
            &[vec![0], vec![5]],
            &[ObjId::new("x")],
            &[vec![1], vec![2], vec![100]],
        ));
        assert!(!is_lr_slice(
            &txn,
            &[],
            &loc,
            0,
            &[ObjId::new("y")],
            &[vec![0]],
            &[ObjId::new("x")],
            &[vec![1], vec![0]],
        ));
    }
}
