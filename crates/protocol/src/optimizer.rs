//! The treaty-configuration optimizer (Algorithm 1, Appendix C.2).
//!
//! Given the local-treaty templates for the current round, the optimizer
//! samples `f` possible future executions of length `L` from a workload
//! model, turns each sampled database state into a *soft* group of
//! constraints over the configuration variables ("no local treaty is
//! violated in this state"), adds the exact validity condition H1 and the
//! requirement H2 (the treaties hold on the current database) as *hard*
//! constraints, and asks the MaxSMT engine for a configuration satisfying as
//! many soft groups as possible.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_lang::database::Database;
use homeo_sim::{DetRng, Timer};
use homeo_solver::maxsmt::{max_feasible_subset, MaxSmtResult, SoftGroup};
use homeo_solver::VarName;

use crate::templates::TreatyTemplates;

/// Tunable parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// The lookahead interval `L`: length of each sampled future execution.
    pub lookahead: usize,
    /// The cost factor `f`: number of sampled future executions.
    pub futures: usize,
    /// Seed for the sampling RNG (combined with the round number by callers
    /// that want fresh futures every round).
    pub seed: u64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            lookahead: 20,
            futures: 3,
            seed: 7,
        }
    }
}

/// A model of the expected future workload: one step transforms a database
/// into the next database (by applying one sampled transaction through its
/// symbolic table, Section C.2).
pub trait WorkloadModel {
    /// Applies one sampled workload step.
    fn step(&mut self, db: &Database, rng: &mut DetRng) -> Database;
}

impl<F> WorkloadModel for F
where
    F: FnMut(&Database, &mut DetRng) -> Database,
{
    fn step(&mut self, db: &Database, rng: &mut DetRng) -> Database {
        self(db, rng)
    }
}

/// The result of a treaty-configuration optimization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizedConfig {
    /// The chosen configuration (one value per configuration variable).
    pub config: BTreeMap<VarName, i64>,
    /// How many of the sampled states keep all local treaties satisfied.
    pub satisfied_states: usize,
    /// Total number of sampled states.
    pub total_states: usize,
    /// Time spent inside the solver, in microseconds.
    pub solver_micros: u64,
}

/// Runs Algorithm 1, measuring solver time with the wall clock.
///
/// Falls back to the always-valid default configuration of Theorem 4.3 when
/// the optimizer cannot produce an integer model (which only happens on
/// degenerate templates).
pub fn optimize(
    templates: &TreatyTemplates,
    db: &Database,
    model: &mut dyn WorkloadModel,
    cfg: &OptimizerConfig,
) -> OptimizedConfig {
    optimize_timed(templates, db, model, cfg, Timer::Wall)
}

/// Runs Algorithm 1 with an explicit [`Timer`] for the reported solver time.
///
/// Seeded reproductions pass [`Timer::Fixed`] so the `solver_micros` field —
/// and everything derived from it downstream — is byte-for-byte
/// deterministic; `reproduce` and other production paths use [`Timer::Wall`].
pub fn optimize_timed(
    templates: &TreatyTemplates,
    db: &Database,
    model: &mut dyn WorkloadModel,
    cfg: &OptimizerConfig,
    timer: Timer,
) -> OptimizedConfig {
    optimize_timed_warm(templates, db, model, cfg, timer, None)
}

/// Runs Algorithm 1 with an optional warm-start candidate configuration.
///
/// When `warm_start` is `Some`, the candidate (typically the previous round's
/// allowance split rescaled to the current headroom) is checked first: if it
/// satisfies the hard constraints and *every* sampled soft group, then the
/// maximum-cardinality subset is necessarily all groups, and the tightened
/// configuration the cold path would compute from that subset can be produced
/// directly — skipping the MaxSMT search. On any miss (the candidate fails a
/// group, or the tightened configuration is invalid) the full cold search
/// runs, so the returned configuration is byte-identical to a cold run in
/// every case; only `solver_micros` reflects the cheaper path.
pub fn optimize_timed_warm(
    templates: &TreatyTemplates,
    db: &Database,
    model: &mut dyn WorkloadModel,
    cfg: &OptimizerConfig,
    timer: Timer,
    warm_start: Option<&BTreeMap<VarName, i64>>,
) -> OptimizedConfig {
    let mut rng = DetRng::seed_from(cfg.seed);

    // Hard constraints: H1 (validity) plus H2 (treaties hold on D).
    let mut hard = templates.hard_constraints();
    hard.extend(templates.soft_group_for_db(db));

    // Soft groups: one per sampled future database state.
    let mut soft: Vec<SoftGroup> = Vec::with_capacity(cfg.futures * cfg.lookahead);
    for _ in 0..cfg.futures {
        let mut current = db.clone();
        for _ in 0..cfg.lookahead {
            current = model.step(&current, &mut rng);
            soft.push(templates.soft_group_for_db(&current));
        }
    }
    let total_states = soft.len();

    let default = templates.default_config(db);

    enum Solve {
        /// The warm candidate witnessed joint feasibility of all groups;
        /// carries the already-tightened, validated configuration.
        Warm(BTreeMap<VarName, i64>),
        Cold(Option<MaxSmtResult>),
    }

    let (solve, solver_micros) = timer.measure(|| {
        if let Some(candidate) = warm_start {
            if hard.iter().all(|c| c.holds(candidate))
                && soft.iter().all(|g| g.iter().all(|c| c.holds(candidate)))
            {
                let config = tightened_config(&default, soft.iter());
                if templates.config_is_valid(&config, db) {
                    return Solve::Warm(config);
                }
            }
        }
        Solve::Cold(max_feasible_subset(&hard, &soft))
    });

    match solve {
        Solve::Warm(config) => OptimizedConfig {
            config,
            satisfied_states: total_states,
            total_states,
            solver_micros,
        },
        Solve::Cold(Some(res)) => {
            let satisfied_states = res.selected.len();
            // Tighten the configuration: any MaxSMT model satisfies the
            // selected soft groups, but an arbitrary model may park slack on
            // the wrong site. Instead, give each configuration variable the
            // tightest (smallest) upper bound demanded by the selected
            // groups — that assignment also satisfies every selected group,
            // and it maximises the per-site headroom actually exercised by
            // the sampled futures.
            let mut config = tightened_config(&default, res.selected.iter().map(|&j| &soft[j]));
            if !templates.config_is_valid(&config, db) {
                // Fall back to the raw model, then to the default.
                config = default.clone();
                if let Some(model_values) = res.model {
                    for (k, v) in model_values {
                        if config.contains_key(&k) {
                            config.insert(k, v);
                        }
                    }
                }
            }
            // Never install an invalid configuration: the hard constraints
            // make this unreachable, but the default is always safe.
            if !templates.config_is_valid(&config, db) {
                config = default;
            }
            OptimizedConfig {
                config,
                satisfied_states,
                total_states,
                solver_micros,
            }
        }
        Solve::Cold(None) => OptimizedConfig {
            config: default,
            satisfied_states: 0,
            total_states,
            solver_micros,
        },
    }
}

/// The tightened configuration for a set of soft groups: start from the
/// default and give each configuration variable the smallest upper bound any
/// group demands of it.
fn tightened_config<'a>(
    default: &BTreeMap<VarName, i64>,
    groups: impl Iterator<Item = &'a SoftGroup>,
) -> BTreeMap<VarName, i64> {
    let mut config = default.clone();
    for group in groups {
        for constraint in group {
            if let Some((var, upper)) = single_var_upper_bound(constraint) {
                if let Some(current) = config.get_mut(&var) {
                    *current = (*current).min(upper);
                }
            }
        }
    }
    config
}

/// When `constraint` has the shape `1·v ≤ upper`, returns `(v, upper)`.
fn single_var_upper_bound(constraint: &homeo_solver::LinearConstraint) -> Option<(VarName, i64)> {
    use homeo_solver::CmpKind;
    if constraint.op != CmpKind::Le && constraint.op != CmpKind::Lt {
        return None;
    }
    let mut terms = constraint.expr.terms();
    let (var, coeff) = terms.next()?;
    if terms.next().is_some() || coeff != 1 {
        return None;
    }
    let mut upper = -constraint.expr.constant_part();
    if constraint.op == CmpKind::Lt {
        upper -= 1;
    }
    Some((var.clone(), upper))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Loc;
    use homeo_solver::{LinExpr, LinearConstraint};

    /// Two sites sharing a replicated counter with base 20 and the global
    /// treaty "sum of deltas ≥ -18" (i.e. the counter stays above 2).
    fn counter_templates() -> (TreatyTemplates, Database) {
        let psi = vec![LinearConstraint::ge(
            LinExpr::var("d0").plus(&LinExpr::var("d1")),
            LinExpr::constant(-18),
        )];
        let loc = Loc::from_pairs([("d0", 0usize), ("d1", 1usize)]);
        let db = Database::new(); // deltas start at 0
        (TreatyTemplates::generate(&psi, &loc, 2), db)
    }

    #[test]
    fn uniform_workload_splits_the_budget_roughly_evenly() {
        let (templates, db) = counter_templates();
        // Model: each step one random site decrements its delta by 1.
        let mut model = |current: &Database, rng: &mut DetRng| {
            let mut next = current.clone();
            let site = rng.index(2);
            let obj = homeo_lang::ids::ObjId::new(format!("d{site}"));
            next.add(obj, -1);
            next
        };
        let cfg = OptimizerConfig {
            lookahead: 12,
            futures: 3,
            seed: 5,
        };
        let result = optimize(&templates, &db, &mut model, &cfg);
        assert!(templates.config_is_valid(&result.config, &db));
        // The chosen configuration must keep the treaties satisfiable for a
        // good fraction of sampled states (a fully lopsided split could not).
        assert!(
            result.satisfied_states * 3 >= result.total_states,
            "satisfied {} of {}",
            result.satisfied_states,
            result.total_states
        );
        // Extract the per-site allowances and check both sites got room.
        let locals = templates.local_treaties(&result.config, &db);
        for (site, local) in locals.iter().enumerate() {
            // Each site should tolerate at least a couple of local decrements
            // (the default configuration would tolerate none).
            let mut probe = db.clone();
            probe.set(homeo_lang::ids::ObjId::new(format!("d{site}")), -2);
            assert!(
                local.holds_on(&probe),
                "site {site} treaty too tight: {:?}",
                local.constraints
            );
        }
    }

    #[test]
    fn skewed_workload_shifts_the_allocation() {
        let (templates, db) = counter_templates();
        // Site 0 issues 9 out of 10 decrements.
        let mut model = |current: &Database, rng: &mut DetRng| {
            let mut next = current.clone();
            let site = if rng.chance(0.9) { 0 } else { 1 };
            next.add(homeo_lang::ids::ObjId::new(format!("d{site}")), -1);
            next
        };
        let cfg = OptimizerConfig {
            lookahead: 10,
            futures: 4,
            seed: 9,
        };
        let result = optimize(&templates, &db, &mut model, &cfg);
        assert!(templates.config_is_valid(&result.config, &db));
        let locals = templates.local_treaties(&result.config, &db);
        // Site 0 must tolerate more decrements than site 1.
        let allowance = |site: usize| {
            let mut d = 0;
            loop {
                let mut probe = db.clone();
                probe.set(homeo_lang::ids::ObjId::new(format!("d{site}")), -(d + 1));
                if !locals[site].holds_on(&probe) {
                    return d;
                }
                d += 1;
                if d > 30 {
                    return d;
                }
            }
        };
        // The hot site's share must at least match the cold site's and cover
        // most of the sampled burst.
        assert!(
            allowance(0) >= allowance(1),
            "site0={} site1={}",
            allowance(0),
            allowance(1)
        );
        assert!(allowance(0) >= 6, "site0={}", allowance(0));
    }

    #[test]
    fn default_is_used_when_there_is_nothing_to_optimize() {
        let (templates, db) = counter_templates();
        let mut model = |current: &Database, _rng: &mut DetRng| current.clone();
        let cfg = OptimizerConfig {
            lookahead: 0,
            futures: 0,
            seed: 1,
        };
        let result = optimize(&templates, &db, &mut model, &cfg);
        assert_eq!(result.total_states, 0);
        assert!(templates.config_is_valid(&result.config, &db));
    }
}
