//! The replicated-counter treaty machinery of the protocol (Appendices B
//! and E).
//!
//! The paper's evaluation workloads (the stock/refill microbenchmark and the
//! TPC-C subset) boil down, after the remote-write transformation and the
//! independence-based factorization, to a large number of *independent
//! replicated counters*, each with a global treaty of the form
//! `value ≥ lower_bound` and per-site local treaties that bound each site's
//! delta object (`δq@i ≥ allowance_i`). This module provides the shared
//! protocol pieces of that fast path: the negotiation [`ReplicatedMode`]s
//! and [`negotiate_allowances`], which produces the per-site allowances from
//! the same template + optimizer machinery as the general path (or from the
//! hand-crafted even split of the demarcation protocol — the paper's OPT
//! baseline).
//!
//! The counters themselves — their storage, sharding and execution — live in
//! the `homeo-runtime` crate's `ReplicatedRuntime`, where every operation
//! runs through a site's storage engine (strict 2PL + WAL).

use serde::{Deserialize, Serialize};

use homeo_sim::Timer;

use crate::negotiation::{negotiate_allowances_cached, NegotiationCache};
use crate::optimizer::OptimizerConfig;

/// How local treaties (allowances) are chosen at each negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicatedMode {
    /// The homeostasis protocol: treaty templates + Algorithm 1 (or the
    /// Theorem 4.3 default when `optimizer` is `None`).
    Homeostasis {
        /// Optimizer settings.
        optimizer: Option<OptimizerConfig>,
    },
    /// The hand-crafted demarcation-style baseline (OPT in the paper): the
    /// remaining headroom is split evenly among the sites at every
    /// synchronization point.
    EvenSplit,
}

/// The outcome of one replicated-counter operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedOutcome {
    /// Whether the operation committed.
    pub committed: bool,
    /// Whether it required synchronization (treaty renegotiation).
    pub synchronized: bool,
    /// Whether the refill branch of the transaction ran.
    pub refilled: bool,
    /// Time spent in the treaty solver, in microseconds.
    pub solver_micros: u64,
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedStats {
    /// Operations that committed without communication.
    pub local_commits: u64,
    /// Synchronization rounds performed (violation-triggered plus
    /// proactive; violation-triggered = `synchronizations -
    /// proactive_negotiations`).
    pub synchronizations: u64,
    /// Treaty negotiations performed (one per synchronization plus the
    /// initial one per counter).
    pub negotiations: u64,
    /// Negotiations triggered proactively by the demand-adaptive control
    /// loop, before any treaty violation (a subset of `negotiations`).
    pub proactive_negotiations: u64,
    /// Aggregate time spent in the treaty solver across all negotiations,
    /// in microseconds.
    pub solver_micros_total: u64,
}

/// The workload hints the negotiation's sampled futures are drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadHints {
    /// Expected share of the workload issued by each site (uniform by
    /// default).
    pub site_weights: Vec<f64>,
    /// Expected decrement size.
    pub expected_amount: i64,
}

impl WorkloadHints {
    /// Uniform hints for `sites` replicas.
    pub fn uniform(sites: usize) -> Self {
        WorkloadHints {
            site_weights: vec![1.0; sites],
            expected_amount: 1,
        }
    }
}

/// Negotiates the per-site allowances for one replicated counter.
///
/// The counter currently holds the synchronized value `base` (all deltas
/// zero) and its global treaty maintains `value ≥ lower_bound`. The result
/// is one allowance per site — the most negative delta the site's local
/// treaty tolerates (allowances are `≤ 0`; a site may decrement until its
/// delta would drop below its allowance) — together with the solver time in
/// microseconds as measured by `timer`.
pub fn negotiate_allowances(
    mode: ReplicatedMode,
    hints: &WorkloadHints,
    sites: usize,
    base: i64,
    lower_bound: i64,
    timer: Timer,
) -> (Vec<i64>, u64) {
    // The cold reference path: a throwaway cache and no warm start. The
    // cached/warm-started variant in `crate::negotiation` is pinned (by the
    // sync_equivalence suite) to produce byte-identical allowances.
    let mut cache = NegotiationCache::new();
    negotiate_allowances_cached(
        mode,
        hints,
        sites,
        base,
        lower_bound,
        timer,
        &mut cache,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homeo_cfg(seed: u64) -> ReplicatedMode {
        ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 10,
                futures: 2,
                seed,
            }),
        }
    }

    #[test]
    fn even_split_divides_the_headroom() {
        let (allowances, micros) = negotiate_allowances(
            ReplicatedMode::EvenSplit,
            &WorkloadHints::uniform(2),
            2,
            101,
            1,
            Timer::fixed_zero(),
        );
        assert_eq!(allowances, vec![-50, -50]);
        assert_eq!(micros, 0);
    }

    #[test]
    fn the_default_configuration_freezes_all_sites() {
        let (allowances, _) = negotiate_allowances(
            ReplicatedMode::Homeostasis { optimizer: None },
            &WorkloadHints::uniform(3),
            3,
            50,
            1,
            Timer::fixed_zero(),
        );
        assert_eq!(allowances, vec![0, 0, 0]);
    }

    #[test]
    fn optimized_allowances_never_oversubscribe_the_headroom() {
        for base in [3i64, 12, 40, 100] {
            let (allowances, _) = negotiate_allowances(
                homeo_cfg(21),
                &WorkloadHints::uniform(2),
                2,
                base,
                1,
                Timer::fixed_zero(),
            );
            let consumed: i64 = allowances.iter().map(|a| -a).sum();
            assert!(
                consumed < base,
                "base={base}: allowances {allowances:?} exceed headroom"
            );
            assert!(allowances.iter().all(|a| *a <= 0));
        }
    }

    #[test]
    fn skewed_hints_shift_allowances_toward_the_hot_site() {
        let hints = WorkloadHints {
            site_weights: vec![0.9, 0.1],
            expected_amount: 1,
        };
        let (allowances, _) = negotiate_allowances(
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 12,
                    futures: 3,
                    seed: 2,
                }),
            },
            &hints,
            2,
            40,
            1,
            Timer::fixed_zero(),
        );
        let a0 = -allowances[0];
        let a1 = -allowances[1];
        assert!(a0 >= a1, "a0={a0} a1={a1}");
        assert!(a0 + a1 <= 39);
    }

    #[test]
    fn leftover_distribution_survives_adversarial_weight_vectors() {
        // Seeded property test: across adversarial weight vectors (NaN,
        // infinities, negatives, zeros, wild magnitudes) the floor-rounded
        // leftover distribution must neither strand headroom nor
        // oversubscribe it, and every allowance stays ≤ 0.
        let mut rng = homeo_sim::DetRng::seed_from(42);
        for round in 0..60 {
            let sites = 2 + rng.index(3);
            let base = rng.int_inclusive(1, 500);
            let lower_bound = rng.int_inclusive(0, base);
            let headroom = (base - lower_bound).max(0);
            let site_weights: Vec<f64> = (0..sites)
                .map(|_| match rng.index(6) {
                    0 => f64::NAN,
                    1 => f64::NEG_INFINITY,
                    2 => -5.0,
                    3 => 0.0,
                    4 => 1e18,
                    _ => rng.int_inclusive(1, 100) as f64 / 7.0,
                })
                .collect();
            let hints = WorkloadHints {
                site_weights,
                expected_amount: rng.int_inclusive(1, 3),
            };
            let (allowances, _) = negotiate_allowances(
                homeo_cfg(round),
                &hints,
                sites,
                base,
                lower_bound,
                Timer::fixed_zero(),
            );
            let consumed: i64 = allowances.iter().map(|a| -a).sum();
            assert!(
                allowances.iter().all(|a| *a <= 0),
                "round {round}: positive allowance in {allowances:?}"
            );
            assert_eq!(
                consumed, headroom,
                "round {round}: headroom {headroom} vs consumed {consumed} \
                 (weights {:?})",
                hints.site_weights
            );
        }
    }

    #[test]
    fn fixed_timers_make_negotiation_fully_deterministic() {
        let hints = WorkloadHints::uniform(3);
        let run = || negotiate_allowances(homeo_cfg(5), &hints, 3, 77, 1, Timer::Fixed(9));
        let (a, micros_a) = run();
        let (b, micros_b) = run();
        assert_eq!(a, b);
        assert_eq!(micros_a, 9);
        assert_eq!(micros_b, 9);
    }
}
