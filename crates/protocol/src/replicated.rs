//! The replicated-counter treaty machinery of the protocol (Appendices B
//! and E).
//!
//! The paper's evaluation workloads (the stock/refill microbenchmark and the
//! TPC-C subset) boil down, after the remote-write transformation and the
//! independence-based factorization, to a large number of *independent
//! replicated counters*, each with a global treaty of the form
//! `value ≥ lower_bound` and per-site local treaties that bound each site's
//! delta object (`δq@i ≥ allowance_i`). This module provides the shared
//! protocol pieces of that fast path: the negotiation [`ReplicatedMode`]s
//! and [`negotiate_allowances`], which produces the per-site allowances from
//! the same template + optimizer machinery as the general path (or from the
//! hand-crafted even split of the demarcation protocol — the paper's OPT
//! baseline).
//!
//! The counters themselves — their storage, sharding and execution — live in
//! the `homeo-runtime` crate's `ReplicatedRuntime`, where every operation
//! runs through a site's storage engine (strict 2PL + WAL).

use serde::{Deserialize, Serialize};

use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_sim::Timer;
use homeo_solver::{LinExpr, LinearConstraint};

use crate::model::Loc;
use crate::optimizer::{optimize_timed, OptimizerConfig};
use crate::templates::TreatyTemplates;

/// How local treaties (allowances) are chosen at each negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicatedMode {
    /// The homeostasis protocol: treaty templates + Algorithm 1 (or the
    /// Theorem 4.3 default when `optimizer` is `None`).
    Homeostasis {
        /// Optimizer settings.
        optimizer: Option<OptimizerConfig>,
    },
    /// The hand-crafted demarcation-style baseline (OPT in the paper): the
    /// remaining headroom is split evenly among the sites at every
    /// synchronization point.
    EvenSplit,
}

/// The outcome of one replicated-counter operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedOutcome {
    /// Whether the operation committed.
    pub committed: bool,
    /// Whether it required synchronization (treaty renegotiation).
    pub synchronized: bool,
    /// Whether the refill branch of the transaction ran.
    pub refilled: bool,
    /// Time spent in the treaty solver, in microseconds.
    pub solver_micros: u64,
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedStats {
    /// Operations that committed without communication.
    pub local_commits: u64,
    /// Operations that triggered a synchronization.
    pub synchronizations: u64,
    /// Treaty negotiations performed (one per synchronization plus the
    /// initial one per counter).
    pub negotiations: u64,
}

/// The workload hints the negotiation's sampled futures are drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadHints {
    /// Expected share of the workload issued by each site (uniform by
    /// default).
    pub site_weights: Vec<f64>,
    /// Expected decrement size.
    pub expected_amount: i64,
}

impl WorkloadHints {
    /// Uniform hints for `sites` replicas.
    pub fn uniform(sites: usize) -> Self {
        WorkloadHints {
            site_weights: vec![1.0; sites],
            expected_amount: 1,
        }
    }
}

/// Negotiates the per-site allowances for one replicated counter.
///
/// The counter currently holds the synchronized value `base` (all deltas
/// zero) and its global treaty maintains `value ≥ lower_bound`. The result
/// is one allowance per site — the most negative delta the site's local
/// treaty tolerates (allowances are `≤ 0`; a site may decrement until its
/// delta would drop below its allowance) — together with the solver time in
/// microseconds as measured by `timer`.
pub fn negotiate_allowances(
    mode: ReplicatedMode,
    hints: &WorkloadHints,
    sites: usize,
    base: i64,
    lower_bound: i64,
    timer: Timer,
) -> (Vec<i64>, u64) {
    assert!(sites > 0);
    assert_eq!(hints.site_weights.len(), sites);
    let headroom = base.saturating_sub(lower_bound).max(0);
    match mode {
        ReplicatedMode::EvenSplit => {
            let share = headroom / sites as i64;
            (vec![-share; sites], 0)
        }
        ReplicatedMode::Homeostasis { optimizer } => match optimizer {
            None => {
                // Theorem 4.3 default: local sums frozen at their current
                // (zero-delta) values — synchronize on every decrement.
                (vec![0; sites], 0)
            }
            Some(cfg) => {
                let expected_amount = hints.expected_amount.max(1);
                // Build the per-counter treaty template: Σ δᵢ ≥ -headroom.
                let delta_var = |i: usize| format!("δ@{i}");
                let mut sum = LinExpr::zero();
                let mut loc = Loc::new().with_default_site(0);
                for i in 0..sites {
                    sum.add_term(delta_var(i), 1);
                    loc.assign(ObjId::new(delta_var(i)), i);
                }
                let psi = vec![LinearConstraint::ge(sum, LinExpr::constant(-headroom))];
                let templates = TreatyTemplates::generate(&psi, &loc, sites);
                let db = Database::new();
                // Workload model: a weighted random site decrements by the
                // expected amount.
                let weights = hints.site_weights.clone();
                let mut model = move |current: &Database, rng: &mut homeo_sim::DetRng| {
                    let site = rng.weighted_index(&weights);
                    let mut next = current.clone();
                    next.add(ObjId::new(format!("δ@{site}")), -expected_amount);
                    next
                };
                let result = optimize_timed(&templates, &db, &mut model, &cfg, timer);
                let solver_micros = result.solver_micros;
                // allowance_i = the most negative δᵢ the local treaty
                // tolerates: from  -δᵢ + cᵢ ≤ headroom  we get
                // δᵢ ≥ cᵢ - headroom.
                let mut allowances: Vec<i64> = (0..sites)
                    .map(|i| {
                        let cvar = &templates.clauses[0].config_vars[i];
                        let c = result.config.get(cvar).copied().unwrap_or(headroom);
                        c - headroom
                    })
                    .collect();
                // Safety net: never allow the allowances to oversubscribe
                // the headroom (the hard constraints already guarantee this;
                // clamp defensively against a degenerate model).
                let total: i64 = allowances.iter().map(|a| -a).sum();
                if total > headroom {
                    let share = headroom / sites as i64;
                    allowances = vec![-share; sites];
                }
                // Distribute any leftover headroom in proportion to the
                // expected per-site load, so slack is not parked at a site
                // that will not use it.
                let used: i64 = allowances.iter().map(|a| -a).sum();
                let mut leftover = headroom - used;
                if leftover > 0 {
                    let weight_total: f64 = hints.site_weights.iter().sum();
                    for (allowance, weight) in allowances
                        .iter_mut()
                        .zip(hints.site_weights.iter())
                        .take(sites)
                    {
                        let share = ((leftover as f64) * weight
                            / weight_total.max(f64::MIN_POSITIVE))
                        .floor() as i64;
                        *allowance -= share;
                    }
                    let used: i64 = allowances.iter().map(|a| -a).sum();
                    leftover = headroom - used;
                    if leftover > 0 {
                        // Give the remainder to the most loaded site.
                        let hottest = hints
                            .site_weights
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
                            .map(|(i, _)| i)
                            .unwrap_or(0);
                        allowances[hottest] -= leftover;
                    }
                }
                (allowances, solver_micros)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn homeo_cfg(seed: u64) -> ReplicatedMode {
        ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 10,
                futures: 2,
                seed,
            }),
        }
    }

    #[test]
    fn even_split_divides_the_headroom() {
        let (allowances, micros) = negotiate_allowances(
            ReplicatedMode::EvenSplit,
            &WorkloadHints::uniform(2),
            2,
            101,
            1,
            Timer::fixed_zero(),
        );
        assert_eq!(allowances, vec![-50, -50]);
        assert_eq!(micros, 0);
    }

    #[test]
    fn the_default_configuration_freezes_all_sites() {
        let (allowances, _) = negotiate_allowances(
            ReplicatedMode::Homeostasis { optimizer: None },
            &WorkloadHints::uniform(3),
            3,
            50,
            1,
            Timer::fixed_zero(),
        );
        assert_eq!(allowances, vec![0, 0, 0]);
    }

    #[test]
    fn optimized_allowances_never_oversubscribe_the_headroom() {
        for base in [3i64, 12, 40, 100] {
            let (allowances, _) = negotiate_allowances(
                homeo_cfg(21),
                &WorkloadHints::uniform(2),
                2,
                base,
                1,
                Timer::fixed_zero(),
            );
            let consumed: i64 = allowances.iter().map(|a| -a).sum();
            assert!(
                consumed < base,
                "base={base}: allowances {allowances:?} exceed headroom"
            );
            assert!(allowances.iter().all(|a| *a <= 0));
        }
    }

    #[test]
    fn skewed_hints_shift_allowances_toward_the_hot_site() {
        let hints = WorkloadHints {
            site_weights: vec![0.9, 0.1],
            expected_amount: 1,
        };
        let (allowances, _) = negotiate_allowances(
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 12,
                    futures: 3,
                    seed: 2,
                }),
            },
            &hints,
            2,
            40,
            1,
            Timer::fixed_zero(),
        );
        let a0 = -allowances[0];
        let a1 = -allowances[1];
        assert!(a0 >= a1, "a0={a0} a1={a1}");
        assert!(a0 + a1 <= 39);
    }

    #[test]
    fn fixed_timers_make_negotiation_fully_deterministic() {
        let hints = WorkloadHints::uniform(3);
        let run = || negotiate_allowances(homeo_cfg(5), &hints, 3, 77, 1, Timer::Fixed(9));
        let (a, micros_a) = run();
        let (b, micros_b) = run();
        assert_eq!(a, b);
        assert_eq!(micros_a, 9);
        assert_eq!(micros_b, 9);
    }
}
