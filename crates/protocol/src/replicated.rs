//! The scalable replicated-counter path of the protocol (Appendices B and E).
//!
//! The paper's evaluation workloads (the stock/refill microbenchmark and the
//! TPC-C subset) boil down, after the remote-write transformation and the
//! independence-based factorization, to a large number of *independent
//! replicated counters*, each with a global treaty of the form
//! `value ≥ lower_bound` and per-site local treaties that bound each site's
//! delta object (`δq@i ≥ allowance_i`). This module manages those counters
//! directly: every counter carries its base value (last synchronized), its
//! per-site deltas, and its per-site allowances; allowances are produced by
//! the same template + optimizer machinery as the general path, or by the
//! hand-crafted even split of the demarcation protocol (the paper's OPT
//! baseline).

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_solver::{LinExpr, LinearConstraint};

use crate::model::Loc;
use crate::optimizer::{optimize, OptimizerConfig};
use crate::templates::TreatyTemplates;

/// How local treaties (allowances) are chosen at each negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicatedMode {
    /// The homeostasis protocol: treaty templates + Algorithm 1 (or the
    /// Theorem 4.3 default when `optimizer` is `None`).
    Homeostasis {
        /// Optimizer settings.
        optimizer: Option<OptimizerConfig>,
    },
    /// The hand-crafted demarcation-style baseline (OPT in the paper): the
    /// remaining headroom is split evenly among the sites at every
    /// synchronization point.
    EvenSplit,
}

/// The outcome of one replicated-counter operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedOutcome {
    /// Whether the operation committed.
    pub committed: bool,
    /// Whether it required synchronization (treaty renegotiation).
    pub synchronized: bool,
    /// Whether the refill branch of the transaction ran.
    pub refilled: bool,
    /// Time spent in the treaty solver, in microseconds of real time.
    pub solver_micros: u64,
}

/// Aggregate statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedStats {
    /// Operations that committed without communication.
    pub local_commits: u64,
    /// Operations that triggered a synchronization.
    pub synchronizations: u64,
    /// Treaty negotiations performed (one per synchronization plus the
    /// initial one per counter).
    pub negotiations: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CounterState {
    base: i64,
    lower_bound: i64,
    deltas: Vec<i64>,
    allowances: Vec<i64>,
}

impl CounterState {
    fn logical_value(&self) -> i64 {
        self.base + self.deltas.iter().sum::<i64>()
    }
}

/// A set of independent replicated counters managed under the homeostasis
/// protocol (or the OPT baseline).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicatedCounters {
    sites: usize,
    mode: ReplicatedMode,
    /// Expected share of the workload issued by each site (used by the
    /// optimizer's workload model; uniform by default).
    site_weights: Vec<f64>,
    /// Expected decrement size (used by the optimizer's workload model).
    expected_amount: i64,
    counters: BTreeMap<ObjId, CounterState>,
    /// Statistics.
    pub stats: ReplicatedStats,
}

impl ReplicatedCounters {
    /// Creates a manager for `sites` replicas.
    pub fn new(sites: usize, mode: ReplicatedMode) -> Self {
        assert!(sites > 0);
        ReplicatedCounters {
            sites,
            mode,
            site_weights: vec![1.0; sites],
            expected_amount: 1,
            counters: BTreeMap::new(),
            stats: ReplicatedStats::default(),
        }
    }

    /// Sets the workload model hints used by the optimizer.
    pub fn with_workload_hints(mut self, site_weights: Vec<f64>, expected_amount: i64) -> Self {
        assert_eq!(site_weights.len(), self.sites);
        self.site_weights = site_weights;
        self.expected_amount = expected_amount.max(1);
        self
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Registers a counter with its initial value and the lower bound its
    /// global treaty maintains. The initial treaty is negotiated immediately.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        let mut state = CounterState {
            base: initial,
            lower_bound,
            deltas: vec![0; self.sites],
            allowances: vec![0; self.sites],
        };
        let solver = self.negotiate(&mut state);
        self.counters.insert(obj, state);
        solver
    }

    /// True when the counter is registered.
    pub fn is_registered(&self, obj: &ObjId) -> bool {
        self.counters.contains_key(obj)
    }

    /// The authoritative (global) value of a counter.
    pub fn logical_value(&self, obj: &ObjId) -> i64 {
        self.counters
            .get(obj)
            .map(|c| c.logical_value())
            .unwrap_or(0)
    }

    /// The value a given site believes the counter has (base plus its own
    /// delta — other sites' deltas are not visible without synchronizing).
    pub fn visible_value(&self, site: usize, obj: &ObjId) -> i64 {
        self.counters
            .get(obj)
            .map(|c| c.base + c.deltas[site])
            .unwrap_or(0)
    }

    /// A pure local increment (e.g. the TPC-C Payment balance updates):
    /// increments never threaten a `≥`-treaty, so they always commit locally
    /// (Appendix E: "instances of Payment run without ever needing to
    /// synchronize").
    pub fn increment(&mut self, site: usize, obj: &ObjId, amount: i64) -> ReplicatedOutcome {
        let state = self
            .counters
            .get_mut(obj)
            .unwrap_or_else(|| panic!("counter `{obj}` not registered"));
        state.deltas[site] += amount.abs();
        self.stats.local_commits += 1;
        ReplicatedOutcome {
            committed: true,
            synchronized: false,
            refilled: false,
            solver_micros: 0,
        }
    }

    /// The order/decrement-or-refill operation (Listing 1 / TPC-C New Order
    /// stock update): decrement `amount`, refilling to `refill_to` when the
    /// synchronized value can no longer support the decrement.
    pub fn order(
        &mut self,
        site: usize,
        obj: &ObjId,
        amount: i64,
        refill_to: Option<i64>,
    ) -> ReplicatedOutcome {
        assert!(amount >= 0);
        let mode = self.mode;
        let site_weights = self.site_weights.clone();
        let expected_amount = self.expected_amount;
        let state = self
            .counters
            .get_mut(obj)
            .unwrap_or_else(|| panic!("counter `{obj}` not registered"));

        // Normal execution: the decrement stays within this site's local
        // treaty, so it commits without communication.
        let new_delta = state.deltas[site] - amount;
        if new_delta >= state.allowances[site] {
            state.deltas[site] = new_delta;
            self.stats.local_commits += 1;
            return ReplicatedOutcome {
                committed: true,
                synchronized: false,
                refilled: false,
                solver_micros: 0,
            };
        }

        // Treaty violation: cleanup phase. Synchronize (fold deltas into the
        // base), run the transaction on the consistent state, renegotiate.
        state.base = state.logical_value();
        state.deltas.iter_mut().for_each(|d| *d = 0);
        let refilled = if state.base - amount >= state.lower_bound {
            state.base -= amount;
            false
        } else if let Some(refill) = refill_to {
            state.base = refill;
            true
        } else {
            // No refill semantics: apply the decrement on the consistent
            // state (it is now a fully synchronized, serial operation).
            state.base -= amount;
            false
        };
        let solver_micros =
            Self::negotiate_with(mode, &site_weights, expected_amount, self.sites, state);
        self.stats.synchronizations += 1;
        self.stats.negotiations += 1;
        ReplicatedOutcome {
            committed: true,
            synchronized: true,
            refilled,
            solver_micros,
        }
    }

    /// Forces a synchronization on behalf of an operation whose treaty pins
    /// an object to its current value (e.g. the TPC-C Delivery transaction,
    /// whose "lowest unprocessed order id" treaty is violated by every
    /// execution — Appendix E).
    pub fn force_sync(&mut self, obj: &ObjId) -> ReplicatedOutcome {
        let mode = self.mode;
        let site_weights = self.site_weights.clone();
        let expected_amount = self.expected_amount;
        let solver_micros = if let Some(state) = self.counters.get_mut(obj) {
            state.base = state.logical_value();
            state.deltas.iter_mut().for_each(|d| *d = 0);
            Self::negotiate_with(mode, &site_weights, expected_amount, self.sites, state)
        } else {
            0
        };
        self.stats.synchronizations += 1;
        self.stats.negotiations += 1;
        ReplicatedOutcome {
            committed: true,
            synchronized: true,
            refilled: false,
            solver_micros,
        }
    }

    /// Treaty negotiation for one counter in the current mode.
    fn negotiate(&mut self, state: &mut CounterState) -> u64 {
        self.stats.negotiations += 1;
        Self::negotiate_with(
            self.mode,
            &self.site_weights,
            self.expected_amount,
            self.sites,
            state,
        )
    }

    fn negotiate_with(
        mode: ReplicatedMode,
        site_weights: &[f64],
        expected_amount: i64,
        sites: usize,
        state: &mut CounterState,
    ) -> u64 {
        let headroom = state.base.saturating_sub(state.lower_bound).max(0);
        match mode {
            ReplicatedMode::EvenSplit => {
                let share = headroom / sites as i64;
                state.allowances = vec![-share; sites];
                0
            }
            ReplicatedMode::Homeostasis { optimizer } => match optimizer {
                None => {
                    // Theorem 4.3 default: local sums frozen at their current
                    // (zero-delta) values — synchronize on every decrement.
                    state.allowances = vec![0; sites];
                    0
                }
                Some(cfg) => {
                    let started = Instant::now();
                    // Build the per-counter treaty template: Σ δᵢ ≥ -headroom.
                    let delta_var = |i: usize| format!("δ@{i}");
                    let mut sum = LinExpr::zero();
                    let mut loc = Loc::new().with_default_site(0);
                    for i in 0..sites {
                        sum.add_term(delta_var(i), 1);
                        loc.assign(ObjId::new(delta_var(i)), i);
                    }
                    let psi = vec![LinearConstraint::ge(sum, LinExpr::constant(-headroom))];
                    let templates = TreatyTemplates::generate(&psi, &loc, sites);
                    let db = Database::new();
                    // Workload model: a weighted random site decrements by
                    // the expected amount.
                    let weights = site_weights.to_vec();
                    let mut model = move |current: &Database, rng: &mut homeo_sim::DetRng| {
                        let site = rng.weighted_index(&weights);
                        let mut next = current.clone();
                        next.add(ObjId::new(format!("δ@{site}")), -expected_amount);
                        next
                    };
                    let result = optimize(&templates, &db, &mut model, &cfg);
                    let _locals = templates.local_treaties(&result.config, &db);
                    // allowance_i = the most negative δᵢ the local treaty
                    // tolerates: from  -δᵢ + cᵢ ≤ headroom  we get
                    // δᵢ ≥ cᵢ - headroom.
                    state.allowances = (0..sites)
                        .map(|i| {
                            let cvar = &templates.clauses[0].config_vars[i];
                            let c = result.config.get(cvar).copied().unwrap_or(headroom);
                            c - headroom
                        })
                        .collect();
                    // Safety net: never allow the allowances to oversubscribe
                    // the headroom (the hard constraints already guarantee
                    // this; clamp defensively against a degenerate model).
                    let total: i64 = state.allowances.iter().map(|a| -a).sum();
                    if total > headroom {
                        let share = headroom / sites as i64;
                        state.allowances = vec![-share; sites];
                    }
                    // Distribute any leftover headroom in proportion to the
                    // expected per-site load, so slack is not parked at a
                    // site that will not use it.
                    let used: i64 = state.allowances.iter().map(|a| -a).sum();
                    let mut leftover = headroom - used;
                    if leftover > 0 {
                        let weight_total: f64 = site_weights.iter().sum();
                        for (allowance, weight) in state
                            .allowances
                            .iter_mut()
                            .zip(site_weights.iter())
                            .take(sites)
                        {
                            let share = ((leftover as f64) * weight
                                / weight_total.max(f64::MIN_POSITIVE))
                            .floor() as i64;
                            *allowance -= share;
                        }
                        let used: i64 = state.allowances.iter().map(|a| -a).sum();
                        leftover = headroom - used;
                        if leftover > 0 {
                            // Give the remainder to the most loaded site.
                            let hottest = site_weights
                                .iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
                                .map(|(i, _)| i)
                                .unwrap_or(0);
                            state.allowances[hottest] -= leftover;
                        }
                    }
                    started.elapsed().as_micros() as u64
                }
            },
        }
    }

    /// The global-treaty invariant: as long as only `order` operations run,
    /// every counter's logical value stays at or above its lower bound
    /// (checked by tests and the property suite).
    pub fn all_treaties_hold(&self) -> bool {
        self.counters
            .values()
            .all(|c| c.logical_value() >= c.lower_bound.min(c.base))
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_sim::DetRng;

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn homeo(sites: usize) -> ReplicatedCounters {
        ReplicatedCounters::new(
            sites,
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 10,
                    futures: 2,
                    seed: 21,
                }),
            },
        )
    }

    #[test]
    fn most_orders_commit_locally() {
        let mut counters = homeo(2);
        counters.register(stock(0), 100, 1);
        let mut synced = 0;
        for i in 0..60 {
            let out = counters.order(i % 2, &stock(0), 1, Some(99));
            assert!(out.committed);
            if out.synchronized {
                synced += 1;
            }
        }
        // 60 decrements over ~99 of headroom: synchronization must be rare.
        assert!(synced <= 6, "synced={synced}");
        assert!(counters.stats.local_commits >= 54);
    }

    #[test]
    fn protocol_value_matches_serial_micro_order_semantics() {
        // The logical counter value must follow the serial decrement/refill
        // semantics of Listing 1 exactly, no matter how operations are
        // spread over sites.
        for mode in [
            ReplicatedMode::EvenSplit,
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 8,
                    futures: 2,
                    seed: 5,
                }),
            },
            ReplicatedMode::Homeostasis { optimizer: None },
        ] {
            let refill = 20;
            let mut counters = ReplicatedCounters::new(3, mode);
            counters.register(stock(7), 12, 1);
            let mut serial = 12i64;
            let mut rng = DetRng::seed_from(17);
            for step in 0..200 {
                let site = rng.index(3);
                counters.order(site, &stock(7), 1, Some(refill - 1));
                serial = if serial > 1 { serial - 1 } else { refill - 1 };
                assert_eq!(
                    counters.logical_value(&stock(7)),
                    serial,
                    "mode {mode:?}, step {step}"
                );
            }
        }
    }

    #[test]
    fn default_configuration_synchronizes_on_every_decrement() {
        let mut counters =
            ReplicatedCounters::new(2, ReplicatedMode::Homeostasis { optimizer: None });
        counters.register(stock(1), 50, 1);
        for i in 0..10 {
            let out = counters.order(i % 2, &stock(1), 1, None);
            assert!(out.synchronized, "op {i}");
        }
    }

    #[test]
    fn even_split_matches_the_demarcation_behaviour() {
        let mut counters = ReplicatedCounters::new(2, ReplicatedMode::EvenSplit);
        counters.register(stock(2), 101, 1);
        // Each site can take 50 decrements before the first synchronization.
        let mut synced_at = None;
        for i in 0..60 {
            let out = counters.order(0, &stock(2), 1, Some(100));
            if out.synchronized {
                synced_at = Some(i);
                break;
            }
        }
        assert_eq!(synced_at, Some(50));
    }

    #[test]
    fn increments_never_synchronize() {
        let mut counters = homeo(4);
        counters.register(ObjId::new("balance[3]"), 0, -1_000_000_000);
        for i in 0..40 {
            let out = counters.increment(i % 4, &ObjId::new("balance[3]"), 7);
            assert!(!out.synchronized);
        }
        assert_eq!(counters.logical_value(&ObjId::new("balance[3]")), 40 * 7);
        assert_eq!(counters.stats.synchronizations, 0);
    }

    #[test]
    fn force_sync_counts_as_synchronization() {
        let mut counters = homeo(2);
        counters.register(ObjId::new("neworder[1]"), 5, 0);
        let before = counters.stats.synchronizations;
        let out = counters.force_sync(&ObjId::new("neworder[1]"));
        assert!(out.synchronized);
        assert_eq!(counters.stats.synchronizations, before + 1);
    }

    #[test]
    fn treaty_invariant_is_maintained_under_random_load() {
        let mut counters = homeo(3);
        for i in 0..20 {
            counters.register(stock(i), 100, 1);
        }
        let mut rng = DetRng::seed_from(3);
        for _ in 0..2000 {
            let site = rng.index(3);
            let item = rng.index(20);
            counters.order(site, &stock(item), rng.int_inclusive(1, 3), Some(99));
            assert!(counters.all_treaties_hold());
        }
        // Synchronizations happen, but far less often than operations.
        assert!(counters.stats.synchronizations > 0);
        assert!(counters.stats.synchronizations * 5 < counters.stats.local_commits);
    }

    #[test]
    fn skewed_hints_shift_allowances_toward_the_hot_site() {
        let mut counters = ReplicatedCounters::new(
            2,
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 12,
                    futures: 3,
                    seed: 2,
                }),
            },
        )
        .with_workload_hints(vec![0.9, 0.1], 1);
        counters.register(stock(9), 40, 1);
        let state = counters.counters.get(&stock(9)).unwrap();
        let a0 = -state.allowances[0];
        let a1 = -state.allowances[1];
        assert!(a0 >= a1, "a0={a0} a1={a1}");
        assert!(a0 + a1 <= 39);
    }
}
