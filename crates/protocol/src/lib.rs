//! # homeo-protocol
//!
//! The homeostasis protocol (Sections 3–5 of *The Homeostasis Protocol:
//! Avoiding Transaction Coordination Through Program Analysis*, SIGMOD 2015).
//!
//! The protocol proceeds in rounds of three phases:
//!
//! 1. **treaty generation** — from the joint symbolic table of the workload,
//!    pick the row ψ satisfied by the current database, preprocess it into a
//!    conjunction of linear constraints, split it into per-site local treaty
//!    templates with configuration variables, and instantiate them (either
//!    with the always-valid default of Theorem 4.3 or via the
//!    workload-driven MaxSMT optimizer of Algorithm 1);
//! 2. **normal execution** — each site runs transactions locally, checking
//!    its local treaty before commit; no inter-site communication happens as
//!    long as the treaties hold;
//! 3. **cleanup** — when a transaction would violate the treaty it is
//!    aborted, sites synchronize their updated objects, the offending
//!    transaction is re-run everywhere, and a new round begins.
//!
//! Correctness is observational equivalence to a serial execution
//! (Theorem 3.8); [`correctness`] provides that oracle as executable code and
//! the integration tests exercise it continuously.
//!
//! Two protocol cores are provided:
//!
//! * [`round`] — the fully general protocol over an arbitrary set of `L`
//!   transactions (used by the examples and the correctness tests);
//! * [`replicated`] — the treaty negotiation for the scalable per-object
//!   fast path used by the paper's evaluation workloads (replicated counters
//!   with `q ≥ threshold` treaties, per Appendix B + E), built on the same
//!   template and optimizer machinery.
//!
//! Both are *executed* through the shared per-site runtime layer in the
//! `homeo-runtime` crate, which owns the storage engines, operation inboxes
//! and the `submit / poll / synchronize` surface every protocol variant
//! (including the baselines) shares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod correctness;
pub mod exec;
pub mod lrslice;
pub mod model;
pub mod negotiation;
pub mod optimizer;
pub mod program;
pub mod remote_writes;
pub mod replicated;
pub mod roster;
pub mod round;
pub mod templates;
pub mod treaty;

pub use config::ClusterConfig;
pub use model::{DistributedDb, Loc, SiteId};
pub use negotiation::{negotiate_allowances_cached, AdaptiveSync, NegotiationCache, SyncTuning};
pub use optimizer::{OptimizerConfig, WorkloadModel};
pub use program::{ProgramBundle, ProgramSet};
pub use replicated::{
    negotiate_allowances, ReplicatedMode, ReplicatedOutcome, ReplicatedStats, WorkloadHints,
};
pub use roster::Roster;
pub use round::{HomeostasisCluster, TxnOutcome};
pub use treaty::{GlobalTreaty, LocalTreaty, TreatyTable};
