//! Program registration: the portable description of an `L++` workload and
//! the per-site analysis pipeline it deterministically expands into.
//!
//! The cluster backends run the *general* protocol by shipping program
//! **source text** — never analysis artifacts — to every site
//! (`RegisterProgram` in the cluster wire protocol). Each site independently
//! parses the sources (`homeo-lang`), derives the symbolic and joint tables
//! (`homeo-analysis`), and negotiates treaties from the same installed global
//! database with the same lockstep round counter and optimizer seed. Because
//! every step of that pipeline is deterministic, all sites (and the serial
//! [`crate::round::HomeostasisCluster`] oracle) arrive at byte-identical
//! treaty tables without a single treaty crossing the wire.
//!
//! * [`ProgramBundle`] — the wire/registration form: sources, object
//!   locations, initial values, optimizer settings.
//! * [`ProgramSet`] — the expanded form a site keeps: parsed transactions,
//!   joint symbolic table, location map, treaty table, and the shared
//!   [`ProgramSet::negotiate`] round that both the serial oracle and the
//!   cluster workers call. This is the general-path analogue of the
//!   replicated fast path's [`crate::NegotiationCache`]: the expensive
//!   analysis happens once per registered template, and each renegotiation
//!   reuses it.

use serde::{Deserialize, Serialize};

use homeo_analysis::{JointSymbolicTable, SymbolicTable};
use homeo_lang::ast::Transaction;
use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_sim::Timer;

use crate::model::{Loc, SiteId};
use crate::optimizer::{optimize_timed, OptimizerConfig};
use crate::templates::{preprocess_guard, TreatyTemplates};
use crate::treaty::TreatyTable;

/// The portable registration form of an `L++` workload.
///
/// Program text travels as-is; the receiving site re-runs the full
/// lang → analysis pipeline locally ([`ProgramSet::from_bundle`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramBundle {
    /// Concrete-syntax source of each transaction, in registration order
    /// (the order defines the `SiteOp::Transaction { index }` numbering).
    pub sources: Vec<String>,
    /// Explicit object locations (`Loc` pairs).
    pub loc_pairs: Vec<(ObjId, SiteId)>,
    /// Default site for unmapped objects, if any.
    pub default_site: Option<SiteId>,
    /// Initial values for objects not yet present on the sites; applied
    /// only where the object is still absent, so registration is idempotent.
    pub initial: Vec<(ObjId, i64)>,
    /// Optimizer settings; `None` negotiates the always-valid default
    /// configuration of Theorem 4.3.
    pub optimizer: Option<OptimizerConfig>,
}

impl ProgramBundle {
    /// Builds a bundle from already-parsed transactions by pretty-printing
    /// them back to source (the parser and printer round-trip).
    pub fn from_transactions(
        transactions: &[Transaction],
        loc: &Loc,
        initial: &Database,
        optimizer: Option<OptimizerConfig>,
    ) -> Self {
        ProgramBundle {
            sources: transactions.iter().map(printable_source).collect(),
            loc_pairs: loc.pairs(),
            default_site: loc.default_site(),
            initial: initial.iter().map(|(o, v)| (o.clone(), v)).collect(),
            optimizer,
        }
    }

    /// The location map the bundle describes.
    pub fn loc(&self) -> Loc {
        let mut loc = Loc::from_pairs(self.loc_pairs.iter().cloned());
        if let Some(site) = self.default_site {
            loc = loc.with_default_site(site);
        }
        loc
    }
}

/// Pretty-prints a transaction as registerable source text.
///
/// Builder-generated display names (`MicroOrder(item=3)`) carry punctuation
/// the concrete syntax does not accept; the name is metadata, not semantics,
/// so it is rewritten into the identifier charset before printing to keep
/// the print → parse round-trip total.
fn printable_source(txn: &Transaction) -> String {
    let mut name: String = txn
        .name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
        name.insert(0, 't');
    }
    if name == txn.name {
        return homeo_lang::pretty::transaction_to_string(txn);
    }
    let mut renamed = txn.clone();
    renamed.name = name;
    homeo_lang::pretty::transaction_to_string(&renamed)
}

/// A registered program set: parsed transactions plus the one-time analysis
/// artifacts and the current treaty table.
///
/// The analysis (symbolic tables, joint table) runs once at registration;
/// every subsequent [`Self::negotiate`] reuses it, which is what keeps
/// general-path synchronization rounds cheap.
#[derive(Debug, Clone)]
pub struct ProgramSet {
    transactions: Vec<Transaction>,
    sources: Vec<String>,
    joint: JointSymbolicTable,
    loc: Loc,
    optimizer: Option<OptimizerConfig>,
    treaties: TreatyTable,
    sites: usize,
}

impl ProgramSet {
    /// Expands a wire bundle into a program set for a cluster of `sites`
    /// sites: parse every source, check it is parameterless and respects
    /// Assumption 3.1 (all writes on one site), and build the joint
    /// symbolic table.
    ///
    /// Errors are returned (never panicked) — bundles arrive over the wire
    /// from possibly-confused clients.
    pub fn from_bundle(bundle: &ProgramBundle, sites: usize) -> Result<Self, String> {
        let mut transactions = Vec::with_capacity(bundle.sources.len());
        for (i, src) in bundle.sources.iter().enumerate() {
            let txn = homeo_lang::parse_transaction(src)
                .map_err(|e| format!("program {i}: parse error: {e}"))?;
            if !txn.params.is_empty() {
                return Err(format!(
                    "program {i} (`{}`) has parameters; register pre-instantiated transactions",
                    txn.name
                ));
            }
            transactions.push(txn);
        }
        let loc = bundle.loc();
        for (i, txn) in transactions.iter().enumerate() {
            let site = Self::write_site(txn, &loc);
            if !loc.all_writes_local(txn, site) {
                return Err(format!(
                    "program {i} (`{}`) writes objects on multiple sites (Assumption 3.1)",
                    txn.name
                ));
            }
        }
        Ok(Self::build(
            transactions,
            bundle.sources.clone(),
            loc,
            sites,
            bundle.optimizer,
        ))
    }

    /// Builds a program set directly from parsed transactions (the serial
    /// oracle's path; trusted input, so Assumption 3.1 is debug-asserted at
    /// execution time rather than checked here).
    pub fn from_transactions(
        transactions: Vec<Transaction>,
        loc: Loc,
        sites: usize,
        optimizer: Option<OptimizerConfig>,
    ) -> Self {
        assert!(
            transactions.iter().all(|t| t.params.is_empty()),
            "the general protocol requires parameterless (pre-instantiated) transactions"
        );
        let sources = transactions.iter().map(printable_source).collect();
        Self::build(transactions, sources, loc, sites, optimizer)
    }

    fn build(
        transactions: Vec<Transaction>,
        sources: Vec<String>,
        loc: Loc,
        sites: usize,
        optimizer: Option<OptimizerConfig>,
    ) -> Self {
        let tables: Vec<SymbolicTable> = transactions.iter().map(SymbolicTable::analyze).collect();
        let joint = JointSymbolicTable::build(&tables);
        ProgramSet {
            transactions,
            sources,
            joint,
            loc,
            optimizer,
            treaties: TreatyTable::new(sites),
            sites,
        }
    }

    fn write_site(txn: &Transaction, loc: &Loc) -> SiteId {
        txn.write_set()
            .iter()
            .next()
            .map(|o| loc.site_of(o))
            .unwrap_or(0)
    }

    /// Number of registered transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether no transactions are registered.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The registered transactions, in index order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The registered sources, in index order.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    /// The location map.
    pub fn loc(&self) -> &Loc {
        &self.loc
    }

    /// The number of sites the set negotiates for.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The current treaty table.
    pub fn treaties(&self) -> &TreatyTable {
        &self.treaties
    }

    /// The site a transaction runs on: the site holding its write set
    /// (Assumption 3.1). `None` for an out-of-range index.
    pub fn home_site(&self, index: usize) -> Option<SiteId> {
        let txn = self.transactions.get(index)?;
        let site = Self::write_site(txn, &self.loc);
        debug_assert!(
            self.loc.all_writes_local(txn, site),
            "transaction {} violates Assumption 3.1",
            txn.name
        );
        Some(site)
    }

    /// Whether `site`'s local treaty holds on its current view.
    pub fn local_holds(&self, site: SiteId, view: &Database) -> bool {
        self.treaties.local(site).holds_on(view)
    }

    /// The lockstep negotiation round counter.
    pub fn round(&self) -> u64 {
        self.treaties.round
    }

    /// Overrides the round counter (a restarted site resynchronizing to the
    /// cluster's counter before renegotiating — the seed depends on it).
    pub fn set_round(&mut self, round: u64) {
        self.treaties.round = round;
    }

    /// Treaty generation for a round starting from `db` — the single shared
    /// negotiation path of the general protocol. Every caller with the same
    /// `(db, round, optimizer seed)` derives byte-identical treaties, which
    /// is how the cluster distributes treaties without sending them: each
    /// site negotiates locally from the installed global state. Returns the
    /// solver time in microseconds as measured by `timer`.
    pub fn negotiate(&mut self, db: &Database, timer: Timer) -> u64 {
        let row = match self.joint.find_row(db) {
            Ok(Some(row)) => row.guard.clone(),
            _ => homeo_lang::ast::BExp::True,
        };
        let psi = preprocess_guard(&row, db);
        let templates = TreatyTemplates::generate(&psi, &self.loc, self.sites);
        let (config, solver_micros) = match &self.optimizer {
            Some(cfg) => {
                // Workload model: pick one of the registered transactions
                // uniformly at random and apply it through direct evaluation.
                let transactions = self.transactions.clone();
                let mut model = move |current: &Database, rng: &mut homeo_sim::DetRng| {
                    let idx = rng.index(transactions.len());
                    match homeo_lang::Evaluator::eval(&transactions[idx], current, &[]) {
                        Ok(out) => out.database,
                        Err(_) => current.clone(),
                    }
                };
                let seeded = OptimizerConfig {
                    seed: cfg.seed.wrapping_add(self.treaties.round),
                    ..*cfg
                };
                let result = optimize_timed(&templates, db, &mut model, &seeded, timer);
                (result.config, result.solver_micros)
            }
            None => (templates.default_config(db), 0),
        };
        let locals = templates.local_treaties(&config, db);
        debug_assert!(templates.config_is_valid(&config, db));
        self.treaties.install(templates.global(), locals);
        solver_micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::programs;

    fn example_bundle() -> ProgramBundle {
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        ProgramBundle::from_transactions(&[programs::t1(), programs::t2()], &loc, &db, None)
    }

    #[test]
    fn bundle_round_trips_through_source_text() {
        let bundle = example_bundle();
        let set = ProgramSet::from_bundle(&bundle, 2).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.transactions()[0], programs::t1());
        assert_eq!(set.transactions()[1], programs::t2());
        assert_eq!(set.home_site(0), Some(0));
        assert_eq!(set.home_site(1), Some(1));
        assert_eq!(set.home_site(2), None);
    }

    #[test]
    fn negotiation_is_deterministic_across_independent_sets() {
        let bundle = ProgramBundle {
            optimizer: Some(OptimizerConfig::default()),
            ..example_bundle()
        };
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        let mut a = ProgramSet::from_bundle(&bundle, 2).unwrap();
        let mut b = ProgramSet::from_bundle(&bundle, 2).unwrap();
        a.negotiate(&db, Timer::fixed_zero());
        b.negotiate(&db, Timer::fixed_zero());
        assert_eq!(a.treaties(), b.treaties());
        assert_eq!(a.round(), 1);
        // A restarted site that resyncs its round counter re-derives the
        // same treaties.
        let db2 = Database::from_pairs([("x", 30), ("y", 4)]);
        a.negotiate(&db2, Timer::fixed_zero());
        let mut c = ProgramSet::from_bundle(&bundle, 2).unwrap();
        c.set_round(1);
        c.negotiate(&db2, Timer::fixed_zero());
        assert_eq!(a.treaties(), c.treaties());
    }

    #[test]
    fn malformed_bundles_are_rejected_not_panicked() {
        let mut bundle = example_bundle();
        bundle.sources[0] = "txn broken { write(".to_string();
        assert!(ProgramSet::from_bundle(&bundle, 2).is_err());

        let mut bundle = example_bundle();
        // Relocate `x` to site 1 so t1 (writes x, runs where x lives)
        // stays fine, then break Assumption 3.1 with a program writing
        // objects on two sites.
        bundle.sources = vec!["txn split { write(x = 1); write(y = 2); }".to_string()];
        assert!(ProgramSet::from_bundle(&bundle, 2).is_err());
    }
}
