//! Cheap synchronization rounds: the negotiation cache, solver warm start
//! and the demand-adaptive tuning knobs.
//!
//! The replicated-counter treaty template is fully determined by the site
//! count — only the headroom bound of its single clause changes between
//! rounds — yet [`crate::negotiate_allowances`] used to rebuild the symbolic
//! template, the [`Loc`] map and every `format!`-built δ-variable name per
//! call. [`NegotiationCache`] memoizes all of that per site count and keeps
//! the scratch buffers (sanitized weights, the empty sampling database)
//! alive across rounds, so a renegotiation does only the work that actually
//! changed. [`negotiate_allowances_cached`] additionally threads the previous
//! allowance split into the optimizer as a warm-start candidate
//! ([`crate::optimizer::optimize_timed_warm`]): the candidate is rescaled to
//! the current headroom and, when it still satisfies every sampled soft
//! group, the MaxSMT search is skipped entirely while producing byte-identical
//! allowances.
//!
//! Warm rounds additionally consult an exact-result memo. At a fixed site
//! count the final allowances are a pure function of the optimizer
//! configuration, the headroom, the expected amount and the sanitized
//! weights: the sampled futures consume the deterministic RNG identically
//! regardless of headroom (which enters only through the template's bound),
//! so a repeated key — common under refill-style workloads, where headroom
//! cycles through the same small range — can return the previously computed
//! split byte-for-byte without touching the solver. Cold calls
//! (`previous == None`, e.g. registration or [`SyncTuning::cold`]) never
//! read or populate the memo, so they keep measuring the true solve.

use std::collections::BTreeMap;

use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_sim::Timer;
use homeo_solver::{LinExpr, LinearConstraint, VarName};

use crate::model::Loc;
use crate::optimizer::optimize_timed_warm;
use crate::replicated::{ReplicatedMode, WorkloadHints};
use crate::templates::TreatyTemplates;

/// Per-site-count memoized negotiation state plus reusable scratch buffers.
///
/// One cache serves every counter of a runtime or site worker: the cached
/// template is shared across counters (only its headroom bound is rewritten
/// per call) and the scratch buffers avoid the per-negotiation allocations of
/// the cold path.
#[derive(Debug, Default)]
pub struct NegotiationCache {
    entries: BTreeMap<usize, CacheEntry>,
    /// Sanitized site weights, rebuilt (in place) per negotiation.
    weights: Vec<f64>,
}

#[derive(Debug)]
struct CacheEntry {
    /// The replicated-counter treaty template for this site count, generated
    /// once with a zero bound; `clauses[0].bound` is rewritten to the current
    /// headroom on every use.
    templates: TreatyTemplates,
    /// Interned `δ@{i}` object ids for the sampling model.
    deltas: Vec<ObjId>,
    /// The (empty) database sampled futures start from.
    db: Database,
    /// Exact-result memo for warm rounds: key → final allowances.
    solved: BTreeMap<MemoKey, Vec<i64>>,
}

/// Everything the optimizer-backed allowance computation depends on at a
/// fixed site count. Two calls with equal keys produce byte-identical
/// allowances, so the memoized split is exact, not approximate.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MemoKey {
    lookahead: usize,
    futures: usize,
    seed: u64,
    headroom: i64,
    expected_amount: i64,
    /// Sanitized site weights, bit-exact.
    weight_bits: Vec<u64>,
}

/// Per-site-count memo size cap; the memo is dropped wholesale when full so
/// a weight-churning workload (e.g. the demand-adaptive loop) cannot grow it
/// without bound.
const MEMO_CAP: usize = 1024;

impl NegotiationCache {
    /// An empty cache.
    pub fn new() -> Self {
        NegotiationCache::default()
    }

    /// The per-counter treaty template shape for `sites` replicas:
    /// Σ δᵢ ≥ -headroom, generated with the headroom left at zero (it is
    /// rewritten on every use).
    fn build_entry(sites: usize) -> CacheEntry {
        let mut sum = LinExpr::zero();
        let mut loc = Loc::new().with_default_site(0);
        let mut deltas = Vec::with_capacity(sites);
        for i in 0..sites {
            let name = format!("δ@{i}");
            sum.add_term(name.clone(), 1);
            let obj = ObjId::new(name);
            loc.assign(obj.clone(), i);
            deltas.push(obj);
        }
        let psi = vec![LinearConstraint::ge(sum, LinExpr::constant(0))];
        CacheEntry {
            templates: TreatyTemplates::generate(&psi, &loc, sites),
            deltas,
            db: Database::new(),
            solved: BTreeMap::new(),
        }
    }
}

/// Opt-in tuning of the synchronization control loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncTuning {
    /// Warm-start the treaty solver from the previous allowance split
    /// (rescaled to the current headroom). Allowances are byte-identical to
    /// a cold solve either way; this only makes the common round cheaper.
    pub warm_start: bool,
    /// The demand-adaptive control loop: EWMA consumption tracking feeding
    /// the optimizer's site weights, plus proactive re-splits before
    /// violation. `None` disables both (the default).
    pub adaptive: Option<AdaptiveSync>,
}

impl Default for SyncTuning {
    fn default() -> Self {
        SyncTuning {
            warm_start: true,
            adaptive: None,
        }
    }
}

impl SyncTuning {
    /// Everything off: cold solves, static hints, no proactive rounds.
    /// Negotiation outputs are identical to [`SyncTuning::default`]; only
    /// the solver cost differs.
    pub fn cold() -> Self {
        SyncTuning {
            warm_start: false,
            adaptive: None,
        }
    }

    /// Warm start plus the default demand-adaptive loop.
    pub fn adaptive() -> Self {
        SyncTuning {
            warm_start: true,
            adaptive: Some(AdaptiveSync::default()),
        }
    }
}

/// Parameters of the demand-adaptive proactive renegotiation loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSync {
    /// EWMA decay applied per observed operation (replicated runtime).
    pub op_alpha: f64,
    /// EWMA decay applied per synchronization round (cluster workers, which
    /// observe per-site consumption only at delta collection).
    pub round_alpha: f64,
    /// Fraction of a site's allowance left at which a proactive re-split may
    /// fire (`remaining ≤ margin · allowance`).
    pub margin: f64,
    /// Minimum absolute drift between a site's observed demand share and its
    /// allowance share before a proactive re-split fires.
    pub drift: f64,
}

impl Default for AdaptiveSync {
    fn default() -> Self {
        AdaptiveSync {
            op_alpha: 0.05,
            round_alpha: 0.5,
            margin: 0.2,
            drift: 0.1,
        }
    }
}

/// [`crate::negotiate_allowances`] with memoized templates, reusable scratch
/// buffers and an optional warm start.
///
/// `previous` is the counter's current allowance vector (from the last
/// negotiation); `None` — e.g. at registration — forces a cold solve. The
/// returned allowances are byte-identical to [`crate::negotiate_allowances`]
/// for every input; only the measured solver time changes.
#[allow(clippy::too_many_arguments)] // mirrors `negotiate_allowances` plus the cache and warm-start inputs
pub fn negotiate_allowances_cached(
    mode: ReplicatedMode,
    hints: &WorkloadHints,
    sites: usize,
    base: i64,
    lower_bound: i64,
    timer: Timer,
    cache: &mut NegotiationCache,
    previous: Option<&[i64]>,
) -> (Vec<i64>, u64) {
    assert!(sites > 0);
    assert_eq!(hints.site_weights.len(), sites);
    let headroom = base.saturating_sub(lower_bound).max(0);
    match mode {
        ReplicatedMode::EvenSplit => {
            let share = headroom / sites as i64;
            (vec![-share; sites], 0)
        }
        ReplicatedMode::Homeostasis { optimizer } => match optimizer {
            None => {
                // Theorem 4.3 default: local sums frozen at their current
                // (zero-delta) values — synchronize on every decrement.
                (vec![0; sites], 0)
            }
            Some(cfg) => {
                let expected_amount = hints.expected_amount.max(1);
                sanitize_weights(&mut cache.weights, &hints.site_weights);
                let NegotiationCache { entries, weights } = cache;
                let entry = entries
                    .entry(sites)
                    .or_insert_with(|| NegotiationCache::build_entry(sites));
                // Exact-result memo, warm rounds only: refill-style workloads
                // revisit the same headroom values, and the allowances are a
                // pure function of the key (see the module docs).
                let memo_key = previous.is_some().then(|| MemoKey {
                    lookahead: cfg.lookahead,
                    futures: cfg.futures,
                    seed: cfg.seed,
                    headroom,
                    expected_amount,
                    weight_bits: weights.iter().map(|w| w.to_bits()).collect(),
                });
                if let Some(key) = &memo_key {
                    let (hit, micros) = timer.measure(|| entry.solved.get(key).cloned());
                    if let Some(allowances) = hit {
                        return (allowances, micros);
                    }
                }
                entry.templates.clauses[0].bound = headroom;
                let templates = &entry.templates;
                // Workload model: a weighted random site decrements by the
                // expected amount.
                let deltas = &entry.deltas;
                let mut model = |current: &Database, rng: &mut homeo_sim::DetRng| {
                    let site = rng.weighted_index(weights);
                    let mut next = current.clone();
                    next.add(deltas[site].clone(), -expected_amount);
                    next
                };
                // Warm-start candidate: the previous split rescaled to the
                // current headroom (the candidate only has to *witness* joint
                // feasibility — the installed configuration is recomputed
                // identically to a cold solve).
                let candidate = previous
                    .filter(|p| p.len() == sites)
                    .map(|prev| warm_candidate(&templates.clauses[0].config_vars, prev, headroom));
                let result = optimize_timed_warm(
                    templates,
                    &entry.db,
                    &mut model,
                    &cfg,
                    timer,
                    candidate.as_ref(),
                );
                let solver_micros = result.solver_micros;
                // allowance_i = the most negative δᵢ the local treaty
                // tolerates: from  -δᵢ + cᵢ ≤ headroom  we get
                // δᵢ ≥ cᵢ - headroom.
                let mut allowances: Vec<i64> = (0..sites)
                    .map(|i| {
                        let cvar = &templates.clauses[0].config_vars[i];
                        let c = result.config.get(cvar).copied().unwrap_or(headroom);
                        c - headroom
                    })
                    .collect();
                // Safety net: never allow the allowances to oversubscribe
                // the headroom (the hard constraints already guarantee this;
                // clamp defensively against a degenerate model).
                let total: i64 = allowances.iter().map(|a| -a).sum();
                if total > headroom {
                    let share = headroom / sites as i64;
                    allowances = vec![-share; sites];
                }
                distribute_leftover(&mut allowances, weights, headroom);
                if let Some(key) = memo_key {
                    if entry.solved.len() >= MEMO_CAP {
                        entry.solved.clear();
                    }
                    entry.solved.insert(key, allowances.clone());
                }
                (allowances, solver_micros)
            }
        },
    }
}

/// Rebuilds `out` as a sanitized copy of `raw`: non-finite or negative
/// weights become zero, and an all-zero vector falls back to uniform so the
/// sampler and the leftover distribution always see a usable distribution.
fn sanitize_weights(out: &mut Vec<f64>, raw: &[f64]) {
    out.clear();
    out.extend(
        raw.iter()
            .map(|w| if w.is_finite() && *w > 0.0 { *w } else { 0.0 }),
    );
    if out.iter().all(|w| *w == 0.0) {
        out.iter_mut().for_each(|w| *w = 1.0);
    }
}

/// The warm-start candidate configuration: the previous allowance split
/// rescaled (by integer floor) to the current headroom, expressed over the
/// template's configuration variables (`c_i = headroom - scaled_share_i`).
fn warm_candidate(
    config_vars: &[VarName],
    previous: &[i64],
    headroom: i64,
) -> BTreeMap<VarName, i64> {
    let prev_total: i64 = previous.iter().map(|a| (-a).max(0)).sum();
    config_vars
        .iter()
        .zip(previous)
        .map(|(cvar, a)| {
            let scaled = if prev_total > 0 {
                ((-a).max(0) as i128 * headroom.max(0) as i128 / prev_total as i128) as i64
            } else {
                0
            };
            (cvar.clone(), headroom - scaled)
        })
        .collect()
}

/// Distributes the headroom not consumed by `allowances` in proportion to
/// the (sanitized) site weights, handing the floor-rounding remainder to the
/// most loaded site — the distribution never strands headroom and never
/// oversubscribes it.
pub(crate) fn distribute_leftover(allowances: &mut [i64], weights: &[f64], headroom: i64) {
    let used: i64 = allowances.iter().map(|a| -a).sum();
    let mut leftover = headroom - used;
    if leftover <= 0 {
        return;
    }
    let weight_total: f64 = weights.iter().sum();
    for (allowance, weight) in allowances.iter_mut().zip(weights.iter()) {
        let share =
            ((leftover as f64) * weight / weight_total.max(f64::MIN_POSITIVE)).floor() as i64;
        *allowance -= share;
    }
    let used: i64 = allowances.iter().map(|a| -a).sum();
    leftover = headroom - used;
    if leftover > 0 {
        // Give the remainder to the most loaded site.
        let hottest = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("sanitized weights are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        allowances[hottest] -= leftover;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_sim::DetRng;

    #[test]
    fn sanitization_replaces_adversarial_weights() {
        let mut out = Vec::new();
        sanitize_weights(&mut out, &[f64::NAN, -3.0, f64::INFINITY, 2.0]);
        assert_eq!(out, vec![0.0, 0.0, 0.0, 2.0]);
        sanitize_weights(&mut out, &[f64::NAN, -1.0]);
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn leftover_distribution_conserves_headroom_exactly() {
        let mut rng = DetRng::seed_from(11);
        for _ in 0..500 {
            let sites = 1 + rng.index(6);
            let headroom = rng.int_inclusive(0, 10_000);
            let mut raw: Vec<f64> = (0..sites)
                .map(|_| match rng.index(5) {
                    0 => f64::NAN,
                    1 => -1.0,
                    2 => f64::INFINITY,
                    3 => 0.0,
                    _ => rng.int_inclusive(1, 1_000) as f64 / 10.0,
                })
                .collect();
            if rng.chance(0.1) {
                raw.iter_mut().for_each(|w| *w = 0.0);
            }
            let mut weights = Vec::new();
            sanitize_weights(&mut weights, &raw);
            // Start from a partially-consumed split, as the optimizer leaves.
            let mut allowances: Vec<i64> = (0..sites)
                .map(|_| -rng.int_inclusive(0, headroom / sites as i64))
                .collect();
            while allowances.iter().map(|a| -a).sum::<i64>() > headroom {
                allowances.iter_mut().for_each(|a| *a = (*a + 1).min(0));
            }
            distribute_leftover(&mut allowances, &weights, headroom);
            let consumed: i64 = allowances.iter().map(|a| -a).sum();
            assert_eq!(
                consumed, headroom,
                "weights {raw:?}: stranded or oversubscribed headroom"
            );
            assert!(allowances.iter().all(|a| *a <= 0), "positive allowance");
        }
    }

    #[test]
    fn memoized_rounds_return_byte_identical_allowances() {
        use crate::optimizer::OptimizerConfig;
        use crate::replicated::negotiate_allowances;
        let mode = ReplicatedMode::Homeostasis {
            optimizer: Some(OptimizerConfig {
                lookahead: 6,
                futures: 2,
                seed: 21,
            }),
        };
        let hints = WorkloadHints {
            site_weights: vec![0.8, 0.2],
            expected_amount: 1,
        };
        let mut cache = NegotiationCache::new();
        let mut previous: Option<Vec<i64>> = None;
        // Headrooms repeat, as under a refill workload: the second pass over
        // each value hits the memo and must still match the cold reference.
        for headroom in [40i64, 17, 5, 40, 17, 5, 40, 0] {
            let (cold, _) = negotiate_allowances(mode, &hints, 2, headroom, 0, Timer::fixed_zero());
            let (warm, _) = negotiate_allowances_cached(
                mode,
                &hints,
                2,
                headroom,
                0,
                Timer::fixed_zero(),
                &mut cache,
                previous.as_deref(),
            );
            assert_eq!(cold, warm, "headroom {headroom}");
            previous = Some(warm);
        }
    }

    #[test]
    fn warm_candidate_never_oversubscribes() {
        let vars: Vec<VarName> = (0..3).map(|k| format!("c0@{k}")).collect();
        let prev = [-120, -60, -19];
        for headroom in [0i64, 1, 50, 199, 200, 10_000] {
            let candidate = warm_candidate(&vars, &prev, headroom);
            let consumed: i64 = candidate.values().map(|c| headroom - c).sum();
            assert!(consumed <= headroom, "headroom {headroom}: {candidate:?}");
        }
    }
}
