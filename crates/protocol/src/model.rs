//! The distributed system model (Section 3.1).
//!
//! A distributed database is a pair `⟨D, Loc⟩` where `Loc : Obj → {1..K}`
//! maps every object to the site that stores it. Each transaction runs on a
//! particular site; under Assumption 3.1 all its writes target objects local
//! to that site (the remote-write transformation of Appendix B makes this
//! hold for replicated workloads).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_lang::ast::Transaction;
use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;

/// Site identifiers: `0..K`.
pub type SiteId = usize;

/// The object-location map `Loc`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loc {
    map: BTreeMap<ObjId, SiteId>,
    default_site: Option<SiteId>,
}

impl Loc {
    /// An empty location map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map from explicit pairs.
    pub fn from_pairs<I, K>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, SiteId)>,
        K: Into<ObjId>,
    {
        Loc {
            map: pairs.into_iter().map(|(k, s)| (k.into(), s)).collect(),
            default_site: None,
        }
    }

    /// Sets the site for objects not explicitly mapped (useful for synthetic
    /// objects introduced by transformations).
    pub fn with_default_site(mut self, site: SiteId) -> Self {
        self.default_site = Some(site);
        self
    }

    /// Assigns an object to a site.
    pub fn assign(&mut self, obj: ObjId, site: SiteId) {
        self.map.insert(obj, site);
    }

    /// The site storing `obj`.
    ///
    /// # Panics
    /// Panics when the object is unmapped and no default site is configured.
    pub fn site_of(&self, obj: &ObjId) -> SiteId {
        self.map
            .get(obj)
            .copied()
            .or(self.default_site)
            .unwrap_or_else(|| panic!("object `{obj}` has no location"))
    }

    /// Whether `obj` is local to `site`.
    pub fn is_local(&self, obj: &ObjId, site: SiteId) -> bool {
        self.site_of(obj) == site
    }

    /// All explicit `(object, site)` pairs, in object order — the portable
    /// form a [`crate::program::ProgramBundle`] ships over the wire.
    pub fn pairs(&self) -> Vec<(ObjId, SiteId)> {
        self.map.iter().map(|(o, s)| (o.clone(), *s)).collect()
    }

    /// The configured default site, if any.
    pub fn default_site(&self) -> Option<SiteId> {
        self.default_site
    }

    /// All explicitly mapped objects located at `site`.
    pub fn objects_at(&self, site: SiteId) -> Vec<ObjId> {
        self.map
            .iter()
            .filter(|(_, s)| **s == site)
            .map(|(o, _)| o.clone())
            .collect()
    }

    /// The number of distinct sites mentioned.
    pub fn site_count(&self) -> usize {
        self.map
            .values()
            .copied()
            .chain(self.default_site)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Checks Assumption 3.1 for a transaction running at `site`: every
    /// object it may write is local.
    pub fn all_writes_local(&self, txn: &Transaction, site: SiteId) -> bool {
        txn.write_set().iter().all(|o| self.is_local(o, site))
    }
}

/// A distributed database `⟨D, Loc⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedDb {
    /// The logical global database.
    pub db: Database,
    /// The location map.
    pub loc: Loc,
}

impl DistributedDb {
    /// Creates a distributed database.
    pub fn new(db: Database, loc: Loc) -> Self {
        DistributedDb { db, loc }
    }

    /// The projection `Π_i(D)`: the part of the database stored at `site`.
    pub fn local_part(&self, site: SiteId) -> Database {
        self.db.project(|o| self.loc.is_local(o, site))
    }

    /// The part of the database *not* stored at `site`.
    pub fn remote_part(&self, site: SiteId) -> Database {
        self.db.project(|o| !self.loc.is_local(o, site))
    }
}

/// Observational equivalence (Definition 3.3): two outcomes are equivalent
/// when they agree on the local objects and produce identical logs.
pub fn observationally_equivalent(
    loc: &Loc,
    site: SiteId,
    a: (&Database, &[i64]),
    b: (&Database, &[i64]),
) -> bool {
    let (da, la) = a;
    let (db, lb) = b;
    la == lb && da.project(|o| loc.is_local(o, site)) == db.project(|o| loc.is_local(o, site))
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::programs;

    fn two_site_loc() -> Loc {
        Loc::from_pairs([("x", 0usize), ("y", 1usize)])
    }

    #[test]
    fn site_lookup_and_locality() {
        let loc = two_site_loc();
        assert_eq!(loc.site_of(&"x".into()), 0);
        assert!(loc.is_local(&"y".into(), 1));
        assert!(!loc.is_local(&"y".into(), 0));
        assert_eq!(loc.site_count(), 2);
        assert_eq!(loc.objects_at(0), vec![ObjId::new("x")]);
    }

    #[test]
    fn default_site_covers_unmapped_objects() {
        let loc = Loc::from_pairs([("x", 0usize)]).with_default_site(1);
        assert_eq!(loc.site_of(&"unknown".into()), 1);
    }

    #[test]
    #[should_panic(expected = "no location")]
    fn unmapped_object_without_default_panics() {
        two_site_loc().site_of(&"z".into());
    }

    #[test]
    fn assumption_3_1_check() {
        let loc = two_site_loc();
        // T1 writes x (site 0), T2 writes y (site 1).
        assert!(loc.all_writes_local(&programs::t1(), 0));
        assert!(!loc.all_writes_local(&programs::t1(), 1));
        assert!(loc.all_writes_local(&programs::t2(), 1));
    }

    #[test]
    fn projections_split_the_database() {
        let db = Database::from_pairs([("x", 1), ("y", 2)]);
        let dd = DistributedDb::new(db, two_site_loc());
        assert_eq!(dd.local_part(0), Database::from_pairs([("x", 1)]));
        assert_eq!(dd.remote_part(0), Database::from_pairs([("y", 2)]));
    }

    #[test]
    fn observational_equivalence_ignores_remote_differences() {
        let loc = two_site_loc();
        let a = Database::from_pairs([("x", 1), ("y", 5)]);
        let b = Database::from_pairs([("x", 1), ("y", 99)]);
        // Same local part (x) and same logs: equivalent from site 0's view.
        assert!(observationally_equivalent(&loc, 0, (&a, &[7]), (&b, &[7])));
        // Different logs break equivalence.
        assert!(!observationally_equivalent(&loc, 0, (&a, &[7]), (&b, &[8])));
        // Different local values break equivalence.
        let c = Database::from_pairs([("x", 2), ("y", 5)]);
        assert!(!observationally_equivalent(&loc, 0, (&a, &[]), (&c, &[])));
    }
}
