//! The cluster membership roster: which sites are members, stamped with a
//! monotonically increasing epoch.
//!
//! Elastic membership (site join/leave with counter-shard handoff) treats
//! the roster as replicated state in its own right. A membership change is
//! *proposed* by the membership coordinator (the lowest-numbered member),
//! carried out one counter at a time as `Handoff` synchronization rounds —
//! each counter's member set switches atomically under that counter's
//! freeze/ack barrier — and *committed* by broadcasting the epoch-bumped
//! roster. Receivers adopt a roster iff its epoch is strictly newer than
//! the one they hold, so duplicated or reordered installs are harmless, and
//! a member that disappears between two adopted rosters is *evicted*: its
//! frames (other than a rejoin request) are rejected.

use serde::{Deserialize, Serialize};

/// An epoch-stamped member list. `members` is sorted and duplicate-free;
/// the membership coordinator is `members[0]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Roster {
    /// Bumped by one on every committed membership change. Receivers adopt
    /// a roster iff its epoch is strictly greater than the one they hold.
    pub epoch: u64,
    /// The member site ids, sorted ascending.
    pub members: Vec<usize>,
}

impl Roster {
    /// The founding roster: epoch 0, members `0..sites`.
    pub fn founding(sites: usize) -> Self {
        Roster {
            epoch: 0,
            members: (0..sites).collect(),
        }
    }

    /// A joining site's provisional roster: epoch 0, itself as the only
    /// member. Replaced wholesale by the `JoinAck` roster.
    pub fn lone(site: usize) -> Self {
        Roster {
            epoch: 0,
            members: vec![site],
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the roster has no members (never true for a well-formed
    /// roster; provided for clippy's `len_without_is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `site` is a member.
    pub fn contains(&self, site: usize) -> bool {
        self.members.binary_search(&site).is_ok()
    }

    /// The membership coordinator: the lowest-numbered member.
    pub fn leader(&self) -> usize {
        self.members[0]
    }

    /// The epoch-bumped roster with `site` added (sorted insert). Returns
    /// `None` when `site` is already a member.
    pub fn with_joined(&self, site: usize) -> Option<Roster> {
        match self.members.binary_search(&site) {
            Ok(_) => None,
            Err(at) => {
                let mut members = self.members.clone();
                members.insert(at, site);
                Some(Roster {
                    epoch: self.epoch + 1,
                    members,
                })
            }
        }
    }

    /// The epoch-bumped roster with `site` removed. Returns `None` when
    /// `site` is not a member or is the last member (a cluster cannot
    /// retire itself empty).
    pub fn with_left(&self, site: usize) -> Option<Roster> {
        if self.members.len() <= 1 {
            return None;
        }
        match self.members.binary_search(&site) {
            Err(_) => None,
            Ok(at) => {
                let mut members = self.members.clone();
                members.remove(at);
                Some(Roster {
                    epoch: self.epoch + 1,
                    members,
                })
            }
        }
    }

    /// The coordinator of a shard-hashed object over this roster's members:
    /// `members[hash % len]`. Counter rounds use the counter's *own* member
    /// list (`CounterMeta::members`) instead; this is the fallback for
    /// objects with no installed metadata and the initial placement.
    pub fn coordinator_of(&self, hash: u64) -> usize {
        self.members[(hash % self.members.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn founding_covers_the_initial_sites() {
        let r = Roster::founding(3);
        assert_eq!(r.epoch, 0);
        assert_eq!(r.members, vec![0, 1, 2]);
        assert!(r.contains(2) && !r.contains(3));
        assert_eq!(r.leader(), 0);
    }

    #[test]
    fn join_and_leave_bump_the_epoch_and_keep_members_sorted() {
        let r = Roster::founding(3);
        let joined = r.with_joined(3).expect("new member");
        assert_eq!(joined.epoch, 1);
        assert_eq!(joined.members, vec![0, 1, 2, 3]);
        assert!(joined.with_joined(3).is_none(), "already a member");
        let left = joined.with_left(1).expect("member leaves");
        assert_eq!(left.epoch, 2);
        assert_eq!(left.members, vec![0, 2, 3]);
        assert!(left.with_left(9).is_none(), "not a member");
    }

    #[test]
    fn the_last_member_cannot_leave() {
        let r = Roster::lone(4);
        assert!(r.with_left(4).is_none());
        assert_eq!(r.leader(), 4);
    }

    #[test]
    fn coordinator_of_maps_hashes_onto_members() {
        let r = Roster {
            epoch: 3,
            members: vec![0, 2, 5],
        };
        assert_eq!(r.coordinator_of(0), 0);
        assert_eq!(r.coordinator_of(1), 2);
        assert_eq!(r.coordinator_of(2), 5);
        assert_eq!(r.coordinator_of(3), 0);
    }
}
