//! The general homeostasis protocol over an arbitrary set of `L`
//! transactions (Section 3.3 + Section 5).
//!
//! [`HomeostasisCluster`] owns one storage engine per site. During normal
//! execution a transaction runs entirely against its own site's engine —
//! reads of remote objects see the (possibly stale) snapshot installed at the
//! last synchronization, which is exactly the disconnected-execution model of
//! Section 3.2. Before committing, the site checks its local treaty on the
//! post-state; a violation aborts the transaction and triggers the cleanup
//! phase: synchronize, re-run the offending transaction everywhere, generate
//! new treaties, start a new round.
//!
//! The cluster records the committed transactions and their logs so that the
//! observational-equivalence oracle ([`crate::correctness`]) can replay every
//! round serially and compare outcomes (Theorem 3.8).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_lang::ast::Transaction;
use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;
use homeo_sim::Timer;
use homeo_store::Engine;

use crate::exec::{run_on_engine, ExecError};
use crate::model::{Loc, SiteId};
use crate::optimizer::OptimizerConfig;
use crate::program::ProgramSet;
use crate::treaty::TreatyTable;

/// The outcome of executing one transaction through the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnOutcome {
    /// Whether the transaction (eventually) committed.
    pub committed: bool,
    /// Whether it required inter-site communication (treaty violation).
    pub synchronized: bool,
    /// Number of global communication rounds incurred (0 in the common case,
    /// 2 for a treaty renegotiation: one to synchronize state, one to
    /// distribute the new treaties).
    pub comm_rounds: u32,
    /// Time spent in the treaty solver, in microseconds of real time.
    pub solver_micros: u64,
}

/// A committed transaction recorded for the correctness oracle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommittedRecord {
    /// The site the transaction ran on.
    pub site: SiteId,
    /// Index into the cluster's transaction list.
    pub txn_index: usize,
    /// The log it produced.
    pub log: Vec<i64>,
}

/// Statistics kept by the cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Transactions committed without synchronization.
    pub local_commits: u64,
    /// Treaty violations (and therefore protocol rounds beyond the first).
    pub violations: u64,
    /// Transactions aborted by local concurrency control.
    pub cc_aborts: u64,
}

/// The general homeostasis cluster.
pub struct HomeostasisCluster {
    /// The registered program set: parsed transactions, joint symbolic
    /// table, location map, and treaty table. Shared with the cluster
    /// workers, so the serial oracle and the distributed backends negotiate
    /// through literally the same code path.
    programs: ProgramSet,
    sites: Vec<Engine>,
    /// The globally agreed database at the start of the current round.
    round_start: Database,
    /// History of the current round (for the correctness oracle).
    history: Vec<CommittedRecord>,
    /// Elapsed-time source for the reported solver times.
    timer: Timer,
    /// Statistics.
    pub stats: ClusterStats,
}

impl HomeostasisCluster {
    /// Creates a cluster for a set of parameterless transactions.
    ///
    /// `loc` must map every object the transactions touch; each transaction
    /// is assumed to run on the site holding the objects it writes
    /// (Assumption 3.1 is checked).
    pub fn new(
        transactions: Vec<Transaction>,
        loc: Loc,
        sites: usize,
        initial: Database,
        optimizer: Option<OptimizerConfig>,
    ) -> Self {
        let programs = ProgramSet::from_transactions(transactions, loc, sites, optimizer);
        Self::from_programs(programs, initial)
    }

    /// Creates a cluster over an already-built [`ProgramSet`] (the shared
    /// registration form of the cluster backends).
    pub fn from_programs(programs: ProgramSet, initial: Database) -> Self {
        let engines: Vec<Engine> = (0..programs.sites())
            .map(|_| {
                let e = Engine::new();
                for (obj, value) in initial.iter() {
                    e.poke(obj.as_str(), value);
                }
                e
            })
            .collect();
        let mut cluster = HomeostasisCluster {
            programs,
            sites: engines,
            round_start: initial,
            history: Vec::new(),
            timer: Timer::Wall,
            stats: ClusterStats::default(),
        };
        cluster.negotiate_treaties();
        cluster
    }

    /// Replaces the elapsed-time source used for the reported solver times
    /// ([`Timer::Fixed`] makes seeded runs byte-for-byte reproducible).
    pub fn with_timer(mut self, timer: Timer) -> Self {
        self.timer = timer;
        self
    }

    /// The site a transaction runs on: the site holding its write set.
    pub fn home_site(&self, txn_index: usize) -> SiteId {
        self.programs
            .home_site(txn_index)
            .expect("transaction index out of range")
    }

    /// The number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The storage engine of one site.
    pub fn engine(&self, site: SiteId) -> &Engine {
        &self.sites[site]
    }

    /// The current treaty table.
    pub fn treaties(&self) -> &TreatyTable {
        self.programs.treaties()
    }

    /// The registered program set.
    pub fn programs(&self) -> &ProgramSet {
        &self.programs
    }

    /// The committed history of the current round.
    pub fn round_history(&self) -> &[CommittedRecord] {
        &self.history
    }

    /// The database the current round started from.
    pub fn round_start(&self) -> &Database {
        &self.round_start
    }

    /// The transaction list.
    pub fn transactions(&self) -> &[Transaction] {
        self.programs.transactions()
    }

    /// The authoritative global database: each site contributes its local
    /// objects.
    pub fn global_database(&self) -> Database {
        let mut db = Database::new();
        for (site, engine) in self.sites.iter().enumerate() {
            for (obj, value) in engine.snapshot() {
                let id = ObjId::new(obj);
                if self.programs.loc().site_of(&id) == site {
                    db.set(id, value);
                }
            }
        }
        db
    }

    /// The (possibly stale) view a given site currently has.
    pub fn site_view(&self, site: SiteId) -> Database {
        Database::from_pairs(self.sites[site].snapshot())
    }

    /// Executes a transaction through the protocol.
    pub fn execute(&mut self, txn_index: usize) -> Result<TxnOutcome, ExecError> {
        let site = self.home_site(txn_index);
        let txn = self.programs.transactions()[txn_index].clone();
        let engine = &self.sites[site];
        let result = run_on_engine(engine, &txn, &[])?;
        if !result.committed {
            self.stats.cc_aborts += 1;
            return Ok(TxnOutcome {
                committed: false,
                synchronized: false,
                comm_rounds: 0,
                solver_micros: 0,
            });
        }
        // Pre-commit check (performed here right after the engine commit;
        // the engine state is rolled back via compensating pokes when the
        // treaty is violated, which is equivalent to aborting before commit
        // since the protocol immediately re-runs the transaction after
        // synchronization).
        let view = self.site_view(site);
        if self.programs.local_holds(site, &view) {
            self.stats.local_commits += 1;
            self.history.push(CommittedRecord {
                site,
                txn_index,
                log: result.log,
            });
            return Ok(TxnOutcome {
                committed: true,
                synchronized: false,
                comm_rounds: 0,
                solver_micros: 0,
            });
        }

        // Treaty violation: undo the offending writes locally, then run the
        // cleanup phase.
        for obj in result.writes.keys() {
            let previous = if self.programs.loc().site_of(obj) == site {
                // Local objects: recover the pre-transaction value from the
                // round-start snapshot plus committed history (simplest: take
                // it from the authoritative pre-violation global database).
                self.global_database_excluding(site, obj)
            } else {
                self.site_view(site).get(obj)
            };
            self.sites[site].poke(obj.as_str(), previous);
        }
        self.stats.violations += 1;
        let solver_micros = self.cleanup(txn_index);
        self.stats.local_commits += 1;
        Ok(TxnOutcome {
            committed: true,
            synchronized: true,
            comm_rounds: 2,
            solver_micros,
        })
    }

    /// Recovers the committed value of a local object at `site` before the
    /// violating transaction wrote it: replay the round history for that
    /// object on top of the round-start state.
    fn global_database_excluding(&self, site: SiteId, obj: &ObjId) -> i64 {
        // The round history already reflects all committed writes; the
        // violating transaction's writes were staged on the engine only. The
        // committed value is whatever the engine held before — which equals
        // the value obtained by replaying committed transactions. Since the
        // engine has already been overwritten, recompute by serial replay.
        let mut db = self.round_start.clone();
        for record in &self.history {
            if record.site != site {
                continue;
            }
            let txn = &self.programs.transactions()[record.txn_index];
            // Replay against the site view semantics: local objects from db,
            // remote objects from the round-start snapshot (they have not
            // changed locally).
            if let Ok(out) = homeo_lang::Evaluator::eval(txn, &db, &[]) {
                db = out.database;
            }
        }
        db.get(obj)
    }

    /// Forces a synchronization outside the cleanup path: every site
    /// installs the authoritative global state and a new round begins with
    /// freshly negotiated treaties. Returns the solver time in microseconds.
    ///
    /// This is the `synchronize` surface of the runtime layer; the protocol
    /// itself only synchronizes through [`Self::execute`]'s cleanup phase.
    pub fn resynchronize(&mut self) -> u64 {
        let global = self.global_database();
        let snapshot: BTreeMap<String, i64> = global
            .iter()
            .map(|(obj, value)| (obj.as_str().to_string(), value))
            .collect();
        for engine in &self.sites {
            engine.install(snapshot.clone());
        }
        self.round_start = global;
        self.history.clear();
        self.negotiate_treaties()
    }

    /// The cleanup phase: synchronize, re-run the violating transaction at
    /// every site, and negotiate treaties for the next round. Returns the
    /// solver time in microseconds.
    fn cleanup(&mut self, violating_txn: usize) -> u64 {
        // 1. Synchronize: every site broadcasts its local objects.
        let global = self.global_database();
        for engine in &self.sites {
            let mut snapshot: BTreeMap<String, i64> = BTreeMap::new();
            for (obj, value) in global.iter() {
                snapshot.insert(obj.as_str().to_string(), value);
            }
            engine.install(snapshot);
        }
        // 2. Run the violating transaction at every site (deterministic, so
        //    every site reaches the same state); record its log once.
        let txn = self.programs.transactions()[violating_txn].clone();
        let mut recorded = false;
        for engine in self.sites.iter() {
            if let Ok(result) = run_on_engine(engine, &txn, &[]) {
                if !recorded && result.committed {
                    self.history.push(CommittedRecord {
                        site: self.home_site(violating_txn),
                        txn_index: violating_txn,
                        log: result.log.clone(),
                    });
                    recorded = true;
                }
            }
        }
        // 3. New round: the synchronized post-T' state is the new round start.
        self.round_start = self.global_database();
        self.history.clear();
        self.negotiate_treaties()
    }

    /// Treaty generation for the current round-start database, through the
    /// program set's shared deterministic negotiation path. Returns the
    /// solver time in microseconds.
    fn negotiate_treaties(&mut self) -> u64 {
        let db = self.round_start.clone();
        self.programs.negotiate(&db, self.timer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::programs;

    fn t1_t2_cluster(optimizer: Option<OptimizerConfig>) -> HomeostasisCluster {
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        HomeostasisCluster::new(vec![programs::t1(), programs::t2()], loc, 2, db, optimizer)
    }

    #[test]
    fn transactions_run_disconnected_until_a_violation() {
        let mut cluster = t1_t2_cluster(Some(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 3,
        }));
        assert_eq!(cluster.home_site(0), 0);
        assert_eq!(cluster.home_site(1), 1);
        let mut synced = 0;
        for _ in 0..6 {
            let o = cluster.execute(0).unwrap();
            assert!(o.committed);
            if o.synchronized {
                synced += 1;
            }
            let o = cluster.execute(1).unwrap();
            assert!(o.committed);
            if o.synchronized {
                synced += 1;
            }
        }
        // The treaty x + y ≥ 20 with (10, 13) leaves slack, so not every
        // transaction can require synchronization.
        assert!(synced < 12, "synced={synced}");
        assert!(cluster.stats.local_commits > 0);
    }

    #[test]
    fn global_state_matches_serial_execution() {
        // Run an alternating schedule through the protocol and compare the
        // authoritative global state with a serial execution of the same
        // transactions — Theorem 3.8 in executable form.
        let mut cluster = t1_t2_cluster(None);
        let schedule = [0usize, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0];
        let mut serial = Database::from_pairs([("x", 10), ("y", 13)]);
        for &t in &schedule {
            let out = cluster.execute(t).unwrap();
            assert!(out.committed);
            serial = homeo_lang::Evaluator::eval(&cluster.transactions()[t], &serial, &[])
                .unwrap()
                .database;
        }
        assert_eq!(cluster.global_database(), serial);
    }

    #[test]
    fn violations_trigger_synchronization_and_new_rounds() {
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
        // Start right at the treaty boundary so the first decrements violate.
        let db = Database::from_pairs([("x", 10), ("y", 10)]);
        let mut cluster =
            HomeostasisCluster::new(vec![programs::t1(), programs::t2()], loc, 2, db, None);
        let initial_round = cluster.treaties().round;
        let mut saw_sync = false;
        for _ in 0..10 {
            let o = cluster.execute(0).unwrap();
            if o.synchronized {
                saw_sync = true;
                assert_eq!(o.comm_rounds, 2);
            }
            cluster.execute(1).unwrap();
        }
        assert!(saw_sync);
        assert!(cluster.treaties().round > initial_round);
        assert!(cluster.stats.violations > 0);
    }
}
