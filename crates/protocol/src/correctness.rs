//! The observational-equivalence oracle (Theorem 3.8).
//!
//! Even though transactions are permitted to operate on inconsistent
//! (stale) data, an external observer must not be able to distinguish the
//! homeostasis execution from a serial execution of the same transactions on
//! consistent data: every transaction must produce the same log, and the
//! final database must be the same. This module replays a cluster's
//! committed history serially and performs exactly that comparison; the
//! integration and property tests run it after every kind of schedule.

use homeo_lang::database::Database;
use homeo_lang::eval::Evaluator;

use crate::round::HomeostasisCluster;

/// The result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// The protocol execution is observationally equivalent to the serial
    /// replay.
    Equivalent,
    /// The final databases differ (the listed objects disagree).
    DatabaseMismatch(Vec<String>),
    /// Some transaction's log differs from its serial counterpart.
    LogMismatch {
        /// Position in the committed history.
        index: usize,
        /// Log produced by the protocol.
        protocol_log: Vec<i64>,
        /// Log produced by the serial replay.
        serial_log: Vec<i64>,
    },
}

impl EquivalenceResult {
    /// True when equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent)
    }
}

/// Replays the cluster's current-round history serially, starting from the
/// round-start database, in the total order recorded by the protocol
/// (which respects every per-site order), and compares logs and the final
/// database with the cluster's authoritative global state.
pub fn verify_round(cluster: &HomeostasisCluster) -> EquivalenceResult {
    let mut db: Database = cluster.round_start().clone();
    for (index, record) in cluster.round_history().iter().enumerate() {
        let txn = &cluster.transactions()[record.txn_index];
        let out = match Evaluator::eval(txn, &db, &[]) {
            Ok(o) => o,
            Err(_) => {
                return EquivalenceResult::LogMismatch {
                    index,
                    protocol_log: record.log.clone(),
                    serial_log: Vec::new(),
                }
            }
        };
        if out.log != record.log {
            return EquivalenceResult::LogMismatch {
                index,
                protocol_log: record.log.clone(),
                serial_log: out.log,
            };
        }
        db = out.database;
    }
    let actual = cluster.global_database();
    if actual != db {
        let diff = actual
            .diff(&db)
            .into_iter()
            .map(|o| o.as_str().to_string())
            .collect();
        return EquivalenceResult::DatabaseMismatch(diff);
    }
    EquivalenceResult::Equivalent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Loc;
    use crate::optimizer::OptimizerConfig;
    use homeo_lang::programs;
    use homeo_sim::DetRng;

    fn cluster(optimizer: Option<OptimizerConfig>, x: i64, y: i64) -> HomeostasisCluster {
        HomeostasisCluster::new(
            vec![programs::t1(), programs::t2()],
            Loc::from_pairs([("x", 0usize), ("y", 1usize)]),
            2,
            Database::from_pairs([("x", x), ("y", y)]),
            optimizer,
        )
    }

    #[test]
    fn alternating_schedule_is_equivalent() {
        let mut c = cluster(None, 10, 13);
        for i in 0..20 {
            c.execute(i % 2).unwrap();
            assert!(verify_round(&c).is_equivalent(), "after step {i}");
        }
    }

    #[test]
    fn random_schedules_are_equivalent_with_and_without_the_optimizer() {
        for optimizer in [
            None,
            Some(OptimizerConfig {
                lookahead: 8,
                futures: 2,
                seed: 11,
            }),
        ] {
            let mut c = cluster(optimizer, 15, 2);
            let mut rng = DetRng::seed_from(99);
            for _ in 0..40 {
                let t = rng.index(2);
                c.execute(t).unwrap();
            }
            let result = verify_round(&c);
            assert!(result.is_equivalent(), "{result:?}");
        }
    }

    #[test]
    fn equivalence_holds_across_boundary_crossings() {
        // Start exactly at the x + y = 10 and 20 boundaries so both branch
        // changes are exercised.
        for (x, y) in [(5, 5), (10, 10), (0, 20), (19, 0)] {
            let mut c = cluster(None, x, y);
            for i in 0..30 {
                c.execute(i % 2).unwrap();
            }
            assert!(verify_round(&c).is_equivalent(), "start ({x},{y})");
        }
    }

    #[test]
    fn three_transaction_workload_with_shared_objects() {
        use homeo_lang::builder::*;
        // A third transaction on a third site reads x and y and writes z.
        let t3 = homeo_lang::Transaction::simple(
            "Observer",
            seq([
                assign("a", read("x")),
                assign("b", read("y")),
                ite(
                    var("a").add(var("b")).ge(num(15)),
                    write("z", num(1)),
                    write("z", num(0)),
                ),
                print(read("z")),
            ]),
        );
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize), ("z", 2usize)]);
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        let mut c =
            HomeostasisCluster::new(vec![programs::t1(), programs::t2(), t3], loc, 3, db, None);
        let mut rng = DetRng::seed_from(5);
        for _ in 0..45 {
            let t = rng.index(3);
            c.execute(t).unwrap();
            let result = verify_round(&c);
            assert!(result.is_equivalent(), "{result:?}");
        }
    }
}
