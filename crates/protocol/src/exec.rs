//! Executing `L` transactions against a site's storage engine.
//!
//! The symbolic-table rows computed offline are registered as stored
//! procedures (Section 5.1); at run time the site executes either the full
//! transaction or a partially evaluated row against its local
//! [`homeo_store::Engine`] inside an engine transaction, so that local
//! concurrency control (strict 2PL) and the WAL see every read and write.

use std::collections::BTreeMap;

use homeo_lang::ast::{AExp, BExp, Com, Transaction};
use homeo_lang::ids::{ObjId, ParamId, TempVar};
use homeo_store::{Engine, EngineError, TxnHandle};

/// The observable result of executing a transaction on an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// The values printed, in order.
    pub log: Vec<i64>,
    /// The objects written with their new values.
    pub writes: BTreeMap<ObjId, i64>,
    /// Whether the transaction committed (false: it was aborted because of a
    /// lock conflict).
    pub committed: bool,
}

/// Errors from engine-backed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The underlying engine rejected an operation.
    Engine(EngineError),
    /// A temporary variable or parameter was unbound.
    Unbound(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Engine(e) => write!(f, "engine error: {e}"),
            ExecError::Unbound(v) => write!(f, "unbound variable `{v}`"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Engine(e)
    }
}

struct ExecCtx<'a> {
    engine: &'a Engine,
    txn: &'a TxnHandle,
    temps: BTreeMap<TempVar, i64>,
    params: BTreeMap<ParamId, i64>,
    log: Vec<i64>,
    writes: BTreeMap<ObjId, i64>,
}

impl ExecCtx<'_> {
    fn aexp(&mut self, e: &AExp) -> Result<i64, ExecError> {
        Ok(match e {
            AExp::Const(n) => *n,
            AExp::Param(p) => *self
                .params
                .get(p)
                .ok_or_else(|| ExecError::Unbound(p.to_string()))?,
            AExp::Var(v) => *self
                .temps
                .get(v)
                .ok_or_else(|| ExecError::Unbound(v.to_string()))?,
            AExp::Read(x) => self.engine.read(self.txn, x.as_str())?,
            AExp::Add(a, b) => self.aexp(a)?.wrapping_add(self.aexp(b)?),
            AExp::Mul(a, b) => self.aexp(a)?.wrapping_mul(self.aexp(b)?),
            AExp::Neg(a) => self.aexp(a)?.wrapping_neg(),
        })
    }

    fn bexp(&mut self, b: &BExp) -> Result<bool, ExecError> {
        Ok(match b {
            BExp::True => true,
            BExp::False => false,
            BExp::Cmp(l, op, r) => op.eval(self.aexp(l)?, self.aexp(r)?),
            BExp::And(l, r) => self.bexp(l)? && self.bexp(r)?,
            BExp::Not(inner) => !self.bexp(inner)?,
        })
    }

    fn com(&mut self, c: &Com) -> Result<(), ExecError> {
        match c {
            Com::Skip => Ok(()),
            Com::Assign(v, e) => {
                let value = self.aexp(e)?;
                self.temps.insert(v.clone(), value);
                Ok(())
            }
            Com::Write(x, e) => {
                let value = self.aexp(e)?;
                self.engine.write(self.txn, x.as_str(), value)?;
                self.writes.insert(x.clone(), value);
                Ok(())
            }
            Com::Print(e) => {
                let value = self.aexp(e)?;
                self.log.push(value);
                Ok(())
            }
            Com::Seq(a, b) => {
                self.com(a)?;
                self.com(b)
            }
            Com::If(b, t, e) => {
                if self.bexp(b)? {
                    self.com(t)
                } else {
                    self.com(e)
                }
            }
        }
    }
}

/// Executes `txn` with positional `args` against `engine` inside a fresh
/// engine transaction. Lock conflicts abort the transaction and are reported
/// through `committed: false` in the result (the caller decides whether to
/// retry).
pub fn run_on_engine(
    engine: &Engine,
    txn: &Transaction,
    args: &[i64],
) -> Result<ExecResult, ExecError> {
    let mut handle = engine.begin();
    let params: BTreeMap<ParamId, i64> = txn
        .params
        .iter()
        .cloned()
        .zip(args.iter().copied())
        .collect();
    if params.len() != txn.params.len() || args.len() != txn.params.len() {
        engine.abort(&mut handle).ok();
        return Err(ExecError::Unbound(format!(
            "{} expects {} arguments, got {}",
            txn.name,
            txn.params.len(),
            args.len()
        )));
    }
    let mut ctx = ExecCtx {
        engine,
        txn: &handle,
        temps: BTreeMap::new(),
        params,
        log: Vec::new(),
        writes: BTreeMap::new(),
    };
    match ctx.com(&txn.body) {
        Ok(()) => {
            let log = std::mem::take(&mut ctx.log);
            let writes = std::mem::take(&mut ctx.writes);
            engine.commit(&mut handle)?;
            Ok(ExecResult {
                log,
                writes,
                committed: true,
            })
        }
        Err(ExecError::Engine(EngineError::WouldBlock { .. })) => {
            engine.abort(&mut handle)?;
            Ok(ExecResult {
                log: Vec::new(),
                writes: BTreeMap::new(),
                committed: false,
            })
        }
        Err(e) => {
            engine.abort(&mut handle).ok();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::programs;

    #[test]
    fn engine_execution_matches_pure_evaluation() {
        let engine = Engine::new();
        engine.poke("x", 10);
        engine.poke("y", 13);
        let txn = programs::t1();
        let result = run_on_engine(&engine, &txn, &[]).unwrap();
        assert!(result.committed);
        assert_eq!(engine.peek("x"), 9);
        assert_eq!(result.writes.get(&ObjId::new("x")), Some(&9));

        // Cross-check against the pure evaluator.
        let db = homeo_lang::Database::from_pairs([("x", 10), ("y", 13)]);
        let pure = homeo_lang::Evaluator::eval(&txn, &db, &[]).unwrap();
        assert_eq!(pure.database.get(&"x".into()), engine.peek("x"));
        assert_eq!(pure.log, result.log);
    }

    #[test]
    fn parameters_are_bound_positionally() {
        let engine = Engine::new();
        engine.poke("stock[5]", 3);
        let txn = programs::micro_order_for_item(5, 100);
        let r = run_on_engine(&engine, &txn, &[]).unwrap();
        assert!(r.committed);
        assert_eq!(engine.peek("stock[5]"), 2);
        // Wrong arity is an error, not a silent misbinding.
        let err = run_on_engine(&engine, &txn, &[1]).unwrap_err();
        assert!(matches!(err, ExecError::Unbound(_)));
    }

    #[test]
    fn lock_conflicts_surface_as_aborts() {
        let engine = Engine::new();
        engine.poke("x", 1);
        // Hold an exclusive lock on x with an external transaction.
        let blocker = engine.begin();
        engine.write(&blocker, "x", 99).unwrap();
        let txn = programs::remote_write_example();
        let result = run_on_engine(&engine, &txn, &[]).unwrap();
        assert!(!result.committed);
        // The blocked transaction left no trace.
        assert_eq!(engine.peek("x"), 1);
    }

    #[test]
    fn print_log_is_collected_in_order() {
        use homeo_lang::builder::*;
        let engine = Engine::new();
        let txn = homeo_lang::Transaction::simple(
            "logger",
            seq([print(num(1)), write("a", num(5)), print(read("a"))]),
        );
        let r = run_on_engine(&engine, &txn, &[]).unwrap();
        assert_eq!(r.log, vec![1, 5]);
    }
}
