//! The remote-write transformation (Appendix B).
//!
//! Assumption 3.1 requires every write of a transaction to be local to the
//! site the transaction runs on. Replicated workloads violate this: a write
//! to a replicated object is conceptually a write at every site. The
//! transformation introduces, for each replicated object `x` and each site
//! `i`, a fresh **delta object** `δx@i` local to site `i`, initialised to 0,
//! and rewrites transactions running at site `i` so that
//!
//! * `read(x)` becomes `read(x) + Σ_j read(δx@j)` — the "real" value, and
//! * `write(x = e)` becomes `write(δx@i = e - read(x) - Σ_{j≠i} read(δx@j))`,
//!
//! after which algebraic simplification removes most remote reads (e.g. a
//! decrement becomes a purely local decrement of the site's own delta).
//! During the protocol's cleanup/synchronization the deltas are folded back
//! into the base object and reset to 0.

use std::collections::BTreeSet;

use homeo_lang::ast::{AExp, BExp, Com, Transaction};
use homeo_lang::database::Database;
use homeo_lang::ids::ObjId;

use crate::model::{Loc, SiteId};

/// The delta object for replicated object `x` at `site`.
pub fn delta_obj(x: &ObjId, site: SiteId) -> ObjId {
    ObjId::delta(x, site)
}

/// Rewrites a transaction that reads/writes the replicated objects in
/// `replicated` so that it runs at `site` with purely local writes.
pub fn transform_for_site(
    txn: &Transaction,
    replicated: &BTreeSet<ObjId>,
    sites: usize,
    site: SiteId,
) -> Transaction {
    let body = transform_com(&txn.body, replicated, sites, site);
    Transaction::new(format!("{}@{site}", txn.name), txn.params.clone(), body)
}

/// The logical read expression for a replicated object: base plus all deltas.
pub fn logical_read(x: &ObjId, sites: usize) -> AExp {
    let mut e = AExp::Read(x.clone());
    for j in 0..sites {
        e = e.add(AExp::Read(delta_obj(x, j)));
    }
    e
}

fn transform_aexp(e: &AExp, replicated: &BTreeSet<ObjId>, sites: usize) -> AExp {
    match e {
        AExp::Read(x) if replicated.contains(x) => logical_read(x, sites),
        AExp::Const(_) | AExp::Param(_) | AExp::Var(_) | AExp::Read(_) => e.clone(),
        AExp::Add(a, b) => AExp::Add(
            Box::new(transform_aexp(a, replicated, sites)),
            Box::new(transform_aexp(b, replicated, sites)),
        ),
        AExp::Mul(a, b) => AExp::Mul(
            Box::new(transform_aexp(a, replicated, sites)),
            Box::new(transform_aexp(b, replicated, sites)),
        ),
        AExp::Neg(a) => AExp::Neg(Box::new(transform_aexp(a, replicated, sites))),
    }
}

fn transform_bexp(b: &BExp, replicated: &BTreeSet<ObjId>, sites: usize) -> BExp {
    match b {
        BExp::True | BExp::False => b.clone(),
        BExp::Cmp(l, op, r) => BExp::Cmp(
            Box::new(transform_aexp(l, replicated, sites)),
            *op,
            Box::new(transform_aexp(r, replicated, sites)),
        ),
        BExp::And(l, r) => BExp::And(
            Box::new(transform_bexp(l, replicated, sites)),
            Box::new(transform_bexp(r, replicated, sites)),
        ),
        BExp::Not(inner) => BExp::Not(Box::new(transform_bexp(inner, replicated, sites))),
    }
}

fn transform_com(c: &Com, replicated: &BTreeSet<ObjId>, sites: usize, site: SiteId) -> Com {
    match c {
        Com::Skip => Com::Skip,
        Com::Assign(v, e) => Com::Assign(v.clone(), transform_aexp(e, replicated, sites)),
        Com::Print(e) => Com::Print(transform_aexp(e, replicated, sites)),
        Com::Seq(a, b) => Com::Seq(
            Box::new(transform_com(a, replicated, sites, site)),
            Box::new(transform_com(b, replicated, sites, site)),
        ),
        Com::If(b, t, e) => Com::If(
            transform_bexp(b, replicated, sites),
            Box::new(transform_com(t, replicated, sites, site)),
            Box::new(transform_com(e, replicated, sites, site)),
        ),
        Com::Write(x, e) if replicated.contains(x) => {
            // write(x = e)  ⇒  write(δx@site = e' - read(x) - Σ_{j≠site} δx@j)
            // where e' is the transformed value expression.
            let value = transform_aexp(e, replicated, sites);
            let mut subtract = AExp::Read(x.clone());
            for j in 0..sites {
                if j != site {
                    subtract = subtract.add(AExp::Read(delta_obj(x, j)));
                }
            }
            Com::Write(delta_obj(x, site), value.sub(subtract))
        }
        Com::Write(x, e) => Com::Write(x.clone(), transform_aexp(e, replicated, sites)),
    }
}

/// Builds the location map for a replicated deployment: every base object is
/// assigned to site 0 (its value only changes during synchronization, when
/// all sites agree), and each delta object is local to its site.
pub fn replicated_loc(replicated: &BTreeSet<ObjId>, sites: usize) -> Loc {
    let mut loc = Loc::new().with_default_site(0);
    for x in replicated {
        loc.assign(x.clone(), 0);
        for j in 0..sites {
            loc.assign(delta_obj(x, j), j);
        }
    }
    loc
}

/// Folds all deltas of the replicated objects back into the base objects and
/// resets the deltas to 0 — the state change performed by the cleanup
/// phase's synchronization.
pub fn fold_deltas(db: &mut Database, replicated: &BTreeSet<ObjId>, sites: usize) {
    for x in replicated {
        let mut total = db.get(x);
        for j in 0..sites {
            let d = delta_obj(x, j);
            total += db.get(&d);
            db.set(d, 0);
        }
        db.set(x.clone(), total);
    }
}

/// The logical (replication-aware) value of an object in a database that
/// stores base + deltas.
pub fn logical_value(db: &Database, x: &ObjId, sites: usize) -> i64 {
    let mut total = db.get(x);
    for j in 0..sites {
        total += db.get(&delta_obj(x, j));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::eval::Evaluator;
    use homeo_lang::programs;

    fn replicated_x() -> BTreeSet<ObjId> {
        BTreeSet::from([ObjId::new("x")])
    }

    #[test]
    fn figure_23_transformation_behaviour() {
        // Original: decrement x when positive, else reset to 10.
        // Transformed for site 1 of 2: writes only δx@1.
        let txn = programs::remote_write_example();
        let transformed = transform_for_site(&txn, &replicated_x(), 2, 1);
        // All writes are now local delta objects.
        let writes: Vec<String> = transformed
            .write_set()
            .iter()
            .map(|o| o.to_string())
            .collect();
        assert_eq!(writes, vec!["δx@1"]);

        // Behaviour: with x = 3 (all deltas 0), the site decrements its delta.
        let db = Database::from_pairs([("x", 3)]);
        let out = Evaluator::eval(&transformed, &db, &[]).unwrap();
        assert_eq!(out.database.get(&delta_obj(&"x".into(), 1)), -1);
        assert_eq!(logical_value(&out.database, &"x".into(), 2), 2);

        // With the logical value at 0 the refill path sets it to 10.
        let db = Database::from_pairs([("x", 2), ("δx@0", -1), ("δx@1", -1)]);
        let out = Evaluator::eval(&transformed, &db, &[]).unwrap();
        assert_eq!(logical_value(&out.database, &"x".into(), 2), 10);
    }

    #[test]
    fn transformed_transactions_satisfy_assumption_3_1() {
        let txn = programs::remote_write_example();
        let loc = replicated_loc(&replicated_x(), 3);
        for site in 0..3 {
            let t = transform_for_site(&txn, &replicated_x(), 3, site);
            assert!(loc.all_writes_local(&t, site), "site {site}");
        }
    }

    #[test]
    fn concurrent_site_decrements_compose_through_deltas() {
        // Two sites each decrement once without seeing each other's delta;
        // folding the deltas gives the serial result.
        let txn = programs::remote_write_example();
        let t0 = transform_for_site(&txn, &replicated_x(), 2, 0);
        let t1 = transform_for_site(&txn, &replicated_x(), 2, 1);
        let mut db = Database::from_pairs([("x", 10)]);
        db = Evaluator::eval(&t0, &db, &[]).unwrap().database;
        db = Evaluator::eval(&t1, &db, &[]).unwrap().database;
        assert_eq!(logical_value(&db, &"x".into(), 2), 8);
        fold_deltas(&mut db, &replicated_x(), 2);
        assert_eq!(db.get(&"x".into()), 8);
        assert_eq!(db.get(&delta_obj(&"x".into(), 0)), 0);
        assert_eq!(db.get(&delta_obj(&"x".into(), 1)), 0);
    }

    #[test]
    fn non_replicated_objects_pass_through() {
        let txn = programs::t1(); // writes x, reads x and y
        let replicated = BTreeSet::from([ObjId::new("y")]);
        let t = transform_for_site(&txn, &replicated, 2, 0);
        // x untouched by the transform, y reads expanded.
        assert!(t.write_set().contains(&ObjId::new("x")));
        assert!(t.read_set().contains(&ObjId::new("δy@0")));
        assert!(t.read_set().contains(&ObjId::new("δy@1")));
    }

    #[test]
    fn replicated_loc_places_deltas_at_their_sites() {
        let loc = replicated_loc(&replicated_x(), 2);
        assert_eq!(loc.site_of(&ObjId::new("x")), 0);
        assert_eq!(loc.site_of(&delta_obj(&"x".into(), 1)), 1);
        assert_eq!(loc.site_of(&ObjId::new("unrelated")), 0);
    }
}
