//! Generators for every table and figure of the paper's evaluation.
//!
//! Each generator sweeps the same parameter the paper sweeps and reports the
//! same series (modes / percentiles / ratios). Absolute values differ from
//! the paper — the substrate is a simulator, not the authors' EC2 testbed —
//! but the shapes (who wins, by what factor, where the crossovers are) are
//! the reproduction target; see `EXPERIMENTS.md`.

use homeo_sim::TABLE1_RTT_MS;
use homeo_workloads::datacenters::TABLE1;
use homeo_workloads::micro::{MicroConfig, Mode};
use homeo_workloads::tpcc::TpccConfig;

use crate::experiments::{micro_experiment, tpcc_experiment, LATENCY_PERCENTILES};
use crate::report::Figure;

/// How much simulated time / parameter coverage to spend per figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Scaled-down sweep for quick runs and CI (a few seconds per figure).
    Quick,
    /// Full sweep closer to the paper's configuration.
    Full,
}

impl Effort {
    fn micro_items(&self) -> usize {
        // Scaled so that the per-item load (touches per round relative to the
        // REFILL headroom) matches the paper's 300 s measurement windows,
        // keeping the synchronization ratio in the same few-percent regime.
        match self {
            Effort::Quick => 300,
            Effort::Full => 2_000,
        }
    }

    fn micro_measure_ms(&self) -> u64 {
        match self {
            Effort::Quick => 3_000,
            Effort::Full => 30_000,
        }
    }

    fn tpcc_measure_ms(&self) -> u64 {
        match self {
            Effort::Quick => 3_000,
            Effort::Full => 20_000,
        }
    }

    fn tpcc_scale(&self) -> (usize, usize, usize, usize) {
        // (warehouses, districts, items/district, customers)
        match self {
            Effort::Quick => (2, 2, 100, 500),
            Effort::Full => (10, 10, 1000, 10_000),
        }
    }
}

fn micro_config(effort: Effort) -> MicroConfig {
    MicroConfig {
        num_items: effort.micro_items(),
        lookahead: 10,
        futures: 2,
        ..MicroConfig::default()
    }
}

fn tpcc_config(effort: Effort) -> TpccConfig {
    let (w, d, i, c) = effort.tpcc_scale();
    TpccConfig {
        warehouses: w,
        districts_per_warehouse: d,
        items_per_district: i,
        customers: c,
        lookahead: 8,
        futures: 2,
        ..TpccConfig::default()
    }
}

/// All reproducible ids, in paper order.
pub fn all_figure_ids() -> Vec<&'static str> {
    vec![
        "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
        "fig19", "fig20", "fig21", "fig22", "fig24", "fig25", "fig26", "fig27", "fig28", "fig29",
    ]
}

/// Generates one figure or cluster scenario by id.
///
/// # Panics
/// Panics on an unknown id (see [`crate::all_ids`]) and on any violation a
/// cluster scenario detects while verifying itself.
pub fn generate(id: &str, effort: Effort) -> Figure {
    // `scenario-join-leave` lives with the cluster fault scenarios (it
    // drives all three cluster backends), not the general-path programs.
    if id.starts_with("cluster-") || id == "scenario-join-leave" {
        return crate::cluster::scenario(id);
    }
    if id.starts_with("scenario-") {
        return crate::scenarios::scenario(id);
    }
    if id == "bench" {
        return crate::throughput::suite(effort);
    }
    if id == "sync" {
        return crate::sync::suite(effort);
    }
    if id == "scaling" {
        return crate::scaling::sweep(&crate::scaling::default_site_counts(effort), effort);
    }
    match id {
        "table1" => table1(),
        "fig10" => fig10(effort),
        "fig11" => fig11(effort),
        "fig12" => fig12(effort),
        "fig13" => fig13(effort),
        "fig14" => fig14(effort),
        "fig15" => fig15(effort),
        "fig16" => fig16(effort),
        "fig17" => fig17(effort),
        "fig18" => fig18(effort),
        "fig19" => fig19(effort),
        "fig20" => fig20(effort),
        "fig21" => fig21(effort),
        "fig22" => fig22(effort),
        "fig24" => fig24(effort),
        "fig25" => fig25(effort),
        "fig26" => fig26(effort),
        "fig27" => fig27(effort),
        "fig28" => fig28(effort),
        "fig29" => fig29(effort),
        other => panic!("unknown figure id `{other}`"),
    }
}

/// Table 1: average RTTs between the five datacenters.
pub fn table1() -> Figure {
    let mut columns = vec!["from/to".to_string()];
    columns.extend(TABLE1.iter().map(|d| d.label().to_string()));
    let mut fig = Figure::new(
        "table1",
        "Average RTTs between Amazon datacenters (ms)",
        columns,
    );
    for (i, dc) in TABLE1.iter().enumerate() {
        fig.push_row(
            dc.label(),
            TABLE1_RTT_MS[i].iter().map(|v| *v as f64).collect(),
        );
    }
    fig
}

fn latency_profile_figure(id: &str, title: &str, series: Vec<(String, Vec<(f64, f64)>)>) -> Figure {
    let mut columns = vec!["percentile".to_string()];
    columns.extend(series.iter().map(|(label, _)| label.clone()));
    let mut fig = Figure::new(id, title, columns);
    for (i, p) in LATENCY_PERCENTILES.iter().enumerate() {
        let values = series.iter().map(|(_, profile)| profile[i].1).collect();
        fig.push_row(format!("{p}"), values);
    }
    fig
}

/// Figure 10: latency by percentile for RTT ∈ {50, 200} ms.
pub fn fig10(effort: Effort) -> Figure {
    let mut series = Vec::new();
    for mode in Mode::all() {
        for rtt in [50u64, 200] {
            let config = MicroConfig {
                rtt_ms: rtt,
                ..micro_config(effort)
            };
            let point = micro_experiment(&config, mode, 16, effort.micro_measure_ms());
            series.push((format!("{}-t{rtt}", mode.label()), point.latency_profile_ms));
        }
    }
    latency_profile_figure(
        "fig10",
        "Latency (ms) by percentile vs network RTT (Nr=2, Nc=16)",
        series,
    )
}

/// Figure 11: throughput per replica vs RTT.
pub fn fig11(effort: Effort) -> Figure {
    let mut fig = Figure::new(
        "fig11",
        "Throughput (txn/s per replica) vs network RTT (Nr=2, Nc=16)",
        vec![
            "rtt_ms".into(),
            "homeo".into(),
            "opt".into(),
            "2pc".into(),
            "local".into(),
        ],
    );
    for rtt in [50u64, 100, 150, 200] {
        let config = MicroConfig {
            rtt_ms: rtt,
            ..micro_config(effort)
        };
        let values: Vec<f64> = Mode::all()
            .iter()
            .map(|mode| {
                micro_experiment(&config, *mode, 16, effort.micro_measure_ms())
                    .throughput_per_replica
            })
            .collect();
        fig.push_row(format!("{rtt}"), values);
    }
    fig
}

/// Figure 12: synchronization ratio vs RTT (homeo vs opt).
pub fn fig12(effort: Effort) -> Figure {
    let mut fig = Figure::new(
        "fig12",
        "Synchronization ratio (%) vs network RTT (Nr=2, Nc=16)",
        vec!["rtt_ms".into(), "homeo".into(), "opt".into()],
    );
    for rtt in [50u64, 100, 150, 200] {
        let config = MicroConfig {
            rtt_ms: rtt,
            ..micro_config(effort)
        };
        let h = micro_experiment(&config, Mode::Homeostasis, 16, effort.micro_measure_ms());
        let o = micro_experiment(&config, Mode::Opt, 16, effort.micro_measure_ms());
        fig.push_row(
            format!("{rtt}"),
            vec![h.sync_ratio_percent, o.sync_ratio_percent],
        );
    }
    fig
}

/// Figure 13: latency by percentile vs number of replicas ∈ {2, 5}.
pub fn fig13(effort: Effort) -> Figure {
    let mut series = Vec::new();
    for mode in Mode::all() {
        for replicas in [2usize, 5] {
            let config = MicroConfig {
                replicas,
                ..micro_config(effort)
            };
            let point = micro_experiment(&config, mode, 16, effort.micro_measure_ms());
            series.push((
                format!("{}-r{replicas}", mode.label()),
                point.latency_profile_ms,
            ));
        }
    }
    latency_profile_figure(
        "fig13",
        "Latency (ms) by percentile vs number of replicas (RTT=100ms, Nc=16)",
        series,
    )
}

/// Figure 14: throughput per replica vs number of replicas.
pub fn fig14(effort: Effort) -> Figure {
    let mut fig = Figure::new(
        "fig14",
        "Throughput (txn/s per replica) vs number of replicas (RTT=100ms, Nc=16)",
        vec![
            "replicas".into(),
            "homeo".into(),
            "opt".into(),
            "2pc".into(),
            "local".into(),
        ],
    );
    for replicas in 2usize..=5 {
        let config = MicroConfig {
            replicas,
            ..micro_config(effort)
        };
        let values: Vec<f64> = Mode::all()
            .iter()
            .map(|mode| {
                micro_experiment(&config, *mode, 16, effort.micro_measure_ms())
                    .throughput_per_replica
            })
            .collect();
        fig.push_row(format!("{replicas}"), values);
    }
    fig
}

/// Figure 15: synchronization ratio vs number of replicas.
pub fn fig15(effort: Effort) -> Figure {
    let mut fig = Figure::new(
        "fig15",
        "Synchronization ratio (%) vs number of replicas (RTT=100ms, Nc=16)",
        vec!["replicas".into(), "homeo".into(), "opt".into()],
    );
    for replicas in 2usize..=5 {
        let config = MicroConfig {
            replicas,
            ..micro_config(effort)
        };
        let h = micro_experiment(&config, Mode::Homeostasis, 16, effort.micro_measure_ms());
        let o = micro_experiment(&config, Mode::Opt, 16, effort.micro_measure_ms());
        fig.push_row(
            format!("{replicas}"),
            vec![h.sync_ratio_percent, o.sync_ratio_percent],
        );
    }
    fig
}

/// Figure 16: latency by percentile vs number of clients ∈ {1, 32}.
pub fn fig16(effort: Effort) -> Figure {
    let mut series = Vec::new();
    for mode in Mode::all() {
        for clients in [1usize, 32] {
            let config = micro_config(effort);
            let point = micro_experiment(&config, mode, clients, effort.micro_measure_ms());
            series.push((
                format!("{}-c{clients}", mode.label()),
                point.latency_profile_ms,
            ));
        }
    }
    latency_profile_figure(
        "fig16",
        "Latency (ms) by percentile vs clients per replica (Nr=2, RTT=100ms)",
        series,
    )
}

/// Figure 17: throughput per replica vs number of clients per replica.
pub fn fig17(effort: Effort) -> Figure {
    let clients_sweep: &[usize] = match effort {
        Effort::Quick => &[1, 4, 16, 64],
        Effort::Full => &[1, 2, 4, 8, 16, 32, 64, 128],
    };
    let mut fig = Figure::new(
        "fig17",
        "Throughput (txn/s per replica) vs clients per replica (Nr=2, RTT=100ms)",
        vec![
            "clients".into(),
            "homeo".into(),
            "opt".into(),
            "2pc".into(),
            "local".into(),
        ],
    );
    for &clients in clients_sweep {
        let config = micro_config(effort);
        let values: Vec<f64> = Mode::all()
            .iter()
            .map(|mode| {
                micro_experiment(&config, *mode, clients, effort.micro_measure_ms())
                    .throughput_per_replica
            })
            .collect();
        fig.push_row(format!("{clients}"), values);
    }
    fig
}

/// Figure 18: synchronization ratio vs number of clients per replica.
pub fn fig18(effort: Effort) -> Figure {
    let clients_sweep: &[usize] = match effort {
        Effort::Quick => &[1, 4, 16, 64],
        Effort::Full => &[1, 2, 4, 8, 16, 32, 64, 128],
    };
    let mut fig = Figure::new(
        "fig18",
        "Synchronization ratio (%) vs clients per replica (Nr=2, RTT=100ms)",
        vec!["clients".into(), "homeo".into(), "opt".into()],
    );
    for &clients in clients_sweep {
        let config = micro_config(effort);
        let h = micro_experiment(
            &config,
            Mode::Homeostasis,
            clients,
            effort.micro_measure_ms(),
        );
        let o = micro_experiment(&config, Mode::Opt, clients, effort.micro_measure_ms());
        fig.push_row(
            format!("{clients}"),
            vec![h.sync_ratio_percent, o.sync_ratio_percent],
        );
    }
    fig
}

/// Figure 19: TPC-C New Order latency by percentile vs hotness H ∈ {1, 50}.
pub fn fig19(effort: Effort) -> Figure {
    let mut series = Vec::new();
    for mode in [Mode::Opt, Mode::Homeostasis, Mode::TwoPc] {
        for h in [1u32, 50] {
            let config = TpccConfig {
                hotness: h,
                ..tpcc_config(effort)
            };
            let point = tpcc_experiment(&config, mode, 8, effort.tpcc_measure_ms());
            series.push((format!("{}-h{h}", mode.label()), point.new_order_latency_ms));
        }
    }
    latency_profile_figure(
        "fig19",
        "TPC-C New Order latency (ms) by percentile vs workload skew H (Nr=2, Nc=8)",
        series,
    )
}

/// Figure 20: TPC-C New Order throughput vs hotness H.
pub fn fig20(effort: Effort) -> Figure {
    let sweep: &[u32] = match effort {
        Effort::Quick => &[5, 20, 50],
        Effort::Full => &[5, 10, 15, 20, 25, 30, 35, 40, 45, 50],
    };
    let mut fig = Figure::new(
        "fig20",
        "TPC-C New Order throughput (txn/s per replica) vs hotness H (Nr=2, Nc=8)",
        vec!["hotness".into(), "opt".into(), "homeo".into(), "2pc".into()],
    );
    for &h in sweep {
        let config = TpccConfig {
            hotness: h,
            ..tpcc_config(effort)
        };
        let values: Vec<f64> = [Mode::Opt, Mode::Homeostasis, Mode::TwoPc]
            .iter()
            .map(|mode| {
                tpcc_experiment(&config, *mode, 8, effort.tpcc_measure_ms())
                    .new_order_throughput_per_replica
            })
            .collect();
        fig.push_row(format!("{h}"), values);
    }
    fig
}

/// Figure 21: TPC-C New Order latency by percentile vs replicas ∈ {2, 5}.
pub fn fig21(effort: Effort) -> Figure {
    let mut series = Vec::new();
    for mode in [Mode::Homeostasis, Mode::TwoPc] {
        for replicas in [2usize, 5] {
            let config = TpccConfig {
                replicas,
                ..tpcc_config(effort)
            };
            let point = tpcc_experiment(&config, mode, 8, effort.tpcc_measure_ms());
            series.push((
                format!("{}-r{replicas}", mode.label()),
                point.new_order_latency_ms,
            ));
        }
    }
    latency_profile_figure(
        "fig21",
        "TPC-C New Order latency (ms) by percentile vs number of replicas (Nc=8, H=10)",
        series,
    )
}

/// Figure 22: TPC-C New Order throughput vs number of replicas (including
/// the paper's conservative 2PC ×8 estimate).
pub fn fig22(effort: Effort) -> Figure {
    let mut fig = Figure::new(
        "fig22",
        "TPC-C New Order throughput (txn/s per replica) vs number of replicas (H=10)",
        vec![
            "replicas".into(),
            "homeo-c8".into(),
            "2pc-c1".into(),
            "2pc-c8(est)".into(),
        ],
    );
    for replicas in 2usize..=5 {
        let config = TpccConfig {
            replicas,
            ..tpcc_config(effort)
        };
        let homeo = tpcc_experiment(&config, Mode::Homeostasis, 8, effort.tpcc_measure_ms())
            .new_order_throughput_per_replica;
        let twopc_c1 = tpcc_experiment(&config, Mode::TwoPc, 1, effort.tpcc_measure_ms())
            .new_order_throughput_per_replica;
        fig.push_row(format!("{replicas}"), vec![homeo, twopc_c1, twopc_c1 * 8.0]);
    }
    fig
}

/// Figure 24: latency breakdown (local / solver / communication) of
/// treaty-violating transactions vs the lookahead interval L.
pub fn fig24(effort: Effort) -> Figure {
    let sweep: &[usize] = match effort {
        Effort::Quick => &[10, 40, 80],
        Effort::Full => &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
    };
    let mut fig = Figure::new(
        "fig24",
        "Latency breakdown (ms) of synchronizing transactions vs lookahead L (RTT=100ms, Nc=16, REFILL=100)",
        vec!["lookahead".into(), "local".into(), "solver".into(), "comm".into()],
    );
    for &lookahead in sweep {
        let config = MicroConfig {
            lookahead,
            ..micro_config(effort)
        };
        let point = micro_experiment(&config, Mode::Homeostasis, 16, effort.micro_measure_ms());
        let (local, solver, comm) = point.sync_breakdown_ms;
        fig.push_row(format!("{lookahead}"), vec![local, solver, comm]);
    }
    fig
}

/// Figure 25: throughput vs lookahead L for REFILL ∈ {10, 100, 1000}.
pub fn fig25(effort: Effort) -> Figure {
    let sweep: &[usize] = match effort {
        Effort::Quick => &[10, 40, 80],
        Effort::Full => &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
    };
    let mut fig = Figure::new(
        "fig25",
        "Throughput (txn/s per replica) vs lookahead L for different REFILL values (RTT=100ms, Nc=16)",
        vec!["lookahead".into(), "rf10".into(), "rf100".into(), "rf1000".into()],
    );
    for &lookahead in sweep {
        let values: Vec<f64> = [10i64, 100, 1000]
            .iter()
            .map(|&refill| {
                let config = MicroConfig {
                    lookahead,
                    refill,
                    ..micro_config(effort)
                };
                micro_experiment(&config, Mode::Homeostasis, 16, effort.micro_measure_ms())
                    .throughput_per_replica
            })
            .collect();
        fig.push_row(format!("{lookahead}"), values);
    }
    fig
}

/// Figure 26: synchronization ratio vs lookahead L for REFILL ∈ {10, 100, 1000}.
pub fn fig26(effort: Effort) -> Figure {
    let sweep: &[usize] = match effort {
        Effort::Quick => &[10, 40, 80],
        Effort::Full => &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
    };
    let mut fig = Figure::new(
        "fig26",
        "Synchronization ratio (%) vs lookahead L for different REFILL values (Nr=2, RTT=100ms, Nc=16)",
        vec!["lookahead".into(), "rf10".into(), "rf100".into(), "rf1000".into()],
    );
    for &lookahead in sweep {
        let values: Vec<f64> = [10i64, 100, 1000]
            .iter()
            .map(|&refill| {
                let config = MicroConfig {
                    lookahead,
                    refill,
                    ..micro_config(effort)
                };
                micro_experiment(&config, Mode::Homeostasis, 16, effort.micro_measure_ms())
                    .sync_ratio_percent
            })
            .collect();
        fig.push_row(format!("{lookahead}"), values);
    }
    fig
}

/// Figure 27: latency CDF vs number of items accessed per transaction.
pub fn fig27(effort: Effort) -> Figure {
    let cdf_points = [1.0, 2.0, 4.0, 8.0, 16.0, 50.0, 100.0, 200.0, 400.0, 1000.0];
    let mut columns = vec!["latency_ms".to_string()];
    for n in 1..=5usize {
        columns.push(format!("homeo-i{n}"));
    }
    columns.push("2pc-i1".into());
    columns.push("2pc-i5".into());
    let mut fig = Figure::new(
        "fig27",
        "Latency CDF (cumulative probability) vs items per transaction (RTT=100ms, REFILL=100, Nc=20, L=20)",
        columns,
    );
    let mut curves: Vec<Vec<(f64, f64)>> = Vec::new();
    for n in 1..=5usize {
        let config = MicroConfig {
            items_per_txn: n,
            lookahead: 20,
            ..micro_config(effort)
        };
        curves.push(
            micro_experiment(&config, Mode::Homeostasis, 20, effort.micro_measure_ms()).latency_cdf,
        );
    }
    for n in [1usize, 5] {
        let config = MicroConfig {
            items_per_txn: n,
            ..micro_config(effort)
        };
        curves.push(
            micro_experiment(&config, Mode::TwoPc, 20, effort.micro_measure_ms()).latency_cdf,
        );
    }
    for (i, point) in cdf_points.iter().enumerate() {
        let values = curves.iter().map(|curve| curve[i].1).collect();
        fig.push_row(format!("{point}"), values);
    }
    fig
}

/// Figure 28: distributed TPC-C — overall system throughput vs hotness H.
pub fn fig28(effort: Effort) -> Figure {
    let sweep: &[u32] = match effort {
        Effort::Quick => &[1, 20, 50],
        Effort::Full => &[1, 10, 20, 30, 40, 50],
    };
    let mut fig = Figure::new(
        "fig28",
        "Distributed TPC-C: overall throughput (txn/s) vs hotness H (10 warehouses x 2 datacenters, mix 49/49/2)",
        vec!["hotness".into(), "homeo".into(), "opt".into(), "2pc(est)".into()],
    );
    for &h in sweep {
        let config = TpccConfig {
            hotness: h,
            mix: (49, 49, 2),
            ..tpcc_config(effort)
        };
        let homeo = tpcc_experiment(&config, Mode::Homeostasis, 8, effort.tpcc_measure_ms());
        let opt = tpcc_experiment(&config, Mode::Opt, 8, effort.tpcc_measure_ms());
        let twopc = tpcc_experiment(&config, Mode::TwoPc, 1, effort.tpcc_measure_ms());
        fig.push_row(
            format!("{h}"),
            vec![
                homeo.total_throughput,
                opt.total_throughput,
                twopc.total_throughput * 8.0,
            ],
        );
    }
    fig
}

/// Figure 29: distributed TPC-C — synchronization ratio vs hotness H.
pub fn fig29(effort: Effort) -> Figure {
    let sweep: &[u32] = match effort {
        Effort::Quick => &[1, 20, 50],
        Effort::Full => &[1, 10, 20, 30, 40, 50],
    };
    let mut fig = Figure::new(
        "fig29",
        "Distributed TPC-C: synchronization ratio (%) vs hotness H (mix 49/49/2)",
        vec!["hotness".into(), "homeo".into(), "opt".into()],
    );
    for &h in sweep {
        let config = TpccConfig {
            hotness: h,
            mix: (49, 49, 2),
            ..tpcc_config(effort)
        };
        let homeo = tpcc_experiment(&config, Mode::Homeostasis, 8, effort.tpcc_measure_ms());
        let opt = tpcc_experiment(&config, Mode::Opt, 8, effort.tpcc_measure_ms());
        fig.push_row(
            format!("{h}"),
            vec![
                homeo.new_order_sync_ratio_percent,
                opt.new_order_sync_ratio_percent,
            ],
        );
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_values() {
        let fig = table1();
        assert_eq!(fig.rows.len(), 5);
        assert_eq!(fig.rows[0].1[1], 64.0); // UE-UW
        assert_eq!(fig.rows[3].1[4], 372.0); // SG-BR
    }

    #[test]
    fn every_figure_id_is_known() {
        for id in all_figure_ids() {
            // Only table1 is cheap enough to fully generate here; the others
            // are covered by the criterion benches and the reproduce binary.
            if id == "table1" {
                let fig = generate(id, Effort::Quick);
                assert_eq!(fig.id, "table1");
            }
        }
        assert_eq!(all_figure_ids().len(), 20);
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_ids_panic() {
        let _ = generate("fig99", Effort::Quick);
    }

    #[test]
    fn fig12_shape_homeo_close_to_opt() {
        // Shape check on the cheapest interesting figure: both homeo and opt
        // synchronize rarely, and their ratios are within a few points.
        let fig = {
            let mut config = micro_config(Effort::Quick);
            config.num_items = 300;
            let h = micro_experiment(&config, Mode::Homeostasis, 8, 1_500);
            let o = micro_experiment(&config, Mode::Opt, 8, 1_500);
            (h.sync_ratio_percent, o.sync_ratio_percent)
        };
        assert!(fig.0 < 25.0, "homeo sync ratio {}", fig.0);
        assert!(fig.1 < 25.0, "opt sync ratio {}", fig.1);
    }
}
