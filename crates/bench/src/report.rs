//! Figure/table representation and rendering.

use serde::{Deserialize, Serialize};

use crate::json::Json;

/// One reproduced figure or table: a labelled grid of numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier matching the paper ("table1", "fig10", ..., "fig29").
    pub id: String,
    /// Human-readable title (axes / workload).
    pub title: String,
    /// Column headers; the first column is the x-axis / row label.
    pub columns: Vec<String>,
    /// Rows of values; `rows[i].0` is the row label, `rows[i].1` the values
    /// (one per non-label column).
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len() + 1,
            self.columns.len(),
            "row width must match the column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Renders the figure as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let data_width = self
                    .rows
                    .iter()
                    .map(|(label, values)| {
                        if i == 0 {
                            label.len()
                        } else {
                            format!("{:.2}", values[i - 1]).len()
                        }
                    })
                    .max()
                    .unwrap_or(0);
                c.len().max(data_width)
            })
            .collect();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{:>width$}  ", label, width = widths[0]));
            for (i, v) in values.iter().enumerate() {
                out.push_str(&format!("{:>width$.2}  ", v, width = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// The figure as a JSON value, in the stable machine-readable schema
    /// `reproduce --json` emits:
    ///
    /// ```json
    /// {"id": "...", "title": "...", "columns": ["...", ...],
    ///  "rows": [{"label": "...", "values": [1.0, ...]}, ...]}
    /// ```
    ///
    /// Non-finite values serialize as `null`. The schema is what CI's
    /// baseline gate and the `BENCH_*.json` trajectory consume; extend it
    /// by adding keys, never by renaming existing ones.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            (
                "columns".into(),
                Json::Arr(self.columns.iter().map(|c| Json::Str(c.clone())).collect()),
            ),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(label, values)| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(label.clone())),
                                (
                                    "values".into(),
                                    Json::Arr(values.iter().map(|v| Json::Num(*v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a figure from the JSON produced by [`Figure::to_json`]
    /// (`null` values come back as NaN). Used by the baseline gate.
    pub fn from_json(json: &Json) -> Option<Figure> {
        let mut fig = Figure::new(
            json.get("id")?.as_str()?,
            json.get("title").and_then(Json::as_str).unwrap_or_default(),
            json.get("columns")?
                .as_arr()?
                .iter()
                .map(|c| c.as_str().map(str::to_string))
                .collect::<Option<Vec<String>>>()?,
        );
        for row in json.get("rows")?.as_arr()? {
            let label = row.get("label")?.as_str()?;
            let values: Vec<f64> = row
                .get("values")?
                .as_arr()?
                .iter()
                .map(|v| v.as_num().unwrap_or(f64::NAN))
                .collect();
            if values.len() + 1 != fig.columns.len() {
                return None;
            }
            fig.push_row(label, values);
        }
        Some(fig)
    }

    /// Renders the figure as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(label);
            for v in values {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new(
            "fig11",
            "Throughput with network RTT",
            vec!["rtt_ms".into(), "homeo".into(), "2pc".into()],
        );
        f.push_row("50", vec![4000.0, 9.5]);
        f.push_row("100", vec![3900.0, 4.8]);
        f
    }

    #[test]
    fn text_rendering_contains_headers_and_rows() {
        let text = sample().to_text();
        assert!(text.contains("fig11"));
        assert!(text.contains("homeo"));
        assert!(text.contains("3900.00"));
    }

    #[test]
    fn csv_rendering_round_trips_values() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "rtt_ms,homeo,2pc");
        assert!(lines[1].starts_with("50,4000"));
    }

    #[test]
    fn json_rendering_round_trips() {
        let fig = sample();
        let json = fig.to_json();
        let text = json.to_pretty_string();
        let parsed = crate::json::Json::parse(&text).expect("valid JSON");
        assert_eq!(Figure::from_json(&parsed), Some(fig));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut f = sample();
        f.push_row("150", vec![1.0]);
    }
}
