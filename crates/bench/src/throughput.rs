//! The batched-execution throughput suite (`reproduce bench`).
//!
//! The paper's headline claim is that the common path runs at memory speed:
//! while treaties hold, a site commits without coordination. This suite
//! measures exactly that path on the real clock — committed operations per
//! wall-clock second through [`SiteRuntime::submit_batch`] — sweeping the
//! batch size over every execution mode plus the threaded cluster and the
//! loopback-TCP cluster (one wire frame and one socket round trip per
//! batch). The
//! resulting [`Figure`] (id `bench`) is what `reproduce --json` serializes
//! and what CI's `bench-smoke` job gates against
//! `crates/bench/baseline.json`: a cell regressing to below half its
//! baseline value fails the build.
//!
//! The workload is the Listing 1 order stream over a pool of counters with
//! ample headroom, so synchronizations are rare and the number measures the
//! fast path (batch=1) against the amortized path (group commit / one wire
//! frame per batch). Wall-clock numbers are inherently machine-dependent;
//! the baseline values are deliberately conservative floors, not targets.

use std::time::Instant;

use homeo_baselines::{LocalRuntime, TwoPcRuntime};
use homeo_cluster::{ClusterConfig, ClusterRuntime, ProgramBundle};
use homeo_lang::ids::ObjId;
use homeo_lang::{programs, Database};
use homeo_protocol::{Loc, OptimizerConfig, ReplicatedMode};
use homeo_runtime::{drive_open_loop, OpenLoopConfig, ReplicatedRuntime, SiteOp, SiteRuntime};
use homeo_sim::{DetRng, Timer};

use crate::figures::Effort;
use crate::report::Figure;

/// The swept batch sizes.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];

/// The swept execution modes, in column order. `cluster-tcp` pays a real
/// loopback-socket round trip per poll, so its cells measure the wire
/// (frame encode + syscalls + kernel buffering), not just the engine.
pub const MODES: [&str; 6] = [
    "homeo",
    "opt",
    "2pc",
    "local",
    "cluster-threaded",
    "cluster-tcp",
];

/// Sites under load in every cell.
const SITES: usize = 2;
/// Counters in the pool.
const ITEMS: usize = 64;
/// Hot counters: like the paper's TPC-C hotness parameter, most traffic
/// concentrates on a few counters, which is exactly the shape batching
/// amortizes (a batch's repeated touches of a hot counter fold into one
/// group-committed write).
const HOT_ITEMS: usize = 4;
/// Percent of operations that hit a hot counter.
const HOTNESS: f64 = 0.8;
/// Initial value / refill level: large enough that a measurement window
/// almost never violates a treaty (the suite measures the common path).
const INITIAL: i64 = 1_000_000_000;

fn stock(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

fn build_mode(mode: &str) -> Box<dyn SiteRuntime> {
    match mode {
        "homeo" => Box::new(
            ReplicatedRuntime::new(
                SITES,
                ReplicatedMode::Homeostasis {
                    optimizer: Some(OptimizerConfig {
                        lookahead: 10,
                        futures: 2,
                        seed: 21,
                    }),
                },
            )
            .with_timer(Timer::fixed_zero()),
        ),
        "opt" => Box::new(
            ReplicatedRuntime::new(SITES, ReplicatedMode::EvenSplit)
                .with_timer(Timer::fixed_zero()),
        ),
        "2pc" => Box::new(TwoPcRuntime::new(SITES)),
        "local" => Box::new(LocalRuntime::new(SITES)),
        "cluster-threaded" => Box::new(ClusterRuntime::threaded(
            SITES,
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        )),
        "cluster-tcp" => Box::new(ClusterRuntime::tcp(
            SITES,
            ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero()),
        )),
        other => panic!("unknown bench mode `{other}`"),
    }
}

fn register_pool(runtime: &mut dyn SiteRuntime) {
    for i in 0..ITEMS {
        runtime.ensure_registered(&stock(i), INITIAL, 1);
    }
    // The baselines have no registration concept; populate their replicas
    // through the same surface the workloads use.
    if runtime.value_at(0, &stock(0)) == 0 {
        panic!("counter population failed");
    }
}

/// General-path columns: registered `L++` programs executed as
/// [`SiteOp::Transaction`] batches on the threaded cluster and over
/// loopback TCP. Where the [`MODES`] cells measure the replicated-counter
/// fast path, these measure the full pipeline the programs ride — guard
/// selection against the joint symbolic table, program execution, treaty
/// check — per committed operation.
pub const GENERAL_MODES: [&str; 2] = ["general-threaded", "general-tcp"];

/// Programs in the general-path pool. The joint symbolic table is the
/// cross product of the per-program tables (`2^K` rows for `K` two-branch
/// order programs), so this pool stays narrow where the counter pool is
/// wide.
const GENERAL_PROGRAMS: usize = 8;

fn general_obj(i: usize) -> ObjId {
    ObjId::new(format!("gstock[{i}]"))
}

/// The general-path fixture: one order program per object, objects spread
/// round-robin over the sites, the same ample headroom as the counter
/// pool so the cells measure the treaty-holding path.
fn general_bundle() -> ProgramBundle {
    let objects: Vec<ObjId> = (0..GENERAL_PROGRAMS).map(general_obj).collect();
    let txns: Vec<_> = objects
        .iter()
        .map(|o| programs::order_for_object(o.clone(), INITIAL))
        .collect();
    let loc = Loc::from_pairs(
        objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.clone(), i % SITES)),
    );
    let initial = Database::from_pairs(objects.iter().map(|o| (o.clone(), INITIAL)));
    ProgramBundle::from_transactions(&txns, &loc, &initial, None)
}

/// Measures one general-path cell: committed transactions per wall-clock
/// second through `submit_batch` chunks of `batch` [`SiteOp::Transaction`]
/// operations, each issued at its home site (Assumption 3.1).
fn measure_general_cell(mode: &str, batch: usize, min_secs: f64) -> f64 {
    let config = || ClusterConfig::new(ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
    let mut runtime = match mode {
        "general-threaded" => ClusterRuntime::threaded(SITES, config()),
        "general-tcp" => ClusterRuntime::tcp(SITES, config()),
        other => panic!("unknown general bench mode `{other}`"),
    };
    assert_eq!(
        runtime.register_program(&general_bundle()),
        GENERAL_PROGRAMS as u64,
        "general-path program registration"
    );
    // Transaction indices homed at each site (index i writes gstock[i],
    // which lives at site i % SITES). The first local program is the hot
    // one, mirroring the counter cells' hot-key shape.
    let by_site: Vec<Vec<usize>> = (0..SITES)
        .map(|site| (site..GENERAL_PROGRAMS).step_by(SITES).collect())
        .collect();
    let mut rng = DetRng::seed_from(0x6E47 ^ batch as u64);
    let mut ops = Vec::with_capacity(batch);
    let mut issue = |runtime: &mut ClusterRuntime, site: usize, rng: &mut DetRng| -> u64 {
        let local = &by_site[site];
        ops.clear();
        for _ in 0..batch {
            let index = if rng.chance(HOTNESS) {
                local[0]
            } else {
                local[rng.index(local.len())]
            };
            ops.push(SiteOp::Transaction { index });
        }
        let outcomes = runtime.submit_batch(site, &ops);
        outcomes.iter().filter(|o| o.committed).count() as u64
    };
    for site in 0..SITES {
        issue(&mut runtime, site, &mut rng);
    }
    let mut committed = 0u64;
    let started = Instant::now();
    let mut site = 0;
    loop {
        committed += issue(&mut runtime, site, &mut rng);
        site = (site + 1) % SITES;
        if site == 0 && started.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    committed as f64 / started.elapsed().as_secs_f64()
}

/// Populates baselines (2pc / local) that ignore `ensure_registered`.
fn populate_baseline(runtime: &mut dyn SiteRuntime, mode: &str) {
    match mode {
        "2pc" | "local" => {
            // Reach through the trait object is not possible here; both
            // baselines implement population via their own methods, so the
            // suite writes the initial values through per-site engines.
            for site in 0..runtime.sites() {
                for i in 0..ITEMS {
                    runtime
                        .engine(site)
                        .write_logged(stock(i).as_str(), INITIAL)
                        .expect("population write cannot conflict");
                }
            }
        }
        _ => {}
    }
}

/// Measures one cell: committed operations per wall-clock second through
/// `submit_batch` chunks of `batch` operations, running until `min_secs`
/// of measured time has accumulated.
fn measure_cell(mode: &str, batch: usize, min_secs: f64) -> f64 {
    let mut runtime = build_mode(mode);
    populate_baseline(runtime.as_mut(), mode);
    register_pool(runtime.as_mut());
    // Interned object pool: the generator must not pay a string allocation
    // per operation, or the workload-side cost masks the runtime-side
    // batching effect under measurement.
    let pool: Vec<ObjId> = (0..ITEMS).map(stock).collect();
    let mut rng = DetRng::seed_from(0xB47C ^ batch as u64);
    let mut ops = Vec::with_capacity(batch);
    let mut issue = |runtime: &mut dyn SiteRuntime, site: usize, rng: &mut DetRng| -> u64 {
        ops.clear();
        for _ in 0..batch {
            let item = if rng.chance(HOTNESS) {
                rng.index(HOT_ITEMS)
            } else {
                HOT_ITEMS + rng.index(ITEMS - HOT_ITEMS)
            };
            ops.push(SiteOp::Order {
                obj: pool[item].clone(),
                amount: 1,
                refill_to: Some(INITIAL),
            });
        }
        let outcomes = runtime.submit_batch(site, &ops);
        outcomes.iter().filter(|o| o.committed).count() as u64
    };
    // Warm up: one batch per site primes caches and lock tables.
    for site in 0..SITES {
        issue(runtime.as_mut(), site, &mut rng);
    }
    let mut committed = 0u64;
    let started = Instant::now();
    let mut site = 0;
    loop {
        committed += issue(runtime.as_mut(), site, &mut rng);
        site = (site + 1) % SITES;
        // Check the clock once per round-robin sweep, not per batch.
        if site == 0 && started.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    committed as f64 / started.elapsed().as_secs_f64()
}

/// Modes that also get open-loop latency percentile columns: the paper
/// system on the in-process fast path and on real sockets.
pub const LATENCY_MODES: [&str; 2] = ["homeo", "cluster-tcp"];

/// Fraction of a cell's measured closed-loop throughput offered as the
/// open-loop rate — far enough below saturation that the percentiles
/// measure service latency plus moderate queueing, not a divergent queue.
const OPEN_LOOP_FRACTION: f64 = 0.6;

/// Latency percentiles in milliseconds — `(p50, p99, p999)` — of one mode
/// under open-loop Poisson arrivals at `rate` ops/s, same workload shape
/// as the throughput cells. Latency is measured per batch from its
/// scheduled arrival, so queueing delay is charged to the requests.
fn measure_latency(mode: &str, batch: usize, rate: f64, min_secs: f64) -> (f64, f64, f64) {
    let mut runtime = build_mode(mode);
    populate_baseline(runtime.as_mut(), mode);
    register_pool(runtime.as_mut());
    let pool: Vec<ObjId> = (0..ITEMS).map(stock).collect();
    // Enough offered operations to fill the measurement window at `rate`,
    // floored so even tiny quick-effort cells produce percentiles, capped
    // so a fast machine does not stretch the suite.
    let total_ops = ((rate * min_secs) as usize).clamp(batch * 16, 200_000);
    let config = OpenLoopConfig {
        rate,
        total_ops,
        batch,
        seed: 0x17EA ^ batch as u64,
    };
    let report = drive_open_loop(&config, runtime.as_mut(), &mut |_site, rng, ops| {
        for _ in 0..batch {
            let item = if rng.chance(HOTNESS) {
                rng.index(HOT_ITEMS)
            } else {
                HOT_ITEMS + rng.index(ITEMS - HOT_ITEMS)
            };
            ops.push(SiteOp::Order {
                obj: pool[item].clone(),
                amount: 1,
                refill_to: Some(INITIAL),
            });
        }
    });
    (
        report.quantile_ms(0.50),
        report.quantile_ms(0.99),
        report.quantile_ms(0.999),
    )
}

/// Generates the `bench` figure: ops/sec for every batch size × mode cell,
/// general-path ops/sec for the [`GENERAL_MODES`] (registered programs as
/// `SiteOp::Transaction` batches), plus open-loop latency percentile
/// columns (p50/p99/p999 ms) for the [`LATENCY_MODES`], offered at 60% of
/// each cell's own measured closed-loop throughput. The general and
/// percentile columns are additive: baseline gates match columns by name,
/// so older baselines keep gating the counter throughput cells only.
pub fn suite(effort: Effort) -> Figure {
    let min_secs = match effort {
        Effort::Quick => 0.05,
        Effort::Full => 0.5,
    };
    let mut columns = vec!["batch".to_string()];
    columns.extend(MODES.iter().map(|m| m.to_string()));
    columns.extend(GENERAL_MODES.iter().map(|m| m.to_string()));
    for mode in LATENCY_MODES {
        for p in ["p50", "p99", "p999"] {
            columns.push(format!("{mode}_{p}_ms"));
        }
    }
    let mut fig = Figure::new(
        "bench",
        "Batched submission throughput (committed ops/s, wall clock, 2 sites, \
         64 counters, 80% of traffic on 4 hot counters), general-path \
         throughput (registered L++ programs as transaction batches), and \
         open-loop latency percentiles (ms) at 60% of measured throughput",
        columns,
    );
    for &batch in &BATCH_SIZES {
        let mut values: Vec<f64> = MODES
            .iter()
            .map(|mode| measure_cell(mode, batch, min_secs))
            .collect();
        values.extend(
            GENERAL_MODES
                .iter()
                .map(|mode| measure_general_cell(mode, batch, min_secs)),
        );
        for mode in LATENCY_MODES {
            let col = MODES.iter().position(|m| *m == mode).expect("known mode");
            let rate = (values[col] * OPEN_LOOP_FRACTION).max(1_000.0);
            let (p50, p99, p999) = measure_latency(mode, batch, rate, min_secs);
            values.extend([p50, p99, p999]);
        }
        fig.push_row(format!("{batch}"), values);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_produces_a_full_grid_of_positive_numbers() {
        let fig = suite(Effort::Quick);
        assert_eq!(fig.id, "bench");
        assert_eq!(fig.rows.len(), BATCH_SIZES.len());
        // label + throughput per mode (counter + general) + p50/p99/p999
        // per latency mode.
        let throughput_cols = MODES.len() + GENERAL_MODES.len();
        assert_eq!(
            fig.columns.len(),
            throughput_cols + 1 + 3 * LATENCY_MODES.len()
        );
        for (label, values) in &fig.rows {
            assert_eq!(values.len(), throughput_cols + 3 * LATENCY_MODES.len());
            for (mode, v) in MODES.iter().chain(GENERAL_MODES.iter()).zip(values) {
                assert!(
                    v.is_finite() && *v > 0.0,
                    "batch {label} mode {mode}: throughput {v}"
                );
            }
            // The percentile tail is finite, non-negative and ordered
            // (p50 ≤ p99 ≤ p999) for each latency mode.
            for (i, mode) in LATENCY_MODES.iter().enumerate() {
                let tail = &values[throughput_cols + 3 * i..throughput_cols + 3 * (i + 1)];
                assert!(
                    tail.iter().all(|v| v.is_finite() && *v >= 0.0),
                    "batch {label} mode {mode}: latency {tail:?}"
                );
                assert!(
                    tail[0] <= tail[1] && tail[1] <= tail[2],
                    "batch {label} mode {mode}: percentiles out of order {tail:?}"
                );
            }
        }
    }

    /// The tentpole claim: amortizing per-operation bookkeeping over a
    /// 64-op batch at least doubles homeostasis fast-path throughput.
    /// Wall-clock-sensitive, so it runs in the release-mode CI test pass
    /// only (debug timings are not what the gate is about), with two
    /// half-second samples per cell (best-of) to ride out scheduler noise
    /// on shared runners.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "wall-clock assertion; run in release")]
    fn homeo_batch_64_at_least_doubles_batch_1() {
        let best = |batch: usize| {
            (0..2)
                .map(|_| measure_cell("homeo", batch, 0.5))
                .fold(0.0f64, f64::max)
        };
        let single = best(1);
        let batched = best(64);
        assert!(
            batched >= 2.0 * single,
            "batch=64 must be ≥2× batch=1: {batched:.0} vs {single:.0} ops/s"
        );
    }
}
