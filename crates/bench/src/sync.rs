//! The synchronization-round cost suite (`reproduce sync`).
//!
//! Synchronization is the protocol's slow path: every treaty violation pays
//! a full negotiation (template instantiation + MaxSMT solve). This suite
//! measures what the cheap-synchronization machinery buys on that path,
//! over an identical 80/20-skewed order stream per row:
//!
//! * `cold` — [`SyncTuning::cold`]: every negotiation rebuilds its templates
//!   and runs the full solver (the pre-optimization reference).
//! * `warm` — [`SyncTuning::default`]: memoized templates
//!   ([`homeo_protocol::NegotiationCache`]) plus the warm-started solver
//!   seeded with the previous allowance split. Allowances are pinned
//!   byte-identical to `cold` (the `sync_equivalence` suite), so the row
//!   isolates pure solver-cost savings.
//! * `adaptive` — [`SyncTuning::adaptive`]: warm starts plus the
//!   demand-adaptive control loop (consumption EWMA feeding the optimizer's
//!   site weights, proactive re-splits before the violation).
//!
//! Columns: negotiation counts split violation-triggered vs proactive, the
//! proactive share, the per-round solver-cost p50 (violation rounds, µs),
//! and two cross-row ratios the CI baseline pins — `warm_speedup`
//! (cold p50 / row p50; the warm-start claim) and `violation_cut_pct`
//! (percent fewer violation-triggered rounds than `cold`; the
//! demand-adaptive claim).

use homeo_lang::ids::ObjId;
use homeo_protocol::{OptimizerConfig, ReplicatedMode, ReplicatedStats, SyncTuning};
use homeo_runtime::{ReplicatedRuntime, SiteOp, SiteRuntime};
use homeo_sim::{DetRng, Timer};

use crate::figures::Effort;
use crate::report::Figure;

/// Sites under load (site 0 receives the hot 80% of the traffic).
const SITES: usize = 2;
/// Counters in the pool.
const ITEMS: usize = 4;
/// Share of operations issued by the hot site.
const HOT_SITE_SHARE: f64 = 0.8;
/// Initial value / refill level: small enough that the stream violates
/// treaties continuously (this suite measures the slow path, the inverse
/// of the `bench` suite's ample-headroom setup).
const INITIAL: i64 = 60;
/// Operations per `submit_batch` call.
const BATCH: usize = 16;

fn stock(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

/// One row's raw measurements.
struct SyncRun {
    stats: ReplicatedStats,
    /// Per-round solver micros of every violation-triggered round, in
    /// completion order.
    solver_samples: Vec<f64>,
}

impl SyncRun {
    fn violation_syncs(&self) -> u64 {
        self.stats
            .synchronizations
            .saturating_sub(self.stats.proactive_negotiations)
    }

    fn solver_p50(&self) -> f64 {
        if self.solver_samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.solver_samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite solver micros"));
        sorted[sorted.len() / 2]
    }
}

/// Drives the identical seeded 80/20 order stream under one tuning.
fn run_tuning(tuning: SyncTuning, ops: usize) -> SyncRun {
    let mode = ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 21,
        }),
    };
    let mut runtime = ReplicatedRuntime::new(SITES, mode)
        .with_timer(Timer::Wall)
        .with_sync_tuning(tuning);
    for i in 0..ITEMS {
        runtime.register(stock(i), INITIAL, 1);
    }
    // The operation stream is a function of the seed alone (site choice and
    // counter choice consume the rng identically in every row), so the
    // three tunings see byte-identical workloads.
    let mut rng = DetRng::seed_from(0x5F7C);
    let pool: Vec<ObjId> = (0..ITEMS).map(stock).collect();
    let mut solver_samples = Vec::new();
    let mut ops_buf: Vec<SiteOp> = Vec::with_capacity(BATCH);
    let mut issued = 0;
    while issued < ops {
        let site = usize::from(!rng.chance(HOT_SITE_SHARE));
        ops_buf.clear();
        for _ in 0..BATCH {
            ops_buf.push(SiteOp::Order {
                obj: pool[rng.index(ITEMS)].clone(),
                amount: 1,
                refill_to: Some(INITIAL),
            });
        }
        for outcome in runtime.submit_batch(site, &ops_buf) {
            if outcome.synchronized {
                solver_samples.push(outcome.solver_micros as f64);
            }
        }
        issued += BATCH;
    }
    SyncRun {
        stats: runtime.stats,
        solver_samples,
    }
}

/// Generates the `sync` figure: negotiation counts and per-round solver
/// cost for every tuning row, plus the cross-row ratios the baseline pins.
pub fn suite(effort: Effort) -> Figure {
    let ops = match effort {
        Effort::Quick => 4_000,
        Effort::Full => 24_000,
    };
    let cold = run_tuning(SyncTuning::cold(), ops);
    let warm = run_tuning(SyncTuning::default(), ops);
    let adaptive = run_tuning(SyncTuning::adaptive(), ops);

    let cold_p50 = cold.solver_p50();
    let cold_violations = cold.violation_syncs();
    let mut fig = Figure::new(
        "sync",
        "Synchronization-round cost (2 sites, 80/20 site skew, 4 counters, \
         continuous violations; solver p50 over violation rounds, µs)",
        vec![
            "tuning".to_string(),
            "negotiations".to_string(),
            "violation_syncs".to_string(),
            "proactive_share_pct".to_string(),
            "solver_p50_us".to_string(),
            "warm_speedup".to_string(),
            "violation_cut_pct".to_string(),
        ],
    );
    for (label, run) in [("cold", &cold), ("warm", &warm), ("adaptive", &adaptive)] {
        let p50 = run.solver_p50();
        let violations = run.violation_syncs();
        // Memoized rounds regularly measure 0µs; clamp the denominator at
        // 1µs so the ratio stays finite (and conservative).
        let speedup = cold_p50 / p50.max(1.0);
        let cut = if cold_violations > 0 {
            100.0 * (1.0 - violations as f64 / cold_violations as f64)
        } else {
            0.0
        };
        let proactive_share = if run.stats.synchronizations > 0 {
            100.0 * run.stats.proactive_negotiations as f64 / run.stats.synchronizations as f64
        } else {
            0.0
        };
        fig.push_row(
            label.to_string(),
            vec![
                run.stats.negotiations as f64,
                violations as f64,
                proactive_share,
                p50,
                speedup,
                cut,
            ],
        );
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_produces_the_three_tunings_with_finite_cells() {
        let fig = suite(Effort::Quick);
        assert_eq!(fig.id, "sync");
        assert_eq!(fig.rows.len(), 3);
        assert_eq!(fig.columns.len(), 7);
        for (label, values) in &fig.rows {
            assert_eq!(values.len(), 6, "row {label}");
            for (col, v) in fig.columns.iter().skip(1).zip(values) {
                assert!(v.is_finite(), "{label} × {col}: {v}");
            }
        }
    }

    #[test]
    fn warm_and_cold_rows_negotiate_identically() {
        // The warm start is pinned byte-identical to the cold solve, so the
        // two rows must count the same violation-triggered rounds over the
        // identical seeded stream — only the solver cost may differ.
        let fig = suite(Effort::Quick);
        let row = |label: &str| {
            fig.rows
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| v.clone())
                .expect("row present")
        };
        let cold = row("cold");
        let warm = row("warm");
        assert_eq!(cold[0], warm[0], "negotiations");
        assert_eq!(cold[1], warm[1], "violation rounds");
        let adaptive = row("adaptive");
        assert!(
            adaptive[2] > 0.0,
            "the adaptive row must run proactive rounds under 80/20 skew"
        );
    }
}
