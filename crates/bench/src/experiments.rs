//! Single experiment points: one workload, one mode, one parameter setting.
//!
//! Every point builds the mode's `SiteRuntime` (the system under test) and
//! its workload driver, then lets `homeo_runtime::drive` run the closed
//! loop.

use serde::{Deserialize, Serialize};

use homeo_runtime::drive;
use homeo_sim::clock::millis;
use homeo_sim::ClosedLoopConfig;
use homeo_workloads::micro::{self, closed_loop_config, MicroConfig, MicroWorkload, Mode};
use homeo_workloads::tpcc::{self, TpccConfig, TpccWorkload};

/// The percentiles used by the paper's latency-profile figures.
pub const LATENCY_PERCENTILES: [f64; 8] = [10.0, 30.0, 50.0, 70.0, 90.0, 95.0, 98.0, 100.0];

/// The result of one microbenchmark experiment point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Mode label ("homeo", "opt", "2pc", "local").
    pub mode: String,
    /// Latency (ms) at [`LATENCY_PERCENTILES`].
    pub latency_profile_ms: Vec<(f64, f64)>,
    /// Committed transactions per second per replica.
    pub throughput_per_replica: f64,
    /// Percentage of transactions that required synchronization.
    pub sync_ratio_percent: f64,
    /// Average latency breakdown of synchronized transactions, in
    /// milliseconds: (local, solver, communication).
    pub sync_breakdown_ms: (f64, f64, f64),
    /// Latency CDF sample points (ms, cumulative fraction), for Figure 27.
    pub latency_cdf: Vec<(f64, f64)>,
}

/// Runs one microbenchmark experiment point.
pub fn micro_experiment(
    config: &MicroConfig,
    mode: Mode,
    clients_per_replica: usize,
    measure_ms: u64,
) -> ExperimentPoint {
    let mut runtime = micro::build_runtime(config, mode);
    let mut workload = MicroWorkload::new(config.clone(), mode);
    let loop_config = closed_loop_config(config, clients_per_replica, measure_ms);
    let metrics = drive(&loop_config, runtime.as_mut(), &mut workload);
    let cdf_points: Vec<f64> = vec![1.0, 2.0, 4.0, 8.0, 16.0, 50.0, 100.0, 200.0, 400.0, 1000.0];
    ExperimentPoint {
        mode: mode.label().to_string(),
        latency_profile_ms: metrics.latency.profile_ms(&LATENCY_PERCENTILES),
        throughput_per_replica: metrics.throughput_per_replica(),
        sync_ratio_percent: metrics.sync_ratio_percent(),
        sync_breakdown_ms: metrics.sync_breakdown_ms(),
        latency_cdf: metrics.latency.cdf_at_ms(&cdf_points),
    }
}

/// The result of one TPC-C experiment point (New Order measurements, per the
/// TPC-C specification and Section 6.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpccPoint {
    /// Mode label.
    pub mode: String,
    /// New Order latency (ms) at [`LATENCY_PERCENTILES`].
    pub new_order_latency_ms: Vec<(f64, f64)>,
    /// New Order committed transactions per second per replica.
    pub new_order_throughput_per_replica: f64,
    /// Overall committed transactions per second (whole system, all types).
    pub total_throughput: f64,
    /// New Order synchronization ratio in percent.
    pub new_order_sync_ratio_percent: f64,
}

/// Runs one TPC-C experiment point.
pub fn tpcc_experiment(
    config: &TpccConfig,
    mode: Mode,
    clients_per_replica: usize,
    measure_ms: u64,
) -> TpccPoint {
    let mut runtime = tpcc::build_runtime(config, mode);
    let mut workload = TpccWorkload::new(config.clone(), mode);
    let loop_config = ClosedLoopConfig {
        replicas: config.replicas,
        clients_per_replica,
        warmup: millis(500),
        measure: millis(measure_ms),
        seed: config.seed,
        cores_per_replica: 16,
    };
    let metrics = drive(&loop_config, runtime.as_mut(), &mut workload);
    let measured_secs = measure_ms as f64 / 1000.0;
    let new_order_throughput =
        workload.new_order_counter.committed as f64 / measured_secs / config.replicas as f64;
    TpccPoint {
        mode: mode.label().to_string(),
        new_order_latency_ms: workload.new_order_latency.profile_ms(&LATENCY_PERCENTILES),
        new_order_throughput_per_replica: new_order_throughput,
        total_throughput: metrics.throughput_total(),
        new_order_sync_ratio_percent: workload.new_order_counter.sync_ratio_percent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_point_produces_sane_numbers() {
        let config = MicroConfig {
            num_items: 100,
            lookahead: 8,
            futures: 2,
            ..MicroConfig::default()
        };
        let point = micro_experiment(&config, Mode::Homeostasis, 4, 2_000);
        assert_eq!(point.mode, "homeo");
        assert!(point.throughput_per_replica > 0.0);
        assert!(point.sync_ratio_percent < 100.0);
        assert_eq!(point.latency_profile_ms.len(), LATENCY_PERCENTILES.len());
        // CDF is monotone and ends at 1.0.
        let last = point.latency_cdf.last().unwrap().1;
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tpcc_point_reports_new_order_only_metrics() {
        let config = TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            items_per_district: 25,
            customers: 100,
            lookahead: 6,
            futures: 2,
            ..TpccConfig::default()
        };
        let point = tpcc_experiment(&config, Mode::Homeostasis, 4, 2_000);
        assert!(point.new_order_throughput_per_replica > 0.0);
        assert!(point.total_throughput > point.new_order_throughput_per_replica);
    }
}
