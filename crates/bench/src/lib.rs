//! # homeo-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section 6 and Appendix F) on top of the deterministic
//! simulator.
//!
//! * [`experiments`] — runs one experiment point: a workload (microbenchmark
//!   or TPC-C), a mode (`homeo`, `opt`, `2pc`, `local`) and a parameter
//!   setting, returning latency profiles, throughput and synchronization
//!   ratios.
//! * [`figures`] — one generator per table/figure of the paper; each returns
//!   a [`report::Figure`] with the same series the paper plots.
//! * [`cluster`] — the fault scenarios of the cluster subsystem
//!   (partition-then-heal, kill-then-recover, skewed allowances), verified
//!   as they generate.
//! * [`scenarios`] — the general-path application scenarios (`scenario-*`):
//!   registered `L++` programs (flash sale, rate limiter, seat map, TPC-C
//!   new-order) run over the cluster backends and checked operation by
//!   operation against the serial oracle as they generate.
//! * [`throughput`] — the batched-execution throughput suite (`bench`):
//!   wall-clock ops/sec over batch size × execution mode, the figure CI's
//!   `bench-smoke` job gates against `crates/bench/baseline.json`.
//! * [`scaling`] — the N-site scaling sweep (`scaling`, site counts
//!   overridable with `--sites`): throughput and simulated WAN
//!   synchronization cost as the membership grows, on all three cluster
//!   backends.
//! * [`report`] — rendering to aligned text / CSV / JSON.
//! * [`json`] — the minimal JSON writer/parser behind `--json` and the
//!   baseline gate (the workspace is offline; there is no `serde_json`).
//!
//! The `reproduce` binary drives everything:
//!
//! ```text
//! cargo run --release -p homeo-bench --bin reproduce -- all
//! cargo run --release -p homeo-bench --bin reproduce -- fig11 fig12
//! cargo run --release -p homeo-bench --bin reproduce -- --full table1 fig20
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod figures;
pub mod json;
pub mod report;
pub mod scaling;
pub mod scenarios;
pub mod sync;
pub mod throughput;

pub use cluster::all_scenario_ids;
pub use experiments::{micro_experiment, tpcc_experiment, ExperimentPoint, TpccPoint};
pub use figures::{all_figure_ids, generate, Effort};
pub use json::Json;
pub use report::Figure;
pub use scenarios::all_general_scenario_ids;

/// Every reproducible id: the paper's tables and figures, the cluster
/// scenarios, the batched-throughput suite, the synchronization-cost
/// suite and the N-site scaling sweep.
pub fn all_ids() -> Vec<&'static str> {
    let mut ids = all_figure_ids();
    ids.extend(all_scenario_ids());
    ids.extend(all_general_scenario_ids());
    ids.push("bench");
    ids.push("sync");
    ids.push("scaling");
    ids
}
