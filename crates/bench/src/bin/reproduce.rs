//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [--full] [--csv-dir DIR] [--json PATH] [--baseline PATH]
//!           [--list] [--threads N] [--homeo-load CONFIG] [--ops N]
//!           [--clients N] [--rate R] [--metrics] [--sites N,N,...]
//!           [--retire SITE]
//!           [all | table1 | fig10 | ... | fig29
//!            | cluster-partition | ... | cluster-tcp
//!            | scenario-flash-sale | scenario-rate-limiter
//!            | scenario-seatmap | scenario-tpcc-neworder
//!            | scenario-join-leave | bench | sync | scaling]...
//! ```
//!
//! With no arguments, `all` is assumed: every paper figure, the cluster
//! fault scenarios (partition-then-heal, kill-then-recover, skew), the
//! general-path application scenarios (`scenario-*`: registered `L++`
//! programs — flash sale, rate limiter, seat map, TPC-C new-order —
//! verified against the serial oracle as they generate) and the
//! batched-throughput suite (`bench`). `--full` runs the larger sweeps
//! (closer to the paper's configuration); the default "quick" effort keeps
//! the whole reproduction within a few minutes. `--csv-dir` additionally
//! writes one CSV file per figure. `--json PATH` serializes every generated
//! figure to one machine-readable JSON file (the stable schema CI and the
//! `BENCH_*.json` trajectory consume). `--baseline PATH` compares the
//! generated figures against a previously emitted JSON file and fails when
//! any pinned cell drops below half its baseline value (the CI perf gate:
//! ops/sec floors for `bench`, solver-speedup and violation-cut ratios for
//! `sync`). `--list` prints
//! the available ids (one per line) and exits. `--threads N` additionally
//! runs the real-concurrency load mode: N worker threads, one client thread
//! each, over the channel transport. `--homeo-load CONFIG` is the TCP load
//! client: it connects to the `homeostasisd` cluster described by CONFIG
//! (started separately, any mix of processes/machines on the config's
//! addresses), drives `--ops N` (default 2000) seeded order operations per
//! site over the sockets, and self-verifies counter conservation — a failed
//! check is a non-zero exit. `--clients N` fans the load out over N
//! concurrent pipelined connections (spread round-robin across the sites;
//! default one per site), exercising the sites' epoll reactors at real
//! connection counts — `--clients 10000` is a meaningful smoke test.
//! `--rate R` switches the load to **open-loop** arrivals at R operations
//! per second aggregate (deterministic Poisson schedule; latency measured
//! from each batch's scheduled arrival), instead of the default closed
//! loop. `--metrics` scrapes every site's telemetry dump
//! (`MetricsRequest` → Prometheus-style text) after the load, prints it,
//! and fails if a required instrumentation key is missing or zero — the
//! CI smoke job uses this to prove a live daemon's metrics endpoint works.
//! `--sites N,N,...` overrides the site counts of the `scaling` sweep
//! (and adds `scaling` to the requested ids if absent, so
//! `reproduce bench --sites 2,5` emits both figures). `--retire SITE`
//! (with `--homeo-load`) first retires the named site from the live
//! cluster — a `Leave` frame through a surviving member, polled until the
//! epoch-bumped roster evicts it — and then drives the load against the
//! survivors only, so the conservation exit code also gates the handoff's
//! delta folding.
//!
//! Exit codes: `0` on success, `1` when one or more requested figures or
//! scenarios fail to generate or write, or when the baseline check finds a
//! regression (the remaining ones are still produced), `2` on usage errors.

use std::path::PathBuf;

use std::time::Duration;

use homeo_bench::{all_ids, generate, Effort, Figure, Json};
use homeo_cluster::{tcp_load_opts, threaded_load, ClusterSpec, LoadOptions, TcpClient};
use homeo_telemetry::Histogram;

fn main() {
    let mut effort = Effort::Quick;
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut homeo_load: Option<PathBuf> = None;
    let mut ops_per_site: usize = 2_000;
    let mut clients: usize = 0;
    let mut rate: f64 = 0.0;
    let mut metrics = false;
    let mut site_counts: Option<Vec<usize>> = None;
    let mut retire: Option<usize> = None;
    let mut requested: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => effort = Effort::Full,
            "--quick" => effort = Effort::Quick,
            "--list" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--threads" => {
                let n = args.next().and_then(|n| n.parse::<usize>().ok());
                match n {
                    Some(n) if n > 0 => threads = Some(n),
                    _ => {
                        eprintln!("--threads requires a positive thread count");
                        std::process::exit(2);
                    }
                }
            }
            "--homeo-load" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--homeo-load requires a cluster config path");
                    std::process::exit(2);
                });
                homeo_load = Some(PathBuf::from(path));
            }
            "--ops" => {
                let n = args.next().and_then(|n| n.parse::<usize>().ok());
                match n {
                    Some(n) if n > 0 => ops_per_site = n,
                    _ => {
                        eprintln!("--ops requires a positive per-site operation count");
                        std::process::exit(2);
                    }
                }
            }
            "--clients" => {
                let n = args.next().and_then(|n| n.parse::<usize>().ok());
                match n {
                    Some(n) if n > 0 => clients = n,
                    _ => {
                        eprintln!("--clients requires a positive connection count");
                        std::process::exit(2);
                    }
                }
            }
            "--rate" => {
                let r = args.next().and_then(|r| r.parse::<f64>().ok());
                match r {
                    Some(r) if r > 0.0 && r.is_finite() => rate = r,
                    _ => {
                        eprintln!("--rate requires a positive ops/sec rate");
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => metrics = true,
            "--sites" => {
                let list = args.next().and_then(|list| {
                    list.split(',')
                        .map(|n| n.trim().parse::<usize>().ok().filter(|&n| n >= 2))
                        .collect::<Option<Vec<usize>>>()
                });
                match list {
                    Some(list) if !list.is_empty() => site_counts = Some(list),
                    _ => {
                        eprintln!("--sites requires a comma-separated list of counts >= 2");
                        std::process::exit(2);
                    }
                }
            }
            "--retire" => {
                let n = args.next().and_then(|n| n.parse::<usize>().ok());
                match n {
                    Some(n) => retire = Some(n),
                    _ => {
                        eprintln!("--retire requires a site id");
                        std::process::exit(2);
                    }
                }
            }
            "--csv-dir" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a directory argument");
                    std::process::exit(2);
                });
                csv_dir = Some(PathBuf::from(dir));
            }
            "--json" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires an output path");
                    std::process::exit(2);
                });
                json_path = Some(PathBuf::from(path));
            }
            "--baseline" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline requires a baseline JSON path");
                    std::process::exit(2);
                });
                baseline_path = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--full] [--csv-dir DIR] [--json PATH] \
                     [--baseline PATH] [--list] [--threads N] \
                     [--homeo-load CONFIG] [--ops N] [--clients N] [--rate R] \
                     [--metrics] [--sites N,N,...] [--retire SITE] \
                     [all | {}]...",
                    all_ids().join(" | ")
                );
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    let known = all_ids();
    for id in &requested {
        if id != "all" && !known.contains(&id.as_str()) {
            eprintln!(
                "unknown figure id `{id}`; expected one of: all {}",
                known.join(" ")
            );
            std::process::exit(2);
        }
    }
    if retire.is_some() && homeo_load.is_none() {
        eprintln!("--retire needs --homeo-load CONFIG to reach the cluster");
        std::process::exit(2);
    }
    if requested.is_empty() && (threads.is_some() || homeo_load.is_some()) {
        // `--threads N` / `--homeo-load CONFIG` alone run just the load mode.
    } else if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = known.iter().map(|s| s.to_string()).collect();
    } else if site_counts.is_some() && !requested.iter().any(|r| r == "scaling") {
        // An explicit site list means the sweep was asked for:
        // `reproduce bench --sites 2,5` emits the scaling figure too.
        requested.push("scaling".to_string());
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv output directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }

    if !requested.is_empty() {
        println!(
            "Reproducing {} figure(s) at {:?} effort\n",
            requested.len(),
            effort
        );
    }
    let mut failed: Vec<String> = Vec::new();
    let mut figures: Vec<Figure> = Vec::new();
    for id in &requested {
        let started = std::time::Instant::now();
        // A figure that panics (e.g. a degenerate sweep) must not take the
        // rest of the reproduction down with it — record it and move on.
        let result = std::panic::catch_unwind(|| match (id.as_str(), &site_counts) {
            ("scaling", Some(counts)) => homeo_bench::scaling::sweep(counts, effort),
            _ => generate(id, effort),
        });
        let figure = match result {
            Ok(figure) => figure,
            Err(_) => {
                eprintln!("FAILED to generate `{id}`\n");
                failed.push(id.clone());
                continue;
            }
        };
        println!("{}", figure.to_text());
        println!("({} generated in {:.1?})\n", figure.id, started.elapsed());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", figure.id));
            if let Err(e) = std::fs::write(&path, figure.to_csv()) {
                eprintln!("FAILED to write {}: {e}\n", path.display());
                failed.push(id.clone());
            }
        }
        figures.push(figure);
    }
    if let Some(path) = &json_path {
        let doc = Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            (
                "effort".into(),
                Json::Str(format!("{effort:?}").to_lowercase()),
            ),
            (
                "figures".into(),
                Json::Arr(figures.iter().map(Figure::to_json).collect()),
            ),
        ]);
        if let Err(e) = std::fs::write(path, doc.to_pretty_string()) {
            eprintln!("FAILED to write {}: {e}\n", path.display());
            failed.push("--json".to_string());
        } else {
            println!("Wrote {} figure(s) to {}\n", figures.len(), path.display());
        }
    }
    if let Some(path) = &baseline_path {
        match check_baseline(path, &figures) {
            Ok(checked) => {
                println!("Baseline check passed: {checked} cell(s) within tolerance\n");
            }
            Err(problems) => {
                for problem in &problems {
                    eprintln!("BASELINE REGRESSION: {problem}");
                }
                eprintln!();
                failed.push("--baseline".to_string());
            }
        }
    }
    if let Some(sites) = threads {
        const OPS_PER_SITE: usize = 2_000;
        const ITEMS: usize = 64;
        println!("Threaded load: {sites} site worker threads, one client thread each");
        let result = std::panic::catch_unwind(|| threaded_load(sites, OPS_PER_SITE, ITEMS, 42));
        match result {
            Ok(report) => {
                println!(
                    "{} sites x {OPS_PER_SITE} ops: {} committed ({} synchronized) in {:.2}s = {:.0} ops/s\n",
                    report.sites,
                    report.committed,
                    report.synchronized,
                    report.elapsed_secs,
                    report.throughput
                );
                if report.committed != (sites * OPS_PER_SITE) as u64 {
                    eprintln!("FAILED: threaded load lost operations\n");
                    failed.push("--threads".to_string());
                }
            }
            Err(_) => {
                eprintln!("FAILED to run the threaded load mode\n");
                failed.push("--threads".to_string());
            }
        }
    }
    if let Some(config_path) = &homeo_load {
        match run_homeo_load(config_path, ops_per_site, clients, rate, metrics, retire) {
            Ok(()) => {}
            Err(problem) => {
                eprintln!("FAILED: {problem}\n");
                failed.push("--homeo-load".to_string());
            }
        }
    }
    if !failed.is_empty() {
        eprintln!(
            "{} of {} task(s) failed: {}",
            failed.len(),
            requested.len() + usize::from(threads.is_some()) + usize::from(homeo_load.is_some()),
            failed.join(" ")
        );
        std::process::exit(1);
    }
}

/// The `homeo-load` client mode: drive `submit_batch` order traffic over
/// TCP against an externally started `homeostasisd` cluster and
/// self-verify counter conservation. Any lost operation, cross-site
/// disagreement or conservation violation is an `Err` (and thus a non-zero
/// exit). With `--retire SITE` the named site is first evicted from the
/// live cluster (a `Leave` through a surviving member, polled until the
/// epoch-bumped roster drops it) and the load runs against the survivors.
fn run_homeo_load(
    config_path: &std::path::Path,
    ops_per_site: usize,
    clients: usize,
    rate: f64,
    metrics: bool,
    retire: Option<usize>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let mut spec = ClusterSpec::parse(&text)
        .map_err(|e| format!("bad cluster config {}: {e}", config_path.display()))?;
    if let Some(site) = retire {
        retire_site(&mut spec, site)?;
    }
    const ITEMS: usize = 16;
    let mut opts = LoadOptions {
        clients,
        ..LoadOptions::new(ops_per_site, ITEMS, 42)
    };
    if rate > 0.0 {
        opts = opts.open_loop(rate);
    }
    println!(
        "homeo-load: {} site(s) over TCP, {ops_per_site} ops per site, {ITEMS} counters{}{}",
        spec.sites(),
        if clients > 0 {
            format!(", {clients} concurrent connections")
        } else {
            String::new()
        },
        if rate > 0.0 {
            format!(", open loop at {rate:.0} ops/s offered")
        } else {
            String::new()
        }
    );
    let report = tcp_load_opts(&spec, &opts).map_err(|e| format!("TCP load failed: {e}"))?;
    println!(
        "{} sites x {ops_per_site} ops over {} connection(s): {} committed \
         ({} synchronized) in {:.2}s = {:.0} ops/s",
        report.sites,
        report.clients,
        report.committed,
        report.synchronized,
        report.elapsed_secs,
        report.throughput
    );
    let violation_syncs = report
        .stats
        .synchronizations
        .saturating_sub(report.stats.proactive_negotiations);
    println!(
        "sync rounds: {violation_syncs} violation-triggered + {} proactive, \
         {} negotiations, solver {:.1} ms total",
        report.stats.proactive_negotiations,
        report.stats.negotiations,
        report.stats.solver_micros_total as f64 / 1_000.0
    );
    // Client-observed latency per pipelined batch: the closed loop measures
    // from each batch's send, the open loop from its scheduled arrival.
    println!(
        "latency per batch (ms){}:",
        if rate > 0.0 {
            " from scheduled arrival"
        } else {
            ""
        }
    );
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "", "p50", "p90", "p99", "p999", "max"
    );
    for (site, hist) in report.site_latency.iter().enumerate() {
        println!("  {}", latency_row(&format!("site {site}"), hist));
    }
    println!("  {}", latency_row("all sites", &report.latency));
    println!(
        "conservation: seeded {} - committed {} = folded {} ({})\n",
        report.initial_total,
        report.committed,
        report.final_total,
        if report.conserved { "OK" } else { "VIOLATED" }
    );
    if !report.conserved {
        return Err("counter conservation check failed".to_string());
    }
    if metrics {
        check_live_metrics(&spec)?;
    }
    Ok(())
}

/// Retires `site` from the live cluster: sends `Leave` through a surviving
/// member, polls that member's roster until the epoch-bumped
/// `MembershipInstall` evicts the leaver (its shards handed off to the
/// survivors), then drops the address from the spec so the load — and its
/// conservation check — runs against the survivors only.
///
/// Meant to follow an earlier load against the full cluster (the CI
/// elasticity job's flow): the load's counters then already exist on every
/// survivor and seeding is skip-if-known, so the shrunken spec's site
/// indices never reach the cluster as a member list.
fn retire_site(spec: &mut ClusterSpec, site: usize) -> Result<(), String> {
    if site >= spec.sites() {
        return Err(format!(
            "--retire {site}: the config only declares {} site(s)",
            spec.sites()
        ));
    }
    if spec.sites() < 2 {
        return Err("--retire needs at least two configured sites".to_string());
    }
    let watch = (0..spec.sites())
        .find(|s| *s != site)
        .expect("two sites leave a survivor");
    let addr = spec.addrs[watch];
    let mut client = TcpClient::connect_retry(addr, Duration::from_secs(10))
        .map_err(|e| format!("cannot reach surviving site {watch} at {addr}: {e}"))?;
    let before = client
        .roster()
        .map_err(|e| format!("roster query at site {watch} failed: {e}"))?;
    if !before.contains(site) {
        return Err(format!(
            "--retire {site}: not a member of the live roster \
             (epoch {}, members {:?})",
            before.epoch, before.members
        ));
    }
    println!(
        "retiring site {site} via site {watch}: roster epoch {}, members {:?}",
        before.epoch, before.members
    );
    client
        .leave(site)
        .map_err(|e| format!("Leave({site}) via site {watch} failed: {e}"))?;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let roster = client
            .roster()
            .map_err(|e| format!("roster poll at site {watch} failed: {e}"))?;
        if roster.epoch > before.epoch && !roster.contains(site) {
            println!(
                "site {site} retired: epoch {} -> {}, members {:?}\n",
                before.epoch, roster.epoch, roster.members
            );
            break;
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "timed out waiting for site {site} to leave \
                 (epoch {}, members {:?})",
                roster.epoch, roster.members
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    spec.addrs.remove(site);
    Ok(())
}

/// One row of the load summary's latency table.
fn latency_row(label: &str, hist: &Histogram) -> String {
    let ms = |q: f64| hist.quantile(q) as f64 / 1_000.0;
    format!(
        "{label:<12} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        ms(0.50),
        ms(0.90),
        ms(0.99),
        ms(0.999),
        hist.max() as f64 / 1_000.0
    )
}

/// Scrapes every site's telemetry dump over a fresh connection, prints it,
/// and verifies the instrumentation is alive: per site, the reactor and
/// commit counters must be present and non-zero; cluster-wide, the sync
/// phase histograms must have recorded rounds. A missing or zero key is an
/// `Err` — this is the CI smoke job's gate on the metrics endpoint.
fn check_live_metrics(spec: &ClusterSpec) -> Result<(), String> {
    // Required per site: any loaded site serves frames and commits locally.
    const PER_SITE: [&str; 4] = [
        "homeo_reactor_frames_in_total",
        "homeo_reactor_bytes_in_total",
        "homeo_local_commits_total",
        "homeo_submit_batch_ops_count",
    ];
    // Required cluster-wide: the load forces violation rounds somewhere,
    // but which sites coordinate/participate depends on counter placement.
    const CLUSTER_WIDE: [&str; 3] = [
        "homeo_sync_violation_round_micros_count",
        "homeo_sync_violation_collect_micros_count",
        "homeo_synchronizations_total",
    ];
    let mut totals: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
    let mut problems = Vec::new();
    for (site, addr) in spec.addrs.iter().enumerate() {
        let text = TcpClient::connect_retry(*addr, Duration::from_secs(5))
            .and_then(|mut client| client.metrics())
            .map_err(|e| format!("metrics scrape of site {site} failed: {e}"))?;
        println!("--- metrics: site {site} ({addr}) ---");
        print!("{text}");
        let values = parse_metrics(&text);
        for key in PER_SITE {
            match values.get(key) {
                Some(v) if *v > 0.0 => {}
                Some(_) => problems.push(format!("site {site}: `{key}` is zero")),
                None => problems.push(format!("site {site}: `{key}` missing")),
            }
        }
        for key in CLUSTER_WIDE {
            *totals.entry(key).or_default() += values.get(key).copied().unwrap_or(0.0);
        }
    }
    println!();
    for key in CLUSTER_WIDE {
        if totals.get(key).copied().unwrap_or(0.0) <= 0.0 {
            problems.push(format!("`{key}` is zero across every site"));
        }
    }
    if problems.is_empty() {
        println!(
            "metrics check passed: {} per-site key(s) and {} cluster-wide key(s) non-zero\n",
            PER_SITE.len(),
            CLUSTER_WIDE.len()
        );
        Ok(())
    } else {
        Err(format!("metrics check failed: {}", problems.join("; ")))
    }
}

/// Parses Prometheus-style text into `name -> value` (comment lines are
/// skipped; histogram summaries contribute their `_count`/`_sum`/... keys).
fn parse_metrics(text: &str) -> std::collections::BTreeMap<String, f64> {
    text.lines()
        .filter(|line| !line.starts_with('#'))
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            let name = parts.next()?;
            let value = parts.next()?.parse::<f64>().ok()?;
            Some((name.to_string(), value))
        })
        .collect()
}

/// Compares the generated figures against a baseline JSON file (the schema
/// `--json` emits). Every numeric cell present in both is checked with the
/// generous CI tolerance: the current value must be at least **half** the
/// baseline value (a cell regressing by more than 2× fails). Columns whose
/// name ends in `_ms` are latencies, so the rule inverts into a ceiling:
/// the current value must be at most **twice** the baseline. Either way a
/// NaN cell (an unmeasured latency, a zero-committed throughput) fails
/// closed. Cells, rows or figures missing from the baseline are skipped,
/// so the baseline only pins what it names. Returns the number of cells
/// checked.
fn check_baseline(path: &std::path::Path, figures: &[Figure]) -> Result<usize, Vec<String>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| vec![format!("cannot read baseline {}: {e}", path.display())])?;
    let doc = Json::parse(&text)
        .ok_or_else(|| vec![format!("baseline {} is not valid JSON", path.display())])?;
    let baseline_figures: Vec<Figure> = doc
        .get("figures")
        .and_then(Json::as_arr)
        .map(|figs| figs.iter().filter_map(Figure::from_json).collect())
        .unwrap_or_default();
    if baseline_figures.is_empty() {
        return Err(vec![format!(
            "baseline {} holds no figures in the expected schema",
            path.display()
        )]);
    }
    let mut problems = Vec::new();
    let mut checked = 0;
    for base in &baseline_figures {
        let Some(current) = figures.iter().find(|f| f.id == base.id) else {
            continue; // the baseline only gates figures that were generated
        };
        for (label, base_values) in &base.rows {
            let Some((_, current_values)) = current.rows.iter().find(|(l, _)| l == label) else {
                problems.push(format!("{}: row `{label}` missing from the run", base.id));
                continue;
            };
            for (col, base_value) in base.columns.iter().skip(1).zip(base_values) {
                if !base_value.is_finite() {
                    continue; // null baseline cell = unpinned
                }
                // Search data columns only (skip the label column), so a
                // malformed baseline naming the label column reports as
                // missing instead of indexing out of the row.
                let Some(position) = current.columns.iter().skip(1).position(|c| c == col) else {
                    problems.push(format!("{}: column `{col}` missing from the run", base.id));
                    continue;
                };
                let current_value = current_values[position];
                checked += 1;
                // `<` would silently pass on NaN; an unparseable cell must
                // fail the gate, not sneak through it.
                if col.ends_with("_ms") {
                    // Latency column: gate as a ceiling.
                    let holds = matches!(
                        current_value.partial_cmp(&(base_value * 2.0)),
                        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                    );
                    if !holds {
                        problems.push(format!(
                            "{} [{label} × {col}]: {current_value:.1} ms is above twice \
                             the baseline ceiling {base_value:.1} ms",
                            base.id
                        ));
                    }
                } else {
                    let holds = matches!(
                        current_value.partial_cmp(&(base_value / 2.0)),
                        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                    );
                    if !holds {
                        problems.push(format!(
                            "{} [{label} × {col}]: {current_value:.0} is below half \
                             the baseline {base_value:.0}",
                            base.id
                        ));
                    }
                }
            }
        }
    }
    // Fail closed: a baseline that pinned figures none of which were
    // generated means the gate checked nothing — that is a misconfigured
    // invocation (wrong ids requested), not a pass.
    if checked == 0 {
        problems.push(format!(
            "baseline {} pinned {} figure(s) but no cell was checked — \
             was the gated figure requested?",
            path.display(),
            baseline_figures.len()
        ));
    }
    if problems.is_empty() {
        Ok(checked)
    } else {
        Err(problems)
    }
}
