//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [--full] [--csv-dir DIR] [--list] [--threads N]
//!           [all | table1 | fig10 | ... | fig29 | cluster-partition | ...]...
//! ```
//!
//! With no arguments, `all` is assumed: every paper figure plus the cluster
//! fault scenarios (partition-then-heal, kill-then-recover, skew). `--full`
//! runs the larger sweeps (closer to the paper's configuration); the
//! default "quick" effort keeps the whole reproduction within a few
//! minutes. `--csv-dir` additionally writes one CSV file per figure.
//! `--list` prints the available ids (one per line) and exits. `--threads N`
//! additionally runs the real-concurrency load mode: N worker threads, one
//! client thread each, over the channel transport.
//!
//! Exit codes: `0` on success, `1` when one or more requested figures or
//! scenarios fail to generate or write (the remaining ones are still
//! produced), `2` on usage errors.

use std::path::PathBuf;

use homeo_bench::{all_ids, generate, Effort};
use homeo_cluster::threaded_load;

fn main() {
    let mut effort = Effort::Quick;
    let mut csv_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut requested: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => effort = Effort::Full,
            "--quick" => effort = Effort::Quick,
            "--list" => {
                for id in all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--threads" => {
                let n = args.next().and_then(|n| n.parse::<usize>().ok());
                match n {
                    Some(n) if n > 0 => threads = Some(n),
                    _ => {
                        eprintln!("--threads requires a positive thread count");
                        std::process::exit(2);
                    }
                }
            }
            "--csv-dir" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a directory argument");
                    std::process::exit(2);
                });
                csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--full] [--csv-dir DIR] [--list] [--threads N] [all | {}]...",
                    all_ids().join(" | ")
                );
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    let known = all_ids();
    for id in &requested {
        if id != "all" && !known.contains(&id.as_str()) {
            eprintln!(
                "unknown figure id `{id}`; expected one of: all {}",
                known.join(" ")
            );
            std::process::exit(2);
        }
    }
    if requested.is_empty() && threads.is_some() {
        // `--threads N` alone runs just the load mode.
    } else if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = known.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv output directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }

    if !requested.is_empty() {
        println!(
            "Reproducing {} figure(s) at {:?} effort\n",
            requested.len(),
            effort
        );
    }
    let mut failed: Vec<String> = Vec::new();
    for id in &requested {
        let started = std::time::Instant::now();
        // A figure that panics (e.g. a degenerate sweep) must not take the
        // rest of the reproduction down with it — record it and move on.
        let result = std::panic::catch_unwind(|| generate(id, effort));
        let figure = match result {
            Ok(figure) => figure,
            Err(_) => {
                eprintln!("FAILED to generate `{id}`\n");
                failed.push(id.clone());
                continue;
            }
        };
        println!("{}", figure.to_text());
        println!("({} generated in {:.1?})\n", figure.id, started.elapsed());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", figure.id));
            if let Err(e) = std::fs::write(&path, figure.to_csv()) {
                eprintln!("FAILED to write {}: {e}\n", path.display());
                failed.push(id.clone());
            }
        }
    }
    if let Some(sites) = threads {
        const OPS_PER_SITE: usize = 2_000;
        const ITEMS: usize = 64;
        println!("Threaded load: {sites} site worker threads, one client thread each");
        let result = std::panic::catch_unwind(|| threaded_load(sites, OPS_PER_SITE, ITEMS, 42));
        match result {
            Ok(report) => {
                println!(
                    "{} sites x {OPS_PER_SITE} ops: {} committed ({} synchronized) in {:.2}s = {:.0} ops/s\n",
                    report.sites,
                    report.committed,
                    report.synchronized,
                    report.elapsed_secs,
                    report.throughput
                );
                if report.committed != (sites * OPS_PER_SITE) as u64 {
                    eprintln!("FAILED: threaded load lost operations\n");
                    failed.push("--threads".to_string());
                }
            }
            Err(_) => {
                eprintln!("FAILED to run the threaded load mode\n");
                failed.push("--threads".to_string());
            }
        }
    }
    if !failed.is_empty() {
        eprintln!(
            "{} of {} task(s) failed: {}",
            failed.len(),
            requested.len() + usize::from(threads.is_some()),
            failed.join(" ")
        );
        std::process::exit(1);
    }
}
