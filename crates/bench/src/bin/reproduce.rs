//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [--full] [--csv-dir DIR] [--list] [all | table1 | fig10 | ... | fig29]...
//! ```
//!
//! With no arguments, `all` is assumed. `--full` runs the larger sweeps
//! (closer to the paper's configuration); the default "quick" effort keeps
//! the whole reproduction within a few minutes. `--csv-dir` additionally
//! writes one CSV file per figure. `--list` prints the available figure and
//! table ids (one per line) and exits.
//!
//! Exit codes: `0` on success, `1` when one or more requested figures fail
//! to generate or write (the remaining figures are still produced), `2` on
//! usage errors.

use std::path::PathBuf;

use homeo_bench::{all_figure_ids, generate, Effort};

fn main() {
    let mut effort = Effort::Quick;
    let mut csv_dir: Option<PathBuf> = None;
    let mut requested: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => effort = Effort::Full,
            "--quick" => effort = Effort::Quick,
            "--list" => {
                for id in all_figure_ids() {
                    println!("{id}");
                }
                return;
            }
            "--csv-dir" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a directory argument");
                    std::process::exit(2);
                });
                csv_dir = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--full] [--csv-dir DIR] [--list] [all | {}]...",
                    all_figure_ids().join(" | ")
                );
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    let known = all_figure_ids();
    for id in &requested {
        if id != "all" && !known.contains(&id.as_str()) {
            eprintln!(
                "unknown figure id `{id}`; expected one of: all {}",
                known.join(" ")
            );
            std::process::exit(2);
        }
    }
    if requested.is_empty() || requested.iter().any(|r| r == "all") {
        requested = known.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv output directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }

    println!(
        "Reproducing {} figure(s) at {:?} effort\n",
        requested.len(),
        effort
    );
    let mut failed: Vec<String> = Vec::new();
    for id in &requested {
        let started = std::time::Instant::now();
        // A figure that panics (e.g. a degenerate sweep) must not take the
        // rest of the reproduction down with it — record it and move on.
        let result = std::panic::catch_unwind(|| generate(id, effort));
        let figure = match result {
            Ok(figure) => figure,
            Err(_) => {
                eprintln!("FAILED to generate `{id}`\n");
                failed.push(id.clone());
                continue;
            }
        };
        println!("{}", figure.to_text());
        println!("({} generated in {:.1?})\n", figure.id, started.elapsed());
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{}.csv", figure.id));
            if let Err(e) = std::fs::write(&path, figure.to_csv()) {
                eprintln!("FAILED to write {}: {e}\n", path.display());
                failed.push(id.clone());
            }
        }
    }
    if !failed.is_empty() {
        eprintln!(
            "{} of {} figure(s) failed: {}",
            failed.len(),
            requested.len(),
            failed.join(" ")
        );
        std::process::exit(1);
    }
}
