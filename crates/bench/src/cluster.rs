//! Cluster fault scenarios: the new-scenario surface of the `reproduce`
//! binary, beyond the paper's figures.
//!
//! Each scenario drives a seeded [`SimCluster`] through a fault schedule
//! and **verifies** the paper's claims as it goes — sites keep committing
//! locally while treaties hold, synchronizations stall across partitions
//! and complete after heal, a crashed site replays its WAL and rejoins —
//! panicking on any violation, so a regression turns into `reproduce`'s
//! non-zero exit code. The returned [`Figure`] reports what happened per
//! phase; with a fixed seed it is byte-for-byte reproducible.

use homeo_cluster::{
    free_loopback_addrs, spawn_cluster, tcp_load, ClientApi, ClusterConfig, ClusterSpec,
    DaemonFleet, SimCluster, SimNetConfig, TcpCluster, ThreadedCluster,
};
use homeo_lang::ids::ObjId;
use homeo_protocol::{OptimizerConfig, ReplicatedMode, WorkloadHints};
use homeo_runtime::{SiteOp, SiteRuntime};
use homeo_sim::{DetRng, RttMatrix, Timer};

use crate::report::Figure;

/// The cluster scenario ids, in presentation order.
pub fn all_scenario_ids() -> Vec<&'static str> {
    vec![
        "cluster-partition",
        "cluster-crash",
        "cluster-skew",
        "cluster-tcp",
        "scenario-join-leave",
    ]
}

/// Generates one cluster scenario by id.
///
/// # Panics
/// Panics on an unknown id (see [`all_scenario_ids`]) and on any violation
/// of the scenario's convergence/consistency checks.
pub fn scenario(id: &str) -> Figure {
    match id {
        "cluster-partition" => partition_then_heal(),
        "cluster-crash" => kill_then_recover(),
        "cluster-skew" => skewed_allowances(),
        "cluster-tcp" => tcp_loopback_smoke(),
        "scenario-join-leave" => join_leave_under_load(),
        other => panic!("unknown scenario id `{other}`"),
    }
}

const SITES: usize = 3;
const ITEMS: usize = 8;
const INITIAL: i64 = 40;
const REFILL: i64 = 40;

fn stock(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

fn homeo_mode() -> ReplicatedMode {
    ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 21,
        }),
    }
}

fn build(seed: u64, hints: Option<WorkloadHints>) -> SimCluster {
    let mut config = ClusterConfig::new(homeo_mode()).with_timer(Timer::fixed_zero());
    if let Some(hints) = hints {
        config = config.with_hints(hints);
    }
    let net = SimNetConfig {
        rtt: RttMatrix::table1().truncated(SITES),
        jitter_us: 5_000,
        drop_chance: 0.02,
        reorder_chance: 0.05,
        seed,
    };
    let mut cluster = SimCluster::new(SITES, config, net);
    for i in 0..ITEMS {
        cluster.register(stock(i), INITIAL, 1);
    }
    cluster
}

/// Issues `ops` seeded unit increments from the given sites — the
/// Payment-style operations that never threaten a `≥`-treaty, so they
/// commit locally even across a partition or with a peer down. Returns the
/// committed count (every one must commit without synchronizing).
fn run_increment_phase(
    cluster: &mut SimCluster,
    rng: &mut DetRng,
    sites: &[usize],
    ops: usize,
) -> u64 {
    let mut committed = 0;
    for _ in 0..ops {
        let site = sites[rng.index(sites.len())];
        let out = cluster.execute(
            site,
            SiteOp::Increment {
                obj: stock(rng.index(ITEMS)),
                amount: 1,
            },
        );
        assert!(
            out.committed && !out.synchronized,
            "increments must commit locally under any fault"
        );
        committed += 1;
    }
    committed
}

/// Issues `ops` seeded unit orders from the given sites, polling each op to
/// completion. Returns `(committed, synchronized)`.
fn run_phase(
    cluster: &mut SimCluster,
    rng: &mut DetRng,
    sites: &[usize],
    ops: usize,
) -> (u64, u64) {
    let mut committed = 0;
    let mut synchronized = 0;
    for _ in 0..ops {
        let site = sites[rng.index(sites.len())];
        let out = cluster.execute(
            site,
            SiteOp::Order {
                obj: stock(rng.index(ITEMS)),
                amount: 1,
                refill_to: Some(REFILL - 1),
            },
        );
        assert!(out.committed, "a polled order must commit");
        committed += 1;
        if out.synchronized {
            synchronized += 1;
        }
    }
    (committed, synchronized)
}

/// Folds everything and checks that every site observes the same value for
/// every counter. Returns the summed logical value.
fn assert_converged(cluster: &mut SimCluster) -> i64 {
    cluster.synchronize(0);
    let mut total = 0;
    for i in 0..ITEMS {
        let expected = cluster.value_at(0, &stock(i));
        for site in 1..SITES {
            assert_eq!(
                cluster.value_at(site, &stock(i)),
                expected,
                "stock[{i}] diverged at site {site} after the fold"
            );
        }
        assert_eq!(cluster.logical_value(&stock(i)), expected);
        total += expected;
    }
    total
}

/// `cluster-partition`: cut site 0 off, keep committing on both sides of
/// the partition (the paper's claim: no coordination while treaties hold),
/// heal, and verify convergence.
fn partition_then_heal() -> Figure {
    let mut fig = Figure::new(
        "cluster-partition",
        "Partition-then-heal over the Table 1 network (3 sites, seeded faults): \
         local commits continue through the cut; the fold after heal converges",
        vec![
            "phase".into(),
            "committed".into(),
            "synchronized".into(),
            "total_after_fold".into(),
        ],
    );
    let mut cluster = build(0xA11CE, None);
    let mut rng = DetRng::seed_from(0xA11CE);
    let (c1, s1) = run_phase(&mut cluster, &mut rng, &[0, 1, 2], 400);
    assert!(s1 > 0, "draining the headroom must synchronize");
    let t1 = assert_converged(&mut cluster);
    fig.push_row("connected", vec![c1 as f64, s1 as f64, t1 as f64]);

    cluster.partition(0, 1);
    cluster.partition(0, 2);
    // Both sides keep serving through the cut: Payment-style increments are
    // treaty-covered on any state, so no round ever needs the dead link.
    let c2a = run_increment_phase(&mut cluster, &mut rng, &[0], 40);
    let c2b = run_increment_phase(&mut cluster, &mut rng, &[1, 2], 80);
    fig.push_row("partitioned", vec![(c2a + c2b) as f64, 0.0, 0.0]);

    cluster.heal_all();
    let (c3, s3) = run_phase(&mut cluster, &mut rng, &[0, 1, 2], 200);
    let t3 = assert_converged(&mut cluster);
    fig.push_row("healed", vec![c3 as f64, s3 as f64, t3 as f64]);
    fig
}

/// `cluster-crash`: kill a site mid-run, keep the survivors serving,
/// restart it from its WAL and verify it rejoins with nothing lost.
fn kill_then_recover() -> Figure {
    let mut fig = Figure::new(
        "cluster-crash",
        "Kill-then-recover over the Table 1 network (3 sites, seeded faults): \
         the WAL replays every committed decrement; treaty state refetches from a peer",
        vec![
            "phase".into(),
            "committed".into(),
            "synchronized".into(),
            "total_after_fold".into(),
        ],
    );
    let mut cluster = build(0xC4A54, None);
    let mut rng = DetRng::seed_from(0xC4A54);
    let (c1, s1) = run_phase(&mut cluster, &mut rng, &[0, 1, 2], 400);
    assert!(s1 > 0, "draining the headroom must synchronize");
    let t1 = assert_converged(&mut cluster);
    fig.push_row("healthy", vec![c1 as f64, s1 as f64, t1 as f64]);

    // The fold above left every site quiescent, so the kill is a clean
    // fail-stop. Record the victim's visible values to check WAL replay.
    let victim = 2;
    let pre_crash: Vec<i64> = (0..ITEMS)
        .map(|i| cluster.value_at(victim, &stock(i)))
        .collect();
    cluster.kill(victim);
    // The survivors keep serving treaty-covered work while the peer is gone.
    let c2 = run_increment_phase(&mut cluster, &mut rng, &[0, 1], 80);
    fig.push_row("one site down", vec![c2 as f64, 0.0, 0.0]);

    cluster.restart(victim);
    cluster.run_until_quiescent();
    for (i, expected) in pre_crash.iter().enumerate() {
        assert_eq!(
            cluster.value_at(victim, &stock(i)),
            *expected,
            "stock[{i}]: WAL recovery must replay every committed write"
        );
    }
    let (c3, s3) = run_phase(&mut cluster, &mut rng, &[0, 1, 2], 200);
    let t3 = assert_converged(&mut cluster);
    fig.push_row("recovered", vec![c3 as f64, s3 as f64, t3 as f64]);
    fig
}

/// `cluster-skew`: the same skewed traffic under uniform vs skew-aware
/// workload hints — the optimizer parks the headroom where the load is, so
/// the hot site synchronizes less.
fn skewed_allowances() -> Figure {
    let mut fig = Figure::new(
        "cluster-skew",
        "Skewed traffic (80/10/10) under uniform vs skew-aware allowances \
         (3 sites, seeded faults): hints shift headroom to the hot site",
        vec![
            "hints".into(),
            "committed".into(),
            "synchronized".into(),
            "local_commits".into(),
        ],
    );
    for (label, hints) in [
        ("uniform", None),
        (
            "skew-aware",
            Some(WorkloadHints {
                site_weights: vec![0.8, 0.1, 0.1],
                expected_amount: 1,
            }),
        ),
    ] {
        let mut cluster = build(0x5EED, hints);
        let mut rng = DetRng::seed_from(0x5EED);
        // 80% of the traffic hits site 0.
        let sites = [0, 0, 0, 0, 0, 0, 0, 0, 1, 2];
        let (committed, synchronized) = run_phase(&mut cluster, &mut rng, &sites, 600);
        assert_converged(&mut cluster);
        let stats = cluster.stats();
        fig.push_row(
            label,
            vec![
                committed as f64,
                synchronized as f64,
                stats.local_commits as f64,
            ],
        );
    }
    fig
}

/// `cluster-tcp`: a real-socket loopback cluster end to end. Spawns one
/// `homeostasisd` **process per site** when the binary is next to the
/// running executable (it is, after `cargo build`), falling back to
/// in-process TCP site nodes otherwise (every frame still crosses a
/// loopback socket); then runs the `homeo-load` client — seeded
/// `submit_batch` order traffic from one thread per site — and panics
/// unless the self-verified conservation check passes: all operations
/// committed, every site reports the same folded state, and the folded
/// total equals the seeded total minus the committed decrements.
fn tcp_loopback_smoke() -> Figure {
    let mut fig = Figure::new(
        "cluster-tcp",
        "Loopback TCP cluster smoke (3 sites, one homeostasisd process each when \
         the binary is available): homeo-load traffic, conservation self-verified",
        vec![
            "deployment".into(),
            "committed".into(),
            "synchronized".into(),
            "total_after_fold".into(),
        ],
    );
    let spec = ClusterSpec::new(
        free_loopback_addrs(3).expect("reserve loopback addresses for the TCP smoke"),
    );

    // A multi-process deployment needs the homeostasisd binary; `reproduce`
    // and the test harnesses have it in their own target directory.
    let daemon = std::env::current_exe().ok().and_then(|exe| {
        let dir = exe.parent()?;
        [dir.join("homeostasisd"), dir.join("../homeostasisd")]
            .into_iter()
            .find(|p| p.is_file())
    });
    let (label, _fleet, _nodes) = match daemon {
        Some(bin) => {
            // The fleet kills its daemons (and removes its temp config) on
            // drop, even when the load client panics.
            let fleet = DaemonFleet::spawn(&bin, &spec).expect("spawn the homeostasisd fleet");
            ("multi-process", Some(fleet), Vec::new())
        }
        None => {
            eprintln!(
                "cluster-tcp: homeostasisd binary not found next to the executable; \
                 running the sites in-process (still over loopback TCP)"
            );
            let nodes = spawn_cluster(&spec, ClusterConfig::new(spec.mode))
                .expect("spawn in-process TCP sites");
            ("in-process", None, nodes)
        }
    };
    let report = tcp_load(&spec, 1_500, 16, 0x7C9).expect("run the homeo-load client");
    assert_eq!(
        report.committed, report.issued,
        "the TCP load lost operations"
    );
    assert!(
        report.synchronized > 0,
        "draining the headroom must synchronize over the sockets"
    );
    assert!(
        report.conserved,
        "counter conservation failed: seeded {} − committed {} must equal folded {}",
        report.initial_total, report.committed, report.final_total
    );
    fig.push_row(
        label,
        vec![
            report.committed as f64,
            report.synchronized as f64,
            report.final_total as f64,
        ],
    );
    fig
}

/// The elastic surface the join/leave scenario needs on top of
/// [`ClientApi`]: grow the cluster by one site, retire one member. All
/// three backends provide these as inherent methods; the trait lets one
/// driver scale them all.
trait ElasticApi: ClientApi {
    /// Spawns a fresh site, joins it to the live cluster and blocks until
    /// the epoch-bumped roster is committed. Returns the new site id.
    fn join_site(&mut self) -> usize;
    /// Retires a member site (shards handed off, unsynchronized deltas
    /// folded into the survivors) and blocks until the shrunk roster is
    /// committed.
    fn leave_site(&mut self, site: usize);
}

impl ElasticApi for ThreadedCluster {
    fn join_site(&mut self) -> usize {
        self.join()
    }
    fn leave_site(&mut self, site: usize) {
        self.leave(site)
    }
}

impl ElasticApi for SimCluster {
    fn join_site(&mut self) -> usize {
        self.join()
    }
    fn leave_site(&mut self, site: usize) {
        self.leave(site)
    }
}

impl ElasticApi for TcpCluster {
    fn join_site(&mut self) -> usize {
        self.join()
    }
    fn leave_site(&mut self, site: usize) {
        self.leave(site)
    }
}

/// Initial stock per counter in the join/leave scenario: enough headroom
/// that the seeded decrement stream never drains a counter to its lower
/// bound (so every member-site order must commit), small enough that the
/// allowance re-splits stay exercised.
const ELASTIC_INITIAL: i64 = 60;

/// Submits `ops` seeded unit decrements round-robin across `sites`
/// **without** polling them — they stay in flight while the caller changes
/// the membership — and returns how many were parked on each site.
fn submit_in_flight(
    cluster: &mut dyn ElasticApi,
    rng: &mut DetRng,
    sites: &[usize],
    ops: usize,
) -> Vec<(usize, usize)> {
    let mut parked: Vec<(usize, usize)> = sites.iter().map(|&site| (site, 0)).collect();
    for n in 0..ops {
        let slot = n % parked.len();
        cluster.submit(
            parked[slot].0,
            SiteOp::Order {
                obj: stock(rng.index(ITEMS)),
                amount: 1,
                refill_to: None,
            },
        );
        parked[slot].1 += 1;
    }
    parked
}

/// Polls the in-flight submissions to completion and returns the committed
/// count. With `must_commit`, every outcome must have committed (member
/// sites never lose an order to a membership change); without it,
/// uncommitted no-ops are allowed — the retiring site completes whatever
/// was parked on it as no-ops once evicted, and whatever it *did* commit
/// was folded into the survivors' bases by the handoff.
fn collect_in_flight(
    cluster: &mut dyn ElasticApi,
    parked: &[(usize, usize)],
    must_commit: bool,
) -> u64 {
    let mut committed = 0;
    for &(site, count) in parked {
        let outcomes = cluster.poll(site);
        assert_eq!(
            outcomes.len(),
            count,
            "site {site} lost in-flight operations across the membership change"
        );
        for out in &outcomes {
            assert!(
                out.committed || !must_commit,
                "an in-flight order on member site {site} must commit"
            );
            committed += u64::from(out.committed);
        }
    }
    committed
}

/// Issues `ops` seeded unit decrements from the given member sites, each
/// polled to completion and required to commit. Returns the committed
/// count.
fn run_decrement_phase(
    cluster: &mut dyn ElasticApi,
    rng: &mut DetRng,
    sites: &[usize],
    ops: usize,
) -> u64 {
    for _ in 0..ops {
        let site = sites[rng.index(sites.len())];
        let out = cluster.execute(
            site,
            SiteOp::Order {
                obj: stock(rng.index(ITEMS)),
                amount: 1,
                refill_to: None,
            },
        );
        assert!(
            out.committed,
            "a polled order on member site {site} must commit"
        );
    }
    ops as u64
}

/// Folds everything through `members[0]` and gates the two elastic
/// invariants: every **member** site observes the same value for every
/// counter (non-members hold stale engine state by design — their deltas
/// were folded out at handoff), and the folded total equals the seeded
/// total minus every decrement ever committed — conservation across
/// however many joins and leaves have happened. Returns the folded total.
fn assert_elastic_converged(
    cluster: &mut dyn ElasticApi,
    members: &[usize],
    committed: u64,
) -> i64 {
    cluster.synchronize(members[0]);
    let mut total = 0;
    for i in 0..ITEMS {
        let expected = cluster.value_at(members[0], &stock(i));
        for &site in &members[1..] {
            assert_eq!(
                cluster.value_at(site, &stock(i)),
                expected,
                "stock[{i}] diverged at member site {site} after the fold"
            );
        }
        total += expected;
    }
    assert_eq!(
        total,
        ITEMS as i64 * ELASTIC_INITIAL - committed as i64,
        "conservation violated: seeded {} − committed {committed} decrements \
         must survive the membership changes",
        ITEMS as i64 * ELASTIC_INITIAL
    );
    total
}

/// Scales one backend 3 → 4 → 3 under load and appends its three phase
/// rows to the figure. The join and the leave each race a window of
/// in-flight submissions, including (for the leave) orders parked on the
/// retiring site itself.
fn drive_elastic(cluster: &mut dyn ElasticApi, backend: &str, fig: &mut Figure) {
    for i in 0..ITEMS {
        cluster.register_counter(stock(i), ELASTIC_INITIAL, 1);
    }
    let mut rng = DetRng::seed_from(0xE1A57);
    let mut committed: u64 = 0;

    // Phase 1: steady state at the founding membership.
    committed += run_decrement_phase(cluster, &mut rng, &[0, 1, 2], 60);
    let t1 = assert_elastic_converged(cluster, &[0, 1, 2], committed);
    fig.push_row(
        format!("{backend} 3 sites"),
        vec![committed as f64, 3.0, t1 as f64],
    );

    // Phase 2: join under load — the parked submissions race the counter
    // freezes, delta folds and allowance re-splits of the handoff.
    let parked = submit_in_flight(cluster, &mut rng, &[0, 1, 2], 36);
    let joined = cluster.join_site();
    assert_eq!(joined, 3, "the fourth site gets the next id");
    committed += collect_in_flight(cluster, &parked, true);
    committed += run_decrement_phase(cluster, &mut rng, &[0, 1, 2, 3], 60);
    let t2 = assert_elastic_converged(cluster, &[0, 1, 2, 3], committed);
    fig.push_row(
        format!("{backend} join site 3"),
        vec![committed as f64, 4.0, t2 as f64],
    );

    // Phase 3: retire site 1 under load. Survivor submissions must all
    // commit; the retiree's parked orders may commit (before the freeze,
    // then folded out by the handoff) or complete as no-ops (after the
    // eviction) — conservation must hold either way.
    let parked = submit_in_flight(cluster, &mut rng, &[0, 2, 3], 24);
    let on_leaver = submit_in_flight(cluster, &mut rng, &[1], 6);
    cluster.leave_site(1);
    committed += collect_in_flight(cluster, &parked, true);
    committed += collect_in_flight(cluster, &on_leaver, false);
    committed += run_decrement_phase(cluster, &mut rng, &[0, 2, 3], 60);
    let t3 = assert_elastic_converged(cluster, &[0, 2, 3], committed);
    fig.push_row(
        format!("{backend} retire site 1"),
        vec![committed as f64, 3.0, t3 as f64],
    );
}

/// `scenario-join-leave`: scale 3 → 4 → 3 sites under load on all three
/// backends — worker threads over channels, the deterministic simulator
/// over the Table 1 WAN with seeded faults, and real TCP sockets — gating
/// conservation and cross-site agreement after every membership change.
/// Any violation panics, so `reproduce scenario-join-leave` exits non-zero
/// on a broken handoff.
fn join_leave_under_load() -> Figure {
    let mut fig = Figure::new(
        "scenario-join-leave",
        "Elastic membership under load (3 → 4 → 3 sites, all three backends): \
         in-flight orders race the shard handoff; conservation and cross-site \
         agreement gated after every change",
        vec![
            "phase".into(),
            "committed".into(),
            "members".into(),
            "total_after_fold".into(),
        ],
    );
    {
        let mut cluster = ThreadedCluster::new(
            SITES,
            ClusterConfig::new(homeo_mode()).with_timer(Timer::fixed_zero()),
        );
        drive_elastic(&mut cluster, "threaded", &mut fig);
    }
    {
        // The sim backend keeps the fault schedule of the other cluster
        // scenarios: Table 1 WAN RTTs, 5 ms jitter, seeded drops and
        // reorders — the handoff must commit through all of it. The RTT
        // matrix covers one extra datacenter because the run grows to
        // four sites.
        let net = SimNetConfig {
            rtt: RttMatrix::table1().truncated(SITES + 1),
            jitter_us: 5_000,
            drop_chance: 0.02,
            reorder_chance: 0.05,
            seed: 0xE1A57,
        };
        let mut cluster = SimCluster::new(
            SITES,
            ClusterConfig::new(homeo_mode()).with_timer(Timer::fixed_zero()),
            net,
        );
        drive_elastic(&mut cluster, "sim", &mut fig);
    }
    {
        let mut cluster = TcpCluster::new(
            SITES,
            ClusterConfig::new(homeo_mode()).with_timer(Timer::fixed_zero()),
        );
        drive_elastic(&mut cluster, "tcp", &mut fig);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_id_generates_and_verifies() {
        for id in all_scenario_ids() {
            let fig = scenario(id);
            assert_eq!(fig.id, id);
            assert!(!fig.rows.is_empty());
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        assert_eq!(scenario("cluster-partition"), scenario("cluster-partition"));
        assert_eq!(scenario("cluster-crash"), scenario("cluster-crash"));
    }

    #[test]
    #[should_panic(expected = "unknown scenario id")]
    fn unknown_scenarios_panic() {
        let _ = scenario("cluster-nope");
    }
}
