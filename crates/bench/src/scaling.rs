//! The N-site scaling sweep (`reproduce scaling`, or any figure run with
//! `--sites N,N,...`): how throughput and synchronization cost behave as
//! the cluster grows, on all three backends.
//!
//! One row per site count, three measurement families per row:
//!
//! * `threaded_ops_s` — wall-clock committed ops/sec of the channel
//!   transport ([`threaded_load`]): real threads, no network, the upper
//!   bound the protocol itself allows at that membership.
//! * `tcp_ops_s` — wall-clock committed ops/sec over real loopback
//!   sockets (in-process [`spawn_cluster`] site nodes driven by the
//!   pipelined [`tcp_load`] client), with the load's counter-conservation
//!   self-check asserted.
//! * `sim_committed` / `sim_op_ms` — the deterministic simulator under the
//!   paper's Table 1 five-datacenter WAN geometry with seeded faults
//!   (5 ms jitter, 2% drop, 5% reorder): committed operations and
//!   **virtual** milliseconds per committed operation. Site counts past
//!   five tile the datacenters ([`RttMatrix::tiled`]) — site `i` lives in
//!   datacenter `i % 5` with a 2 ms intra-datacenter RTT — so the WAN
//!   distances stay the paper's.
//!
//! Every point self-verifies as it generates (lost operations, a
//! conservation violation or cross-site disagreement after the final fold
//! panic, which `reproduce` turns into a non-zero exit). The sim column is
//! byte-for-byte deterministic; the two wall-clock columns are gated in CI
//! by conservative floors in `crates/bench/baseline.json`, and `sim_op_ms`
//! by a ceiling (the `_ms` suffix inverts the baseline rule).

use homeo_cluster::{
    free_loopback_addrs, spawn_cluster, tcp_load, threaded_load, ClusterConfig, ClusterSpec,
    SimCluster, SimNetConfig,
};
use homeo_lang::ids::ObjId;
use homeo_protocol::{OptimizerConfig, ReplicatedMode};
use homeo_runtime::{SiteOp, SiteRuntime};
use homeo_sim::{DetRng, RttMatrix, Timer, MICROS_PER_MILLI};

use crate::figures::Effort;
use crate::report::Figure;

/// Counters under load in the simulated column.
const ITEMS: usize = 8;
/// Initial stock per simulated counter — small enough that the load drains
/// headroom and pays real WAN synchronization rounds.
const INITIAL: i64 = 40;
/// Refill target of the simulated orders (keeps the workload sustainable).
const REFILL: i64 = 40;
/// Intra-datacenter RTT used when tiling the Table 1 geometry past five
/// sites, in milliseconds.
const SAME_DC_RTT_MS: u64 = 2;

/// The site counts swept when `--sites` is not given: the paper's 2/3/5
/// datacenter points at quick effort, extended past the Table 1 geometry
/// (tiled datacenters) at full effort.
pub fn default_site_counts(effort: Effort) -> Vec<usize> {
    match effort {
        Effort::Quick => vec![2, 3, 5],
        Effort::Full => vec![2, 3, 5, 8, 16],
    }
}

fn stock(i: usize) -> ObjId {
    ObjId::new(format!("stock[{i}]"))
}

/// Generates the `scaling` figure over the given site counts.
///
/// # Panics
/// Panics on a site count below 2, on any lost operation, and on any
/// conservation or cross-site-agreement violation found by the per-point
/// self-checks.
pub fn sweep(site_counts: &[usize], effort: Effort) -> Figure {
    assert!(
        !site_counts.is_empty(),
        "the scaling sweep needs at least one site count"
    );
    let (threaded_ops, tcp_ops, sim_ops) = match effort {
        Effort::Quick => (2_000, 1_000, 150),
        Effort::Full => (5_000, 3_000, 400),
    };
    let mut fig = Figure::new(
        "scaling",
        "N-site scaling: threaded/TCP wall-clock ops/s (loopback) and simulated \
         virtual ms per op under the Table 1 WAN geometry with seeded faults \
         (sites past 5 tile the datacenters)",
        vec![
            "sites".into(),
            "threaded_ops_s".into(),
            "tcp_ops_s".into(),
            "sim_committed".into(),
            "sim_op_ms".into(),
        ],
    );
    for &sites in site_counts {
        assert!(sites >= 2, "a scaling point needs at least two sites");
        let threaded = threaded_load(sites, threaded_ops, 64, 42);
        assert_eq!(
            threaded.committed,
            (sites * threaded_ops) as u64,
            "the threaded load lost operations at {sites} sites"
        );
        let tcp_ops_s = tcp_point(sites, tcp_ops);
        let (sim_committed, sim_op_ms) = sim_point(sites, sim_ops);
        fig.push_row(
            sites.to_string(),
            vec![threaded.throughput, tcp_ops_s, sim_committed, sim_op_ms],
        );
    }
    fig
}

/// One real-socket point: `sites` in-process TCP site nodes on loopback,
/// the pipelined load client, conservation asserted. Returns committed
/// ops/sec.
fn tcp_point(sites: usize, ops_per_site: usize) -> f64 {
    let spec = ClusterSpec::new(
        free_loopback_addrs(sites).expect("reserve loopback addresses for the scaling sweep"),
    );
    // Held until the report is in: dropping the nodes shuts the sites down.
    let _nodes =
        spawn_cluster(&spec, ClusterConfig::new(spec.mode)).expect("spawn in-process TCP sites");
    let report = tcp_load(&spec, ops_per_site, 16, 0x5CA1E).expect("run the TCP load client");
    assert!(
        report.conserved,
        "TCP conservation failed at {sites} sites: seeded {} − committed {} must \
         equal folded {} with every site agreeing",
        report.initial_total, report.committed, report.final_total
    );
    report.throughput
}

/// One simulated point under the Table 1 WAN geometry with seeded faults.
/// Returns `(committed, virtual ms per committed op)`.
fn sim_point(sites: usize, ops_per_site: usize) -> (f64, f64) {
    let table1 = RttMatrix::table1();
    let rtt = if sites <= table1.sites() {
        table1.truncated(sites)
    } else {
        table1.tiled(sites, SAME_DC_RTT_MS)
    };
    let config = ClusterConfig::new(ReplicatedMode::Homeostasis {
        optimizer: Some(OptimizerConfig {
            lookahead: 10,
            futures: 2,
            seed: 21,
        }),
    })
    .with_timer(Timer::fixed_zero());
    let net = SimNetConfig {
        rtt,
        jitter_us: 5_000,
        drop_chance: 0.02,
        reorder_chance: 0.05,
        seed: 0x5CA1E ^ sites as u64,
    };
    let mut cluster = SimCluster::new(sites, config, net);
    for i in 0..ITEMS {
        cluster.register(stock(i), INITIAL, 1);
    }
    let mut rng = DetRng::seed_from(0x5CA1E ^ sites as u64);
    let started = cluster.clock();
    let total = sites * ops_per_site;
    for n in 0..total {
        let out = cluster.execute(
            n % sites,
            SiteOp::Order {
                obj: stock(rng.index(ITEMS)),
                amount: 1,
                refill_to: Some(REFILL - 1),
            },
        );
        assert!(out.committed, "a polled order must commit ({sites} sites)");
    }
    let elapsed_micros = cluster.clock() - started;
    // Cross-site agreement after the final fold: every member observes the
    // same value for every counter, and it matches the authoritative
    // coordinator-side total.
    cluster.synchronize(0);
    for i in 0..ITEMS {
        let expected = cluster.value_at(0, &stock(i));
        for site in 1..sites {
            assert_eq!(
                cluster.value_at(site, &stock(i)),
                expected,
                "stock[{i}] diverged at site {site} after the fold ({sites} sites)"
            );
        }
        assert_eq!(cluster.logical_value(&stock(i)), expected);
    }
    let op_ms = elapsed_micros as f64 / MICROS_PER_MILLI as f64 / total as f64;
    (total as f64, op_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_point_generates_and_verifies() {
        let fig = sweep(&[2], Effort::Quick);
        assert_eq!(fig.id, "scaling");
        assert_eq!(fig.rows.len(), 1);
        assert_eq!(fig.rows[0].0, "2");
        let values = &fig.rows[0].1;
        assert!(values[0] > 0.0 && values[1] > 0.0, "throughput columns");
        assert_eq!(values[2], (2 * 150) as f64, "sim committed count");
        assert!(values[3] >= 0.0, "virtual ms per op");
    }

    #[test]
    fn default_site_counts_scale_with_effort() {
        assert_eq!(default_site_counts(Effort::Quick), vec![2, 3, 5]);
        assert_eq!(default_site_counts(Effort::Full), vec![2, 3, 5, 8, 16]);
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn a_one_site_point_is_rejected() {
        let _ = sweep(&[1], Effort::Quick);
    }
}
