//! A minimal JSON value, writer and parser.
//!
//! The workspace is fully offline (no `serde_json`), so the machine-readable
//! bench output (`reproduce --json`) and the CI baseline check
//! (`reproduce --baseline`) are built on this self-contained module. It
//! supports exactly the JSON subset the bench schema uses — which is plain
//! RFC 8259 JSON, so any external tool can consume the files.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values are written as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (the checked-in baseline format,
    /// so diffs stay reviewable).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_str(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document. Returns `None` on any syntax error or on
    /// trailing non-whitespace.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }
}

impl std::fmt::Display for Json {
    /// Compact (single-line) JSON.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(bytes: &[u8], pos: &mut usize, expected: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'n' => parse_literal(bytes, pos, b"null", Json::Null),
        b't' => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                eat(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &[u8], value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Some(value)
    } else {
        None
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).ok()?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn round_trips_the_bench_schema_shape() {
        let doc = obj(vec![
            ("schema_version", Json::Num(1.0)),
            (
                "figures",
                Json::Arr(vec![obj(vec![
                    ("id", Json::Str("bench".into())),
                    (
                        "rows",
                        Json::Arr(vec![obj(vec![
                            ("label", Json::Str("64".into())),
                            (
                                "values",
                                Json::Arr(vec![Json::Num(12345.678), Json::Num(-1.0)]),
                            ),
                        ])]),
                    ),
                ])]),
            ),
        ]);
        let compact = doc.to_string();
        assert_eq!(Json::parse(&compact), Some(doc.clone()));
        let pretty = doc.to_pretty_string();
        assert_eq!(Json::parse(&pretty), Some(doc));
    }

    #[test]
    fn accessors_navigate_objects_and_arrays() {
        let doc = Json::parse(r#"{"a": [1, 2.5], "s": "x", "n": null}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(2.5)
        );
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("n"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = Json::Str("a\"b\\c\nd\tμ".into());
        let text = s.to_string();
        assert_eq!(Json::parse(&text), Some(s));
        // `\u` escapes decode too.
        assert_eq!(
            Json::parse("\"\\u0041\\u00b5\""),
            Some(Json::Str("Aµ".into()))
        );
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(1e20).to_string(), "100000000000000000000");
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1] trailing",
        ] {
            assert_eq!(Json::parse(bad), None, "`{bad}` parsed");
        }
    }
}
