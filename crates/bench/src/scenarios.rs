//! Self-verifying application scenarios over the **general** `L++` path
//! and the cluster backends — the `scenario-*` surface of `reproduce`.
//!
//! Where the `cluster-*` scenarios exercise the replicated-counter fast
//! path under faults, these run registered transaction *programs* (and the
//! applications the paper motivates them with) end to end, through the
//! unified [`ClientApi`] surface, and panic on any violation of the
//! invariant each application cares about — so a regression becomes
//! `reproduce`'s non-zero exit code:
//!
//! * `scenario-flash-sale` — a hot item drains under skewed
//!   order traffic on **all three** cluster backends (threaded / sim /
//!   TCP); every backend must produce the serial `GeneralRuntime` oracle's
//!   per-operation outcomes and byte-identical folded state.
//! * `scenario-rate-limiter` — 10⁵ registered token
//!   buckets (the namespace scale of a per-user rate limiter); seeded
//!   traffic over a hot subset must conserve tokens exactly across refills
//!   and leave every replica in agreement.
//! * `scenario-seatmap` — an exact sell-out: every seat of
//!   every row sold exactly once over the seeded-faulty simulated network
//!   (drops, jitter, reordering) with a mid-run crash and WAL recovery; no
//!   seat may be sold twice (conservation) and every row must end exactly
//!   empty.
//! * `scenario-tpcc-neworder` — TPC-C's NewOrder stock
//!   decrement as registered programs over the `stock[w.d.i]` namespace,
//!   executed over **real TCP sockets** and compared, operation by
//!   operation, against the serial oracle.

use homeo_cluster::{
    ClientApi, ClusterConfig, ClusterRuntime, ProgramBundle, SimNetConfig, TcpCluster,
};
use homeo_lang::ast::Transaction;
use homeo_lang::ids::ObjId;
use homeo_lang::{programs, Database};
use homeo_protocol::{HomeostasisCluster, Loc, ReplicatedMode};
use homeo_runtime::{GeneralRuntime, OpOutcome, SiteOp, SiteRuntime};
use homeo_sim::{DetRng, RttMatrix, Timer};

use crate::report::Figure;

/// The general-path scenario ids, in presentation order.
pub fn all_general_scenario_ids() -> Vec<&'static str> {
    vec![
        "scenario-flash-sale",
        "scenario-rate-limiter",
        "scenario-seatmap",
        "scenario-tpcc-neworder",
    ]
}

/// Generates one general-path scenario by id.
///
/// # Panics
/// Panics on an unknown id (see [`all_general_scenario_ids`]) and on any
/// violation of the scenario's self-checks.
pub fn scenario(id: &str) -> Figure {
    match id {
        "scenario-flash-sale" => flash_sale(),
        "scenario-rate-limiter" => rate_limiter(),
        "scenario-seatmap" => seat_map(),
        "scenario-tpcc-neworder" => tpcc_new_order(),
        other => panic!("unknown scenario id `{other}`"),
    }
}

/// A registered program fixture: one decrement-or-refill transaction per
/// object, homed where the object lives.
struct ProgramFixture {
    txns: Vec<Transaction>,
    loc: Loc,
    initial: Database,
}

impl ProgramFixture {
    fn new(objects: &[(ObjId, usize, i64)], refill: i64) -> Self {
        let txns = objects
            .iter()
            .map(|(obj, _, _)| programs::order_for_object(obj.clone(), refill))
            .collect();
        let loc = Loc::from_pairs(objects.iter().map(|(obj, site, _)| (obj.clone(), *site)));
        let initial =
            Database::from_pairs(objects.iter().map(|(obj, _, value)| (obj.clone(), *value)));
        ProgramFixture { txns, loc, initial }
    }

    fn bundle(&self) -> ProgramBundle {
        ProgramBundle::from_transactions(&self.txns, &self.loc, &self.initial, None)
    }

    fn oracle(&self, sites: usize) -> GeneralRuntime {
        GeneralRuntime::new(
            HomeostasisCluster::new(
                self.txns.clone(),
                self.loc.clone(),
                sites,
                self.initial.clone(),
                None,
            )
            .with_timer(Timer::fixed_zero()),
        )
    }
}

/// Runs `schedule` through the serial oracle, recording per-operation
/// outcomes and the folded global state.
fn run_oracle(
    fixture: &ProgramFixture,
    sites: usize,
    schedule: &[usize],
) -> (Vec<OpOutcome>, Vec<usize>, Database) {
    let mut oracle = fixture.oracle(sites);
    let homes: Vec<usize> = (0..fixture.txns.len())
        .map(|i| oracle.home_site(i))
        .collect();
    let outcomes: Vec<OpOutcome> = schedule
        .iter()
        .map(|&index| oracle.execute(homes[index], SiteOp::Transaction { index }))
        .collect();
    assert!(
        outcomes.iter().all(|o| o.committed),
        "the serial oracle must commit every registered transaction"
    );
    oracle.synchronize(0);
    let db = oracle.cluster().global_database();
    (outcomes, homes, db)
}

/// Replays `schedule` on a cluster backend through [`ClientApi`] and checks
/// it against the oracle: identical per-operation `(committed,
/// synchronized, comm_rounds)`, and — after the fold — byte-identical state
/// on **every** site. Returns `(committed, synchronized)`.
fn replay_and_verify(
    label: &str,
    api: &mut dyn ClientApi,
    fixture: &ProgramFixture,
    schedule: &[usize],
    oracle_outcomes: &[OpOutcome],
    homes: &[usize],
    oracle_db: &Database,
) -> (u64, u64) {
    assert_eq!(
        api.register_program(&fixture.bundle()),
        fixture.txns.len() as u64,
        "{label}: program registration"
    );
    let mut committed = 0;
    let mut synchronized = 0;
    for (k, &index) in schedule.iter().enumerate() {
        let out = api.execute(homes[index], SiteOp::Transaction { index });
        assert!(!out.unsupported, "{label}: op {k} typed unsupported");
        assert_eq!(
            (out.committed, out.synchronized, out.comm_rounds),
            (
                oracle_outcomes[k].committed,
                oracle_outcomes[k].synchronized,
                oracle_outcomes[k].comm_rounds,
            ),
            "{label}: op {k} (txn {index}) diverged from the serial oracle"
        );
        committed += u64::from(out.committed);
        synchronized += u64::from(out.synchronized);
    }
    api.sync_all();
    for (obj, value) in oracle_db.iter() {
        for site in 0..api.sites() {
            assert_eq!(
                api.value_at(site, obj),
                value,
                "{label}: `{obj}` at site {site} diverged from the serial oracle"
            );
        }
    }
    (committed, synchronized)
}

fn fixed_config(mode: ReplicatedMode) -> ClusterConfig {
    ClusterConfig::new(mode).with_timer(Timer::fixed_zero())
}

/// `scenario-flash-sale`: one nearly-sold-out hot item takes 60% of the
/// order traffic while cold items idle — the flash-sale shape that makes
/// the hot treaty violate over and over. The same seeded schedule runs on
/// the serial oracle and on all three cluster backends; all four must
/// agree on every operation and on the folded state.
fn flash_sale() -> Figure {
    const SITES: usize = 3;
    const HOT_INITIAL: i64 = 5;
    const COLD_INITIAL: i64 = 30;
    const REFILL: i64 = 8;
    const OPS: usize = 240;

    let mut objects: Vec<(ObjId, usize, i64)> =
        vec![(ObjId::new("sale[hot]"), 0usize, HOT_INITIAL)];
    for i in 0..8usize {
        objects.push((
            ObjId::new(format!("sale[cold.{i}]")),
            i % SITES,
            COLD_INITIAL,
        ));
    }
    let fixture = ProgramFixture::new(&objects, REFILL);

    let mut rng = DetRng::seed_from(0xF1A5);
    let schedule: Vec<usize> = (0..OPS)
        .map(|_| {
            if rng.index(10) < 6 {
                0 // the hot item
            } else {
                1 + rng.index(objects.len() - 1)
            }
        })
        .collect();

    let (oracle_outcomes, homes, oracle_db) = run_oracle(&fixture, SITES, &schedule);
    assert!(
        oracle_outcomes.iter().filter(|o| o.synchronized).count() >= 10,
        "a 5-unit hot item under 60% of {OPS} orders must violate repeatedly"
    );

    let mut fig = Figure::new(
        "scenario-flash-sale",
        "Flash sale (1 hot + 8 cold items, 60% hot traffic, 3 sites): a registered \
         L++ order program on every cluster backend matches the serial oracle \
         operation-for-operation and byte-for-byte after the fold",
        vec![
            "backend".into(),
            "committed".into(),
            "synchronized".into(),
            "hot_after_fold".into(),
        ],
    );
    let hot_final = oracle_db.get(&objects[0].0);
    fig.push_row(
        "serial-oracle",
        vec![
            oracle_outcomes.len() as f64,
            oracle_outcomes.iter().filter(|o| o.synchronized).count() as f64,
            hot_final as f64,
        ],
    );
    let backends: Vec<(&str, ClusterRuntime)> = vec![
        (
            "cluster-threaded",
            ClusterRuntime::threaded(SITES, fixed_config(ReplicatedMode::EvenSplit)),
        ),
        (
            "cluster-sim",
            ClusterRuntime::sim(
                SITES,
                fixed_config(ReplicatedMode::EvenSplit),
                SimNetConfig::reliable(SITES, 100),
            ),
        ),
        (
            "cluster-tcp",
            ClusterRuntime::tcp(SITES, fixed_config(ReplicatedMode::EvenSplit)),
        ),
    ];
    for (label, mut cluster) in backends {
        let (committed, synchronized) = replay_and_verify(
            label,
            &mut cluster,
            &fixture,
            &schedule,
            &oracle_outcomes,
            &homes,
            &oracle_db,
        );
        fig.push_row(
            label,
            vec![committed as f64, synchronized as f64, hot_final as f64],
        );
    }
    fig
}

/// `scenario-rate-limiter`: a per-user token-bucket rate limiter at real
/// namespace scale — 10⁵ registered buckets on the threaded cluster. A
/// seeded request storm hits a hot subset; exhausted buckets refill (the
/// window reset). Verified: every request admitted, and exact token
/// conservation — `seeded − committed + refills × window = folded total` —
/// plus replica agreement on every hot bucket.
fn rate_limiter() -> Figure {
    const SITES: usize = 3;
    const BUCKETS: usize = 100_000;
    const WINDOW: i64 = 8; // tokens per bucket per window
    const HOT: usize = 64;
    const OPS: usize = 2_000;

    let bucket = |k: usize| ObjId::new(format!("bucket[{k}]"));
    let mut cluster = ClusterRuntime::threaded(SITES, fixed_config(ReplicatedMode::EvenSplit));
    for k in 0..BUCKETS {
        cluster.register_counter(bucket(k), WINDOW, 0);
    }
    let seeded_total = (BUCKETS as i64) * WINDOW;

    let mut rng = DetRng::seed_from(0x4A7E);
    let mut committed: u64 = 0;
    let mut refills: u64 = 0;
    let mut synchronized: u64 = 0;
    let mut touched: Vec<usize> = Vec::new();
    for _ in 0..OPS {
        // 90% of requests hit the hot subset, the rest roam the namespace.
        let k = if rng.index(10) < 9 {
            rng.index(HOT)
        } else {
            HOT + rng.index(BUCKETS - HOT)
        };
        touched.push(k);
        let out = cluster.execute(
            rng.index(SITES),
            SiteOp::Order {
                obj: bucket(k),
                amount: 1,
                // The window reset: refill to WINDOW, then admit (take 1).
                refill_to: Some(WINDOW - 1),
            },
        );
        assert!(out.committed, "an admitted request must commit");
        committed += 1;
        synchronized += u64::from(out.synchronized);
        refills += u64::from(out.refilled);
    }
    assert!(
        refills > 0,
        "2000 requests over 64 hot 8-token buckets must exhaust and refill"
    );
    cluster.synchronize(0);

    // Exact token conservation: every admit took one token; every refill
    // put a fresh window in place of whatever the bucket held (which a
    // refilling order drains to exactly 0 before resetting).
    touched.sort_unstable();
    touched.dedup();
    let mut folded_touched: i64 = 0;
    for &k in &touched {
        let expected = cluster.value_at(0, &bucket(k));
        for site in 1..SITES {
            assert_eq!(
                cluster.value_at(site, &bucket(k)),
                expected,
                "bucket[{k}] diverged at site {site} after the fold"
            );
        }
        folded_touched += expected;
    }
    let untouched_total = (BUCKETS - touched.len()) as i64 * WINDOW;
    let folded_total = folded_touched + untouched_total;
    let refilled_away: i64 = folded_total - (seeded_total - committed as i64);
    assert_eq!(
        refilled_away,
        refills as i64 * WINDOW,
        "token conservation: folded {folded_total} != seeded {seeded_total} − \
         admitted {committed} + {refills} refills × {WINDOW}"
    );

    let mut fig = Figure::new(
        "scenario-rate-limiter",
        "Per-user rate limiter at namespace scale (100k token buckets, 3 sites, \
         threaded cluster): seeded request storm over a hot subset; token \
         conservation and replica agreement verified exactly",
        vec![
            "metric".into(),
            "buckets".into(),
            "admitted".into(),
            "synchronized".into(),
            "refills".into(),
        ],
    );
    fig.push_row(
        "run",
        vec![
            BUCKETS as f64,
            committed as f64,
            synchronized as f64,
            refills as f64,
        ],
    );
    fig
}

/// `scenario-seatmap`: an exact sell-out under network faults. Every seat
/// row is a counter bounded at zero; the seeded booking storm sells each
/// row out exactly — every booking must commit, a mid-run crash must lose
/// nothing (WAL replay + peer state refetch), and the fold must leave
/// every row at exactly 0 on every replica: each seat sold once, none
/// sold twice.
fn seat_map() -> Figure {
    const SITES: usize = 3;
    const ROWS: usize = 24;
    const SEATS_PER_ROW: i64 = 12;

    let row_obj = |r: usize| ObjId::new(format!("seat[row.{r}]"));
    let net = SimNetConfig {
        rtt: RttMatrix::table1().truncated(SITES),
        jitter_us: 5_000,
        drop_chance: 0.02,
        reorder_chance: 0.05,
        seed: 0x5EA7,
    };
    let mut cluster = ClusterRuntime::sim(
        SITES,
        fixed_config(ReplicatedMode::Homeostasis { optimizer: None }),
        net,
    );
    for r in 0..ROWS {
        cluster.register_counter(row_obj(r), SEATS_PER_ROW, 0);
    }

    // The seeded booking storm: exactly SEATS_PER_ROW bookings per row, in
    // a globally shuffled order, issued from random sites.
    let mut bookings: Vec<usize> = (0..ROWS)
        .flat_map(|r| std::iter::repeat_n(r, SEATS_PER_ROW as usize))
        .collect();
    let mut rng = DetRng::seed_from(0x5EA7);
    for i in (1..bookings.len()).rev() {
        bookings.swap(i, rng.index(i + 1));
    }

    let mut committed: u64 = 0;
    let mut synchronized: u64 = 0;
    let crash_at = bookings.len() / 2;
    for (i, &r) in bookings.iter().enumerate() {
        if i == crash_at {
            // Quiesce, then fail-stop a site mid-sale and bring it back:
            // the WAL replays its committed bookings, the treaty state
            // refetches from a peer, and the sale continues.
            let ClusterRuntime::Sim(sim) = &mut cluster else {
                unreachable!("seat map runs on the sim backend");
            };
            sim.synchronize(0);
            sim.kill(2);
            sim.restart(2);
            sim.run_until_quiescent();
        }
        let out = cluster.execute(
            rng.index(SITES),
            SiteOp::Order {
                obj: row_obj(r),
                amount: 1,
                refill_to: None, // seats do not refill: a sell-out is final
            },
        );
        assert!(out.committed, "booking {i} (row {r}) failed to commit");
        committed += 1;
        synchronized += u64::from(out.synchronized);
    }
    cluster.synchronize(0);
    for r in 0..ROWS {
        for site in 0..SITES {
            assert_eq!(
                cluster.value_at(site, &row_obj(r)),
                0,
                "row {r} at site {site}: an exact sell-out must end at 0 \
                 (negative = a seat sold twice, positive = a booking lost)"
            );
        }
    }
    assert_eq!(committed, (ROWS as i64 * SEATS_PER_ROW) as u64);

    let mut fig = Figure::new(
        "scenario-seatmap",
        "Seat map sell-out under seeded faults (24 rows x 12 seats, 3 sites, \
         simulated Table-1 network with drops/jitter/reorder, one mid-sale \
         crash+recovery): every seat sold exactly once, every row ends at 0",
        vec![
            "metric".into(),
            "bookings".into(),
            "synchronized".into(),
            "rows_at_zero".into(),
        ],
    );
    fig.push_row(
        "run",
        vec![committed as f64, synchronized as f64, ROWS as f64],
    );
    fig
}

/// `scenario-tpcc-neworder`: TPC-C's NewOrder stock decrement as a
/// registered program set over the `stock[w.d.i]` namespace — one
/// transaction per (warehouse, district, item), homed at the warehouse's
/// site — executed over **real TCP sockets** and checked operation by
/// operation against the serial oracle.
///
/// The fixture is sized to the analysis, not the protocol: the joint
/// symbolic table is the *cross product* of the per-transaction tables
/// (Figure 4c), and each two-branch order program contributes a factor of
/// two, so `K` independent programs cost `2^K` joint rows. Twelve programs
/// (4096 rows) negotiate in milliseconds; twenty-four (16.7M rows) do not
/// terminate in useful time. Factoring the joint table over independent
/// write sets is the known fix and is tracked on the roadmap.
fn tpcc_new_order() -> Figure {
    const WAREHOUSES: usize = 3; // one per site
    const DISTRICTS: usize = 2;
    const ITEMS: usize = 2;
    const INITIAL: i64 = 10;
    const REFILL: i64 = 20;
    const OPS: usize = 200;

    let mut objects: Vec<(ObjId, usize, i64)> = Vec::new();
    for w in 0..WAREHOUSES {
        for d in 0..DISTRICTS {
            for i in 0..ITEMS {
                objects.push((ObjId::new(format!("stock[{w}.{d}.{i}]")), w, INITIAL));
            }
        }
    }
    let fixture = ProgramFixture::new(&objects, REFILL);

    let mut rng = DetRng::seed_from(0x7CC);
    let schedule: Vec<usize> = (0..OPS).map(|_| rng.index(objects.len())).collect();
    let (oracle_outcomes, homes, oracle_db) = run_oracle(&fixture, WAREHOUSES, &schedule);
    assert!(
        oracle_outcomes.iter().any(|o| o.synchronized),
        "200 new-orders over 10-unit stock levels must violate treaties"
    );

    let mut tcp = TcpCluster::new(WAREHOUSES, fixed_config(ReplicatedMode::EvenSplit));
    let (committed, synchronized) = replay_and_verify(
        "cluster-tcp",
        &mut tcp,
        &fixture,
        &schedule,
        &oracle_outcomes,
        &homes,
        &oracle_db,
    );

    let mut fig = Figure::new(
        "scenario-tpcc-neworder",
        "TPC-C NewOrder stock decrements as registered programs (3 warehouses x \
         2 districts x 2 items, one warehouse per site) over loopback TCP: \
         every operation and the folded state match the serial oracle",
        vec![
            "backend".into(),
            "committed".into(),
            "synchronized".into(),
            "programs".into(),
        ],
    );
    fig.push_row(
        "cluster-tcp",
        vec![
            committed as f64,
            synchronized as f64,
            fixture.txns.len() as f64,
        ],
    );
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_sale_generates_and_verifies() {
        let fig = flash_sale();
        assert_eq!(fig.id, "scenario-flash-sale");
        assert_eq!(fig.rows.len(), 4); // oracle + three backends
    }

    #[test]
    fn seatmap_generates_and_verifies() {
        let fig = seat_map();
        assert_eq!(fig.id, "scenario-seatmap");
    }

    #[test]
    fn tpcc_neworder_generates_and_verifies() {
        let fig = tpcc_new_order();
        assert_eq!(fig.id, "scenario-tpcc-neworder");
    }

    #[test]
    fn rate_limiter_conserves_tokens_at_scale() {
        let fig = rate_limiter();
        assert_eq!(fig.id, "scenario-rate-limiter");
    }

    #[test]
    #[should_panic(expected = "unknown scenario id")]
    fn unknown_scenarios_panic() {
        let _ = scenario("scenario-nope");
    }
}
