//! Criterion benchmarks for the symbolic-table analysis (Section 2):
//! per-transaction tables, joint tables, factorized tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use homeo_analysis::factorize::FactorizedTable;
use homeo_analysis::{JointSymbolicTable, SymbolicTable};
use homeo_lang::programs;

fn bench_symbolic_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.bench_function("symbolic_table_t1", |b| {
        let t1 = programs::t1();
        b.iter(|| SymbolicTable::analyze(black_box(&t1)))
    });
    group.bench_function("symbolic_table_t4_nested", |b| {
        let t4 = programs::t4();
        b.iter(|| SymbolicTable::analyze(black_box(&t4)))
    });
    group.bench_function("joint_table_t1_t2", |b| {
        let t1 = SymbolicTable::analyze(&programs::t1());
        let t2 = SymbolicTable::analyze(&programs::t2());
        b.iter(|| JointSymbolicTable::build(black_box(&[t1.clone(), t2.clone()])))
    });
    group.bench_function("factorized_multi_item_order_8", |b| {
        let items: Vec<i64> = (0..8).collect();
        let txn = programs::micro_order_multi(&items, 100);
        b.iter(|| FactorizedTable::analyze(black_box(&txn)))
    });
    group.finish();
}

criterion_group!(benches, bench_symbolic_tables);
criterion_main!(benches);
