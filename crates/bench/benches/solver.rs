//! Criterion benchmarks for the solver substrate: Fourier–Motzkin
//! feasibility, DPLL SAT, Fu-Malik MaxSAT and the treaty MaxSMT.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use homeo_solver::maxsmt::max_feasible_subset;
use homeo_solver::{Clause, Cnf, DpllSolver, FuMalik, LinExpr, LinearConstraint, Literal};

fn chain_constraints(n: usize) -> Vec<LinearConstraint> {
    let mut cs = Vec::new();
    for i in 0..n {
        cs.push(LinearConstraint::le(
            LinExpr::var(format!("x{i}")),
            LinExpr::var(format!("x{}", i + 1)),
        ));
    }
    cs.push(LinearConstraint::ge(
        LinExpr::var("x0"),
        LinExpr::constant(0),
    ));
    cs.push(LinearConstraint::le(
        LinExpr::var(format!("x{n}")),
        LinExpr::constant(100),
    ));
    cs
}

fn treaty_soft_groups(states: usize, sites: usize) -> Vec<Vec<LinearConstraint>> {
    (0..states)
        .map(|s| {
            (0..sites)
                .map(|k| {
                    LinearConstraint::le(
                        LinExpr::var(format!("c{k}")),
                        LinExpr::constant(100 - (s as i64 % 17) - k as i64),
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.bench_function("fm_feasibility_chain_12", |b| {
        let cs = chain_constraints(12);
        b.iter(|| homeo_solver::fm::check_feasible(black_box(&cs)))
    });
    group.bench_function("dpll_3sat_30_clauses", |b| {
        let mut cnf = Cnf::new(12);
        for i in 0..30usize {
            cnf.add_clause(Clause::new([
                Literal {
                    var: i % 12,
                    positive: i % 2 == 0,
                },
                Literal {
                    var: (i * 5 + 3) % 12,
                    positive: i % 3 == 0,
                },
                Literal {
                    var: (i * 7 + 1) % 12,
                    positive: i % 5 == 0,
                },
            ]));
        }
        b.iter(|| DpllSolver::new().solve(black_box(&cnf)))
    });
    group.bench_function("fu_malik_conflicting_units", |b| {
        let mut hard = Cnf::new(6);
        hard.add_at_most_one(&(0..6).map(Literal::pos).collect::<Vec<_>>());
        let soft: Vec<Clause> = (0..6).map(|v| Clause::new([Literal::pos(v)])).collect();
        b.iter(|| FuMalik::new().solve(black_box(&hard), black_box(&soft)))
    });
    group.bench_function("treaty_maxsmt_40_states_2_sites", |b| {
        let hard = vec![LinearConstraint::ge(
            LinExpr::var("c0").plus(&LinExpr::var("c1")),
            LinExpr::constant(80),
        )];
        let soft = treaty_soft_groups(40, 2);
        b.iter(|| max_feasible_subset(black_box(&hard), black_box(&soft)))
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
