//! Criterion benchmarks for the protocol layer: treaty generation (the
//! per-round cost the paper keeps below ~50 ms) and disconnected execution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use homeo_lang::{programs, Database};
use homeo_protocol::{HomeostasisCluster, Loc, OptimizerConfig, ReplicatedMode};
use homeo_runtime::{ReplicatedRuntime, SiteOp, SiteRuntime};

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.bench_function("cluster_setup_and_first_treaty", |b| {
        b.iter(|| {
            HomeostasisCluster::new(
                vec![programs::t1(), programs::t2()],
                Loc::from_pairs([("x", 0usize), ("y", 1usize)]),
                2,
                Database::from_pairs([("x", 10), ("y", 13)]),
                None,
            )
        })
    });
    group.bench_function("disconnected_execution_t1", |b| {
        let mut cluster = HomeostasisCluster::new(
            vec![programs::t1(), programs::t2()],
            Loc::from_pairs([("x", 0usize), ("y", 1usize)]),
            2,
            Database::from_pairs([("x", 1_000_000), ("y", 13)]),
            None,
        );
        b.iter(|| cluster.execute(black_box(0)).unwrap())
    });
    for lookahead in [10usize, 50] {
        group.bench_function(format!("treaty_negotiation_lookahead_{lookahead}"), |b| {
            b.iter(|| {
                let mut counters = ReplicatedRuntime::new(
                    2,
                    ReplicatedMode::Homeostasis {
                        optimizer: Some(OptimizerConfig {
                            lookahead,
                            futures: 3,
                            seed: 1,
                        }),
                    },
                );
                counters.register(homeo_lang::ids::ObjId::new("stock[0]"), 100, 1)
            })
        });
    }
    group.bench_function("replicated_local_order", |b| {
        let mut counters = ReplicatedRuntime::new(2, ReplicatedMode::EvenSplit);
        counters.register(homeo_lang::ids::ObjId::new("stock[0]"), i64::MAX / 4, 1);
        let obj = homeo_lang::ids::ObjId::new("stock[0]");
        b.iter(|| {
            counters.execute(
                0,
                SiteOp::Order {
                    obj: black_box(obj.clone()),
                    amount: 1,
                    refill_to: None,
                },
            )
        })
    });
    group.bench_function("sharded_order_spread_over_1000_counters", |b| {
        let mut counters = ReplicatedRuntime::new(2, ReplicatedMode::EvenSplit);
        let objs: Vec<_> = (0..1000)
            .map(|i| homeo_lang::ids::ObjId::new(format!("stock[{i}]")))
            .collect();
        for obj in &objs {
            counters.register(obj.clone(), i64::MAX / 4, 1);
        }
        let mut next = 0usize;
        b.iter(|| {
            next = (next + 1) % objs.len();
            counters.execute(
                0,
                SiteOp::Order {
                    obj: objs[next].clone(),
                    amount: 1,
                    refill_to: None,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
