//! Criterion benchmarks for the storage engine substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use homeo_store::{Column, Engine, TableSchema, Value};

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.bench_function("txn_read_write_commit", |b| {
        let engine = Engine::new();
        engine.poke("counter", 0);
        b.iter(|| {
            let mut t = engine.begin();
            let v = engine.read(&t, "counter").unwrap();
            engine.write(&t, "counter", v + 1).unwrap();
            engine.commit(&mut t).unwrap();
        })
    });
    group.bench_function("relational_insert_and_lookup", |b| {
        let engine = Engine::new();
        engine.create_table(TableSchema::new(
            "stock",
            vec![Column::int("itemid"), Column::int("qty")],
            &["itemid"],
        ));
        let mut next = 0i64;
        b.iter(|| {
            next += 1;
            engine
                .insert_row("stock", vec![Value::Int(next), Value::Int(100)])
                .unwrap();
            black_box(engine.get_row("stock", &[Value::Int(next)]).unwrap());
        })
    });
    group.bench_function("wal_recovery_1000_txns", |b| {
        let engine = Engine::new();
        for i in 0..1000 {
            let mut t = engine.begin();
            engine.write(&t, &format!("obj{}", i % 50), i).unwrap();
            engine.commit(&mut t).unwrap();
        }
        b.iter(|| engine.crash_and_recover())
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
