//! Criterion wrapper around the microbenchmark experiment points backing
//! Figures 10–18 and 24–27: each benchmark measures the cost of producing
//! one experiment point (protocol execution included), so regressions in the
//! analysis/solver/protocol path show up here.

use criterion::{criterion_group, criterion_main, Criterion};

use homeo_bench::experiments::micro_experiment;
use homeo_workloads::micro::{MicroConfig, Mode};

fn quick_config() -> MicroConfig {
    MicroConfig {
        num_items: 200,
        lookahead: 8,
        futures: 2,
        ..MicroConfig::default()
    }
}

fn bench_micro_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_figures");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for mode in [Mode::Homeostasis, Mode::Opt, Mode::TwoPc, Mode::Local] {
        group.bench_function(format!("fig10_point_{}", mode.label()), |b| {
            let config = quick_config();
            b.iter(|| micro_experiment(&config, mode, 4, 500))
        });
    }
    group.bench_function("fig24_point_lookahead_40", |b| {
        let config = MicroConfig {
            lookahead: 40,
            ..quick_config()
        };
        b.iter(|| micro_experiment(&config, Mode::Homeostasis, 4, 500))
    });
    group.bench_function("fig27_point_items_5", |b| {
        let config = MicroConfig {
            items_per_txn: 5,
            ..quick_config()
        };
        b.iter(|| micro_experiment(&config, Mode::Homeostasis, 4, 500))
    });
    group.finish();
}

criterion_group!(benches, bench_micro_points);
criterion_main!(benches);
