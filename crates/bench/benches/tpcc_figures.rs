//! Criterion wrapper around the TPC-C experiment points backing Figures
//! 19–22, 28 and 29.

use criterion::{criterion_group, criterion_main, Criterion};

use homeo_bench::experiments::tpcc_experiment;
use homeo_workloads::micro::Mode;
use homeo_workloads::tpcc::TpccConfig;

fn quick_config() -> TpccConfig {
    TpccConfig {
        warehouses: 2,
        districts_per_warehouse: 2,
        items_per_district: 50,
        customers: 200,
        lookahead: 6,
        futures: 2,
        ..TpccConfig::default()
    }
}

fn bench_tpcc_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpcc_figures");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for mode in [Mode::Homeostasis, Mode::Opt, Mode::TwoPc] {
        group.bench_function(format!("fig20_point_{}", mode.label()), |b| {
            let config = quick_config();
            b.iter(|| tpcc_experiment(&config, mode, 4, 500))
        });
    }
    group.bench_function("fig28_point_hot_50", |b| {
        let config = TpccConfig {
            hotness: 50,
            mix: (49, 49, 2),
            ..quick_config()
        };
        b.iter(|| tpcc_experiment(&config, Mode::Homeostasis, 4, 500))
    });
    group.finish();
}

criterion_group!(benches, bench_tpcc_points);
criterion_main!(benches);
