//! The fully general homeostasis protocol behind the [`SiteRuntime`]
//! surface.
//!
//! [`GeneralRuntime`] adapts [`HomeostasisCluster`] — arbitrary `L`
//! transactions, symbolic tables, per-round treaties — to the same
//! `submit / poll / synchronize` surface the fast path and the baselines
//! use, so the closed-loop driver (and any future multi-threaded site
//! scheduler) does not care which protocol variant it is driving.

use std::collections::VecDeque;

use homeo_protocol::HomeostasisCluster;
use homeo_store::Engine;

use crate::{OpOutcome, SiteOp, SiteRuntime};

/// The general protocol runtime: one [`HomeostasisCluster`] whose
/// transactions are executed through site inboxes.
pub struct GeneralRuntime {
    cluster: HomeostasisCluster,
    inboxes: Vec<VecDeque<SiteOp>>,
}

impl GeneralRuntime {
    /// Wraps a cluster (built with the workload's transactions, `Loc` map
    /// and initial database).
    pub fn new(cluster: HomeostasisCluster) -> Self {
        let sites = cluster.site_count();
        GeneralRuntime {
            cluster,
            inboxes: vec![VecDeque::new(); sites],
        }
    }

    /// The underlying cluster (treaty inspection, statistics, the
    /// correctness oracle).
    pub fn cluster(&self) -> &HomeostasisCluster {
        &self.cluster
    }

    /// The home site of a registered transaction — the site holding its
    /// write set, where its [`SiteOp::Transaction`] should be submitted.
    pub fn home_site(&self, index: usize) -> usize {
        self.cluster.home_site(index)
    }
}

impl SiteRuntime for GeneralRuntime {
    fn sites(&self) -> usize {
        self.cluster.site_count()
    }

    fn engine(&self, site: usize) -> &Engine {
        self.cluster.engine(site)
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        self.inboxes[site].push_back(op);
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        let batch: Vec<SiteOp> = self.inboxes[site].drain(..).collect();
        batch
            .into_iter()
            .map(|op| match op {
                SiteOp::Transaction { index } if index < self.cluster.transactions().len() => {
                    // The cluster routes to the transaction's home site
                    // (Assumption 3.1); the submitting site's inbox is just
                    // the queueing point.
                    let out = self
                        .cluster
                        .execute(index)
                        .expect("registered transactions are well-formed");
                    OpOutcome {
                        committed: out.committed,
                        synchronized: out.synchronized,
                        refilled: false,
                        comm_rounds: out.comm_rounds,
                        solver_micros: out.solver_micros,
                        unsupported: false,
                    }
                }
                // Counter operations (and out-of-range indices) are typed
                // as rejected — this runtime executes registered general
                // transactions only.
                _ => OpOutcome::unsupported(),
            })
            .collect()
    }

    fn synchronize(&mut self, _site: usize) -> u64 {
        self.cluster.resynchronize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::{programs, Database};
    use homeo_protocol::correctness::verify_round;
    use homeo_protocol::Loc;

    fn runtime() -> GeneralRuntime {
        let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        GeneralRuntime::new(HomeostasisCluster::new(
            vec![programs::t1(), programs::t2()],
            loc,
            2,
            db,
            None,
        ))
    }

    #[test]
    fn transactions_flow_through_the_runtime_surface() {
        let mut rt = runtime();
        assert_eq!(rt.sites(), 2);
        for i in 0..6 {
            let index = i % 2;
            let site = rt.home_site(index);
            let out = rt.execute(site, SiteOp::Transaction { index });
            assert!(out.committed);
        }
        assert!(verify_round(rt.cluster()).is_equivalent());
        assert!(rt.cluster().stats.local_commits > 0);
    }

    #[test]
    fn batches_drain_in_order_and_match_serial_execution() {
        let mut rt = runtime();
        let schedule = [0usize, 1, 0, 1, 1, 0];
        for &index in &schedule {
            rt.submit(rt.home_site(index), SiteOp::Transaction { index });
        }
        let out0 = rt.poll(0);
        let out1 = rt.poll(1);
        assert_eq!(out0.len() + out1.len(), schedule.len());
        assert!(out0.iter().chain(&out1).all(|o| o.committed));
        // Compare against serial execution of the same schedule, poll order.
        let mut serial = Database::from_pairs([("x", 10), ("y", 13)]);
        for &index in schedule.iter().filter(|&&i| rt.home_site(i) == 0) {
            serial = homeo_lang::Evaluator::eval(&rt.cluster().transactions()[index], &serial, &[])
                .unwrap()
                .database;
        }
        for &index in schedule.iter().filter(|&&i| rt.home_site(i) == 1) {
            serial = homeo_lang::Evaluator::eval(&rt.cluster().transactions()[index], &serial, &[])
                .unwrap()
                .database;
        }
        assert_eq!(rt.cluster().global_database(), serial);
    }

    #[test]
    fn synchronize_starts_a_fresh_round() {
        let mut rt = runtime();
        rt.execute(0, SiteOp::Transaction { index: 0 });
        let round_before = rt.cluster().treaties().round;
        rt.synchronize(0);
        assert!(rt.cluster().treaties().round > round_before);
        // After synchronizing, both sites share the authoritative state.
        let global = rt.cluster().global_database();
        for site in 0..2 {
            for (obj, value) in global.iter() {
                assert_eq!(rt.value_at(site, obj), value);
            }
        }
    }
}
