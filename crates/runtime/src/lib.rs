//! # homeo-runtime
//!
//! The shared per-site execution runtime.
//!
//! The paper's core claim — sites execute transactions locally with no
//! coordination while treaties hold — used to be reproduced by three
//! disjoint code paths (the general engine-backed path, a storage-free
//! replicated-counter fast path, and ad-hoc per-baseline state). This crate
//! is the consolidation: **one [`SiteRuntime`] surface that every protocol
//! variant implements**, where each site owns a storage engine
//! ([`homeo_store::Engine`]: strict 2PL + WAL), its treaty state, and a
//! batched inbox of operations.
//!
//! The surface is deliberately small:
//!
//! * [`SiteRuntime::submit`] — enqueue a [`SiteOp`] into a site's inbox;
//! * [`SiteRuntime::poll`] — drain the inbox, executing the batch against
//!   the site's engine under its local concurrency control;
//! * [`SiteRuntime::submit_batch`] — execute a whole batch in one call,
//!   letting implementations amortize per-operation bookkeeping (group
//!   commit, one wire frame per batch) without changing the semantics;
//! * [`SiteRuntime::synchronize`] — force a cross-site synchronization and
//!   treaty renegotiation.
//!
//! Four implementations cover the paper's evaluation matrix:
//!
//! * [`ReplicatedRuntime`] — the homeostasis fast path (and the OPT /
//!   demarcation baseline via [`homeo_protocol::ReplicatedMode::EvenSplit`]):
//!   independent replicated counters, engine-backed and sharded by `ObjId`
//!   hash so independent counters on a site no longer serialize through one
//!   map;
//! * [`GeneralRuntime`] — the fully general protocol
//!   ([`homeo_protocol::HomeostasisCluster`]) behind the same surface;
//! * `TwoPcRuntime` / `LocalRuntime` (crate `homeo-baselines`) — the 2PC and
//!   uncoordinated-local baselines, likewise engine-backed.
//!
//! [`drive()`](drive::drive) connects any `SiteRuntime` to the closed-loop
//! simulation mechanics of `homeo-sim`, replacing the executor trait the
//! simulator used to define.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drive;
pub mod general;
pub mod openloop;
pub mod replicated;

use serde::{Deserialize, Serialize};

use homeo_lang::ids::ObjId;
use homeo_store::Engine;

pub use drive::{drive, WorkloadDriver};
pub use general::GeneralRuntime;
pub use openloop::{drive_open_loop, OpenLoopConfig, OpenLoopReport};
pub use replicated::ReplicatedRuntime;

/// One operation submitted to a site's inbox.
///
/// The counter operations (`Order` / `Increment` / `ForceSync`) are the
/// factorized forms the paper's evaluation workloads reduce to (Appendix E);
/// `Transaction` executes a registered `L` transaction through the general
/// protocol path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteOp {
    /// The decrement-or-refill operation of Listing 1 / TPC-C New Order:
    /// decrement `amount`, refilling to `refill_to` when the synchronized
    /// value can no longer support the decrement.
    Order {
        /// The counter object.
        obj: ObjId,
        /// The (non-negative) decrement.
        amount: i64,
        /// The refill level, if the workload has refill semantics.
        refill_to: Option<i64>,
    },
    /// A pure local increment (e.g. the TPC-C Payment balance updates):
    /// increments never threaten a `≥`-treaty, so they always commit locally.
    Increment {
        /// The counter object.
        obj: ObjId,
        /// The increment (its absolute value is applied).
        amount: i64,
    },
    /// An operation whose treaty pins an object to its current value (e.g.
    /// TPC-C Delivery): every execution violates the treaty and
    /// synchronizes.
    ForceSync {
        /// The pinned object.
        obj: ObjId,
    },
    /// A registered general-path transaction, by index.
    Transaction {
        /// Index into the runtime's transaction list.
        index: usize,
    },
}

/// The observable outcome of one [`SiteOp`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpOutcome {
    /// Whether the operation committed.
    pub committed: bool,
    /// Whether it required inter-site communication.
    pub synchronized: bool,
    /// Whether the refill branch ran (orders only).
    pub refilled: bool,
    /// Global communication rounds incurred (0 for local commits; 2 for a
    /// synchronization: state exchange plus treaty distribution).
    pub comm_rounds: u32,
    /// Time spent in the treaty solver, in microseconds as reported by the
    /// runtime's [`homeo_sim::Timer`].
    pub solver_micros: u64,
    /// Whether the operation was rejected as unsupported on this runtime —
    /// e.g. a [`SiteOp::Transaction`] referencing a program that was never
    /// registered. Unsupported operations never commit; the typed flag lets
    /// a confused client distinguish "rejected" from "aborted by concurrency
    /// control" without the site tearing its connection down.
    pub unsupported: bool,
}

impl OpOutcome {
    /// A local commit with no communication.
    pub fn local_commit() -> Self {
        OpOutcome {
            committed: true,
            ..Default::default()
        }
    }

    /// An operation this runtime cannot execute (not committed, typed as
    /// rejected rather than aborted).
    pub fn unsupported() -> Self {
        OpOutcome {
            unsupported: true,
            ..Default::default()
        }
    }

    /// A committed operation that required a synchronization round.
    pub fn synchronized(refilled: bool, solver_micros: u64) -> Self {
        OpOutcome {
            committed: true,
            synchronized: true,
            refilled,
            comm_rounds: 2,
            solver_micros,
            unsupported: false,
        }
    }
}

/// The shared per-site runtime surface.
///
/// Implementations own one storage engine per site; all state an operation
/// reads or writes goes through that engine (strict 2PL, WAL), so crash
/// recovery and local concurrency control cover every protocol variant
/// identically.
pub trait SiteRuntime {
    /// Number of sites.
    fn sites(&self) -> usize;

    /// The storage engine of one site (population, inspection, relational
    /// side tables).
    fn engine(&self, site: usize) -> &Engine;

    /// Enqueues an operation into `site`'s inbox. Nothing executes until
    /// [`Self::poll`].
    fn submit(&mut self, site: usize, op: SiteOp);

    /// Drains `site`'s inbox, executing the batched operations in
    /// submission order, and returns their outcomes.
    fn poll(&mut self, site: usize) -> Vec<OpOutcome>;

    /// Forces a synchronization of `site`'s state with its peers (fold
    /// deltas, install the consistent state everywhere, renegotiate
    /// treaties). Returns the solver time in microseconds.
    fn synchronize(&mut self, site: usize) -> u64;

    /// Registers a treaty-protected object if it is not registered yet
    /// (counter-based runtimes; a no-op elsewhere). `initial` is written
    /// through each site's engine so the WAL covers population.
    fn ensure_registered(&mut self, _obj: &ObjId, _initial: i64, _lower_bound: i64) {}

    /// The value `site` currently observes for `obj` (its engine's state;
    /// other sites' unsynchronized deltas are not visible).
    fn value_at(&self, site: usize, obj: &ObjId) -> i64 {
        self.engine(site).peek(obj.as_str())
    }

    /// Executes a whole batch of operations on `site` and returns one
    /// outcome per operation, in batch order.
    ///
    /// This is the first-class batched submission path: implementations
    /// override it to amortize per-operation bookkeeping across the batch
    /// (one group-committed WAL cycle for a run of within-treaty writes, one
    /// wire frame for a whole cluster batch) while keeping the observable
    /// semantics of executing the operations one at a time in order. The
    /// default loops `submit`/`poll` per operation, so any implementation
    /// is batchable even before it optimizes.
    ///
    /// `site`'s inbox should be empty when this is called; outcomes of
    /// previously queued operations would otherwise be interleaved into the
    /// returned vector.
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        let mut outcomes = Vec::with_capacity(ops.len());
        for op in ops {
            self.submit(site, op.clone());
            outcomes.extend(self.poll(site));
        }
        outcomes
    }

    /// Convenience for unbatched callers: a singleton [`Self::submit_batch`].
    ///
    /// `site`'s inbox should be empty when this is called (the returned
    /// outcome is the last of the drained batch, so queued operations'
    /// outcomes would be discarded) — batched submitters use
    /// [`Self::submit_batch`] or [`Self::poll`] directly.
    fn execute(&mut self, site: usize, op: SiteOp) -> OpOutcome {
        self.submit_batch(site, std::slice::from_ref(&op))
            .pop()
            .unwrap_or_default()
    }
}

/// FNV-1a over an object name — the shard hash. Stable across platforms so
/// seeded runs place counters identically everywhere. Public because the
/// cluster layer (`homeo-cluster`) derives each counter's coordinator site
/// from the same hash, keeping shard placement and sync routing aligned.
pub fn shard_hash(obj: &ObjId) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in obj.as_str().as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The coordinator of `obj` over an explicit (sorted) member list:
/// `members[shard_hash % len]`. With `members == 0..sites` this is the
/// static placement the cluster layer always used; under elastic
/// membership the member list comes from the counter's own metadata, so a
/// counter's coordinator moves only when its member set is handed off.
///
/// # Panics
/// Panics on an empty member list.
pub fn coordinator_of(obj: &ObjId, members: &[usize]) -> usize {
    assert!(!members.is_empty(), "coordinator over an empty member list");
    members[(shard_hash(obj) % members.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hash_is_stable_and_spreads() {
        // Pin two reference values so the placement of counters (and thus
        // any sharded iteration order) can never drift silently.
        assert_eq!(
            shard_hash(&ObjId::new("stock[0]")),
            shard_hash(&ObjId::new("stock[0]"))
        );
        assert_ne!(
            shard_hash(&ObjId::new("stock[0]")),
            shard_hash(&ObjId::new("stock[1]"))
        );
        let shards = 16u64;
        let mut used = std::collections::BTreeSet::new();
        for i in 0..100 {
            used.insert(shard_hash(&ObjId::new(format!("stock[{i}]"))) % shards);
        }
        assert!(
            used.len() > 8,
            "100 counters landed in {} shards",
            used.len()
        );
    }

    #[test]
    fn coordinator_of_agrees_with_the_static_placement() {
        // Over the dense member list the elastic placement is exactly the
        // historical `shard_hash % sites`.
        let members: Vec<usize> = (0..3).collect();
        for i in 0..20 {
            let obj = ObjId::new(format!("stock[{i}]"));
            assert_eq!(
                coordinator_of(&obj, &members),
                (shard_hash(&obj) % 3) as usize
            );
        }
        // Over a holey roster the coordinator is always a member.
        let members = vec![0, 2, 5];
        for i in 0..20 {
            let obj = ObjId::new(format!("stock[{i}]"));
            assert!(members.contains(&coordinator_of(&obj, &members)));
        }
    }

    #[test]
    fn default_outcome_is_an_uncommitted_noop() {
        let o = OpOutcome::default();
        assert!(!o.committed && !o.synchronized && o.comm_rounds == 0);
        assert!(!o.unsupported);
        assert!(OpOutcome::local_commit().committed);
        let u = OpOutcome::unsupported();
        assert!(u.unsupported && !u.committed && !u.synchronized);
        let s = OpOutcome::synchronized(true, 7);
        assert!(s.committed && s.synchronized && s.refilled);
        assert_eq!(s.comm_rounds, 2);
        assert_eq!(s.solver_micros, 7);
    }
}
