//! Open-loop (offered-load) driving of a [`SiteRuntime`] on the real clock.
//!
//! The closed loop of [`crate::drive()`] measures *capacity*: clients issue
//! the next request the moment the previous one completes, so latency under
//! a closed loop self-throttles and hides queueing delay. This module is
//! the complement for latency measurement: batches *arrive* on a
//! deterministic exponential (Poisson) schedule at a configured offered
//! rate, independent of how fast the runtime drains them, and each batch's
//! latency is measured from its **scheduled arrival** — not from when the
//! driver got around to sending it. When the runtime falls behind the
//! schedule, the backlog is charged to the requests, which is exactly the
//! coordinated-omission-free measurement an open loop exists to make.
//!
//! The arrival schedule is drawn from a seeded [`DetRng`], so the same
//! configuration offers the same arrival times (relative to the run start)
//! on every run; only the measured service times vary with the machine.

use std::time::{Duration, Instant};

use homeo_sim::DetRng;
use homeo_telemetry::Histogram;

use crate::{SiteOp, SiteRuntime};

/// Knobs of [`drive_open_loop`].
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in operations per second, aggregate across all sites.
    pub rate: f64,
    /// Total operations to offer before the run ends.
    pub total_ops: usize,
    /// Operations per [`SiteRuntime::submit_batch`] call (one arrival =
    /// one batch; latency is per batch).
    pub batch: usize,
    /// Seed of the arrival schedule's deterministic stream (also handed to
    /// the workload generator).
    pub seed: u64,
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Operations offered.
    pub issued: u64,
    /// Operations that committed.
    pub committed: u64,
    /// Operations that required a synchronization round.
    pub synchronized: u64,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_secs: f64,
    /// Committed operations per wall-clock second (≤ the offered rate by
    /// construction, unless the schedule itself was the bottleneck).
    pub throughput: f64,
    /// Per-batch latency from scheduled arrival to completion, in
    /// microseconds.
    pub latency: Histogram,
}

impl OpenLoopReport {
    /// A latency quantile in milliseconds (`q` in `[0, 1]`).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q) as f64 / 1_000.0
    }
}

/// One exponential inter-arrival gap in seconds with the given mean.
fn exp_gap(rng: &mut DetRng, mean_secs: f64) -> f64 {
    -(1.0 - rng.unit()).ln() * mean_secs
}

/// Drives `runtime` under open-loop load: batches of `config.batch`
/// operations arrive per a seeded Poisson schedule at `config.rate` ops/s
/// aggregate, round-robin across sites, until `config.total_ops` have been
/// offered. `workload` fills each batch (cleared between calls) using the
/// shared deterministic stream.
///
/// The driver is synchronous — a batch executes to completion before the
/// next is released — so when execution is slower than the schedule the
/// arrivals queue *in the schedule* and every delayed batch's waiting time
/// lands in its measured latency.
pub fn drive_open_loop(
    config: &OpenLoopConfig,
    runtime: &mut dyn SiteRuntime,
    workload: &mut dyn FnMut(usize, &mut DetRng, &mut Vec<SiteOp>),
) -> OpenLoopReport {
    assert!(config.rate > 0.0, "open loop needs a positive offered rate");
    let batch = config.batch.max(1);
    let sites = runtime.sites();
    // Mean gap between *batch* arrivals so that operations arrive at
    // `rate` per second.
    let gap_mean = batch as f64 / config.rate;
    let mut rng = DetRng::seed_from(config.seed);
    let mut latency = Histogram::new();
    let mut ops: Vec<SiteOp> = Vec::with_capacity(batch);
    let mut issued = 0u64;
    let mut committed = 0u64;
    let mut synchronized = 0u64;
    let started = Instant::now();
    let mut next_arrival = exp_gap(&mut rng, gap_mean);
    let mut site = 0usize;
    while (issued as usize) < config.total_ops {
        let due = started + Duration::from_secs_f64(next_arrival);
        let now = Instant::now();
        if now < due {
            std::thread::sleep(due - now);
        }
        let n = batch.min(config.total_ops - issued as usize);
        ops.clear();
        workload(site, &mut rng, &mut ops);
        ops.truncate(n);
        let outcomes = runtime.submit_batch(site, &ops);
        latency.record(due.elapsed().as_micros() as u64);
        issued += ops.len() as u64;
        committed += outcomes.iter().filter(|o| o.committed).count() as u64;
        synchronized += outcomes.iter().filter(|o| o.synchronized).count() as u64;
        next_arrival += exp_gap(&mut rng, gap_mean);
        site = (site + 1) % sites;
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    OpenLoopReport {
        issued,
        committed,
        synchronized,
        elapsed_secs,
        throughput: committed as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicated::ReplicatedRuntime;
    use homeo_lang::ids::ObjId;
    use homeo_protocol::ReplicatedMode;
    use homeo_sim::Timer;

    #[test]
    fn the_open_loop_offers_paced_load_and_measures_latency() {
        let mut runtime =
            ReplicatedRuntime::new(2, ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
        runtime.register(ObjId::new("stock[0]"), 1_000_000, 1);
        let config = OpenLoopConfig {
            rate: 50_000.0,
            total_ops: 2_000,
            batch: 16,
            seed: 11,
        };
        let report = drive_open_loop(&config, &mut runtime, &mut |_site, _rng, ops| {
            for _ in 0..16 {
                ops.push(SiteOp::Order {
                    obj: ObjId::new("stock[0]"),
                    amount: 1,
                    refill_to: None,
                });
            }
        });
        assert_eq!(report.issued, 2_000);
        assert_eq!(report.committed, 2_000);
        assert_eq!(report.latency.count() as usize, 2_000 / 16);
        assert!(report.quantile_ms(0.99) >= report.quantile_ms(0.50));
        // 2k ops at 50k/s is ≥ ~40ms of schedule; the paced run cannot
        // finish much faster than the schedule allows.
        assert!(report.elapsed_secs > 0.02, "pacing was not applied");
        assert!(report.throughput <= 51_000.0 * 2.0);
    }

    #[test]
    fn arrival_schedules_replay_deterministically() {
        // Same seed → same gaps, different seed → different gaps.
        let gaps = |seed: u64| -> Vec<u64> {
            let mut rng = DetRng::seed_from(seed);
            (0..32)
                .map(|_| (exp_gap(&mut rng, 1.0) * 1e9) as u64)
                .collect()
        };
        assert_eq!(gaps(7), gaps(7));
        assert_ne!(gaps(7), gaps(8));
    }
}
