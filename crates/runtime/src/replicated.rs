//! The engine-backed replicated-counter runtime (the paper's evaluation
//! fast path, Appendices B and E).
//!
//! Every counter's per-site state lives in the site's storage engine: site
//! `i`'s engine holds the value the site currently observes
//! (`base + δ_i`), so every order and increment runs as a real engine
//! transaction — strict 2PL locks, staged writes, and a WAL record on
//! commit. A site that crashes recovers its counters from its log
//! ([`homeo_store::Engine::crash_and_recover`]), which the seed's
//! `BTreeMap`-only fast path could not do.
//!
//! Treaty metadata (the synchronized base, the global lower bound and the
//! per-site allowances) is kept in shards selected by `ObjId` hash, so
//! independent counters no longer serialize through one map — the seam a
//! future multi-threaded site can split work along.

use std::collections::{BTreeMap, HashMap, VecDeque};

use homeo_lang::ids::ObjId;
use homeo_protocol::{
    negotiate_allowances_cached, ClusterConfig, NegotiationCache, ReplicatedMode, ReplicatedStats,
    SyncTuning, WorkloadHints,
};
use homeo_sim::Timer;
use homeo_store::{Engine, EngineError};

use crate::{shard_hash, OpOutcome, SiteOp, SiteRuntime};

/// Default number of shards the counter map is split into.
pub const DEFAULT_SHARDS: usize = 16;

/// Treaty state of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CounterMeta {
    /// The synchronized value (all deltas folded in at the last
    /// synchronization).
    base: i64,
    /// The global treaty maintains `value ≥ lower_bound`.
    lower_bound: i64,
    /// Per-site allowances: site `i` may let its delta drop to
    /// `allowances[i]` (`≤ 0`) before it must synchronize.
    allowances: Vec<i64>,
}

/// One shard of the counter map.
#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<ObjId, CounterMeta>,
}

/// A set of independent replicated counters managed under the homeostasis
/// protocol (or the OPT baseline), executing through per-site storage
/// engines.
pub struct ReplicatedRuntime {
    mode: ReplicatedMode,
    hints: WorkloadHints,
    timer: Timer,
    engines: Vec<Engine>,
    shards: Vec<Shard>,
    inboxes: Vec<VecDeque<SiteOp>>,
    /// Memoized treaty templates and solver scratch, shared by every
    /// counter's negotiations.
    cache: NegotiationCache,
    /// Synchronization tuning: solver warm start and the demand-adaptive
    /// control loop.
    tuning: SyncTuning,
    /// Per-site consumption EWMA (only maintained when the adaptive loop is
    /// enabled).
    demand: Vec<f64>,
    /// Hints derived from `demand`, fed to the optimizer instead of the
    /// static `hints` when the adaptive loop is enabled.
    adaptive_hints: WorkloadHints,
    /// Aggregate statistics.
    pub stats: ReplicatedStats,
}

impl ReplicatedRuntime {
    /// Creates a runtime for `sites` replicas with fresh (empty) engines.
    pub fn new(sites: usize, mode: ReplicatedMode) -> Self {
        assert!(sites > 0);
        Self::from_engines((0..sites).map(|_| Engine::new()).collect(), mode)
    }

    /// Creates a runtime over pre-populated engines (one per site) — the
    /// workload generators load relational tables and object namespaces
    /// before handing the engines over.
    pub fn from_engines(engines: Vec<Engine>, mode: ReplicatedMode) -> Self {
        assert!(!engines.is_empty());
        let sites = engines.len();
        ReplicatedRuntime {
            mode,
            hints: WorkloadHints::uniform(sites),
            timer: Timer::Wall,
            engines,
            shards: (0..DEFAULT_SHARDS).map(|_| Shard::default()).collect(),
            inboxes: vec![VecDeque::new(); sites],
            cache: NegotiationCache::new(),
            tuning: SyncTuning::default(),
            demand: vec![0.0; sites],
            adaptive_hints: WorkloadHints::uniform(sites),
            stats: ReplicatedStats::default(),
        }
    }

    /// Creates a runtime from the shared [`ClusterConfig`] builder — the
    /// same configuration value the cluster backends take, so a serial
    /// oracle and a cluster under test can be built from one config:
    ///
    /// ```
    /// use homeo_protocol::{ClusterConfig, ReplicatedMode};
    /// use homeo_runtime::{ReplicatedRuntime, SiteRuntime};
    /// use homeo_sim::Timer;
    ///
    /// let config = ClusterConfig::new(ReplicatedMode::EvenSplit)
    ///     .with_timer(Timer::fixed_zero());
    /// let runtime = ReplicatedRuntime::from_config(3, &config);
    /// assert_eq!(runtime.sites(), 3);
    /// ```
    pub fn from_config(sites: usize, config: &ClusterConfig) -> Self {
        assert!(sites > 0);
        Self::from_engines_config((0..sites).map(|_| Engine::new()).collect(), config)
    }

    /// Creates a runtime over pre-populated engines from the shared
    /// [`ClusterConfig`] builder (see [`Self::from_config`]).
    pub fn from_engines_config(engines: Vec<Engine>, config: &ClusterConfig) -> Self {
        let sites = engines.len();
        let mut runtime = Self::from_engines(engines, config.mode);
        runtime.hints = config.hints(sites);
        runtime.timer = config.timer;
        runtime.tuning = config.tuning;
        runtime
    }

    /// Sets the synchronization tuning (solver warm start, demand-adaptive
    /// proactive renegotiation). The default warm-starts the solver with the
    /// adaptive loop off; either setting leaves negotiated allowances
    /// byte-identical to a cold solve — only the adaptive loop changes which
    /// negotiations happen.
    ///
    /// Thin forward kept for existing call sites; new code should carry the
    /// knobs in a [`ClusterConfig`] and use [`Self::from_config`].
    pub fn with_sync_tuning(mut self, tuning: SyncTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Sets the workload model hints used by the optimizer.
    pub fn with_workload_hints(mut self, site_weights: Vec<f64>, expected_amount: i64) -> Self {
        assert_eq!(site_weights.len(), self.engines.len());
        self.hints = WorkloadHints {
            site_weights,
            expected_amount: expected_amount.max(1),
        };
        self
    }

    /// Replaces the elapsed-time source for the reported solver times
    /// ([`Timer::Fixed`] makes seeded runs byte-for-byte reproducible).
    pub fn with_timer(mut self, timer: Timer) -> Self {
        self.timer = timer;
        self
    }

    /// Overrides the number of shards (must be called before any counter is
    /// registered).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0);
        assert!(self.is_empty(), "reshard before registering counters");
        self.shards = (0..shards).map(|_| Shard::default()).collect();
        self
    }

    /// Number of shards the counter map is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a counter lives in.
    pub fn shard_of(&self, obj: &ObjId) -> usize {
        (shard_hash(obj) % self.shards.len() as u64) as usize
    }

    /// Number of counters in one shard (diagnostics and sharding tests).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].counters.len()
    }

    /// Registers a counter with its initial value and the lower bound its
    /// global treaty maintains. The initial value is written through every
    /// site's engine inside a logged transaction (so recovery replays it),
    /// and the initial treaty is negotiated immediately. Returns the solver
    /// time in microseconds.
    pub fn register(&mut self, obj: ObjId, initial: i64, lower_bound: i64) -> u64 {
        for engine in &self.engines {
            write_through(engine, &obj, initial).expect("population write cannot conflict");
        }
        let sites = self.engines.len();
        if self.tuning.adaptive.is_some() {
            self.refresh_adaptive_hints();
        }
        let hints = if self.tuning.adaptive.is_some() {
            &self.adaptive_hints
        } else {
            &self.hints
        };
        let (allowances, solver_micros) = negotiate_allowances_cached(
            self.mode,
            hints,
            sites,
            initial,
            lower_bound,
            self.timer,
            &mut self.cache,
            None,
        );
        self.stats.negotiations += 1;
        self.stats.solver_micros_total += solver_micros;
        let shard = self.shard_of(&obj);
        self.shards[shard].counters.insert(
            obj,
            CounterMeta {
                base: initial,
                lower_bound,
                allowances,
            },
        );
        solver_micros
    }

    /// True when the counter is registered.
    pub fn is_registered(&self, obj: &ObjId) -> bool {
        self.shards[self.shard_of(obj)].counters.contains_key(obj)
    }

    /// The authoritative (global) value of a counter: its base plus every
    /// site's unsynchronized delta.
    pub fn logical_value(&self, obj: &ObjId) -> i64 {
        let shard = self.shard_of(obj);
        match self.shards[shard].counters.get(obj) {
            None => 0,
            Some(meta) => {
                let deltas: i64 = self
                    .engines
                    .iter()
                    .map(|e| e.peek(obj.as_str()) - meta.base)
                    .sum();
                meta.base + deltas
            }
        }
    }

    /// The value a given site believes the counter has (its engine's state —
    /// other sites' deltas are not visible without synchronizing).
    pub fn visible_value(&self, site: usize, obj: &ObjId) -> i64 {
        self.engines[site].peek(obj.as_str())
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.counters.len()).sum()
    }

    /// True when no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.counters.is_empty())
    }

    /// The global-treaty invariant: as long as only `order` operations run,
    /// every counter's logical value stays at or above its lower bound
    /// (checked by tests and the property suite).
    pub fn all_treaties_hold(&self) -> bool {
        self.shards.iter().all(|shard| {
            shard
                .counters
                .iter()
                .all(|(obj, meta)| self.logical_value(obj) >= meta.lower_bound.min(meta.base))
        })
    }

    /// Simulates a crash of one site: its engine loses all in-memory object
    /// state and rebuilds it from the WAL. Counter state survives because
    /// every counter mutation ran through a logged engine transaction.
    pub fn crash_site(&mut self, site: usize) {
        self.engines[site].crash_and_recover();
    }

    /// Executes a batch of operations against `site`, group-committing runs
    /// of within-treaty writes.
    ///
    /// Consecutive within-treaty orders and increments stage their values in
    /// memory and are flushed through **one** logged engine transaction
    /// ([`Engine::write_logged_batch`]): one lock-acquisition cycle and one
    /// WAL `Begin`/`Commit` for the whole run instead of one per operation.
    /// A treaty violation (or a `ForceSync`) flushes the run first — so the
    /// fold over every site's engine state observes the batch's earlier
    /// commits — and then synchronizes exactly as the one-at-a-time path
    /// did. The observable outcomes, counter values and recovered state are
    /// identical to executing the operations one at a time; only the WAL's
    /// transaction grouping differs.
    fn run_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        let mut outcomes = vec![OpOutcome::default(); ops.len()];
        // Staged within-treaty values (`obj → value`, hashed — this map is
        // touched once or twice per operation) and the write order plus the
        // indices of the operations whose commits ride on the next flush.
        let mut staged: HashMap<ObjId, i64> = HashMap::new();
        let mut write_order: Vec<ObjId> = Vec::new();
        let mut segment: Vec<usize> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                SiteOp::Order {
                    obj,
                    amount,
                    refill_to,
                } => {
                    assert!(*amount >= 0);
                    let shard = self.shard_of(obj);
                    let meta = self.shards[shard]
                        .counters
                        .get(obj)
                        .unwrap_or_else(|| panic!("counter `{obj}` not registered"));
                    let (base, floor) = (meta.base, meta.base + meta.allowances[site]);
                    let value = staged
                        .get(obj)
                        .copied()
                        .unwrap_or_else(|| self.engines[site].peek(obj.as_str()));
                    let new_value = value - amount;
                    if new_value >= floor {
                        // Normal execution: the decrement stays within this
                        // site's local treaty — stage it for the group
                        // commit.
                        if staged.insert(obj.clone(), new_value).is_none() {
                            write_order.push(obj.clone());
                        }
                        segment.push(i);
                        outcomes[i] = OpOutcome::local_commit();
                        self.note_demand(site, *amount);
                        if self.should_resplit(site, obj, new_value) {
                            // Demand-adaptive proactive re-split: fold and
                            // renegotiate before the allowance is violated.
                            // The committed operation above stays a local
                            // commit; the staged run is flushed first so the
                            // fold observes it.
                            self.flush(
                                site,
                                &mut staged,
                                &mut write_order,
                                &mut segment,
                                &mut outcomes,
                            );
                            let engine = &self.engines[site];
                            let mut probe = engine.begin();
                            match engine.read(&probe, obj.as_str()) {
                                Ok(_) => {
                                    engine
                                        .abort(&mut probe)
                                        .expect("abort of active transaction");
                                    let logical = self.logical_value(obj);
                                    self.install_synchronized(obj, logical, true);
                                    self.stats.synchronizations += 1;
                                }
                                // A concurrent lock holder: skip the optional
                                // round rather than blocking or panicking.
                                Err(EngineError::WouldBlock { .. }) => {
                                    engine.abort(&mut probe).ok();
                                }
                                Err(e) => panic!("counter read failed: {e}"),
                            }
                        }
                        continue;
                    }
                    self.note_demand(site, *amount);
                    // Treaty violation: cleanup phase. Flush the staged run
                    // (its commits must be visible to the fold) and probe
                    // the counter's lock the way the serial path's
                    // transactional read did: if a concurrent engine
                    // transaction holds the object, the operation reports
                    // uncommitted instead of panicking inside the fold.
                    self.flush(
                        site,
                        &mut staged,
                        &mut write_order,
                        &mut segment,
                        &mut outcomes,
                    );
                    let engine = &self.engines[site];
                    let mut probe = engine.begin();
                    match engine.read(&probe, obj.as_str()) {
                        Ok(_) => engine
                            .abort(&mut probe)
                            .expect("abort of active transaction"),
                        Err(EngineError::WouldBlock { .. }) => {
                            engine.abort(&mut probe).ok();
                            continue; // outcomes[i] stays uncommitted
                        }
                        Err(e) => panic!("counter read failed: {e}"),
                    }
                    // Fold every site's delta into the base, run the
                    // operation on the consistent state, renegotiate.
                    let logical = base
                        + self
                            .engines
                            .iter()
                            .map(|e| e.peek(obj.as_str()) - base)
                            .sum::<i64>();
                    let lower_bound = self.shards[shard].counters[obj].lower_bound;
                    let (new_base, refilled) = if logical - amount >= lower_bound {
                        (logical - amount, false)
                    } else if let Some(refill) = refill_to {
                        (*refill, true)
                    } else {
                        // No refill semantics: apply the decrement on the
                        // consistent state (it is now a fully synchronized,
                        // serial operation).
                        (logical - amount, false)
                    };
                    let solver_micros = self.install_synchronized(obj, new_base, false);
                    self.stats.synchronizations += 1;
                    outcomes[i] = OpOutcome::synchronized(refilled, solver_micros);
                }
                SiteOp::Increment { obj, amount } => {
                    // A pure local increment: increments never threaten a
                    // `≥`-treaty, so they always commit locally (Appendix E:
                    // "instances of Payment run without ever needing to
                    // synchronize").
                    assert!(self.is_registered(obj), "counter `{obj}` not registered");
                    let value = staged
                        .get(obj)
                        .copied()
                        .unwrap_or_else(|| self.engines[site].peek(obj.as_str()));
                    if staged.insert(obj.clone(), value + amount.abs()).is_none() {
                        write_order.push(obj.clone());
                    }
                    segment.push(i);
                    outcomes[i] = OpOutcome::local_commit();
                }
                SiteOp::ForceSync { obj } => {
                    self.flush(
                        site,
                        &mut staged,
                        &mut write_order,
                        &mut segment,
                        &mut outcomes,
                    );
                    outcomes[i] = self.force_sync(obj);
                }
                SiteOp::Transaction { .. } => {
                    // The counter fast path cannot run general programs; the
                    // operation is typed as rejected, never a panic — a
                    // confused client gets a clean outcome back.
                    outcomes[i] = OpOutcome::unsupported();
                }
            }
        }
        self.flush(
            site,
            &mut staged,
            &mut write_order,
            &mut segment,
            &mut outcomes,
        );
        outcomes
    }

    /// Group-commits the staged run through one logged engine transaction,
    /// writing objects in first-touch order so seeded runs stay
    /// byte-for-byte reproducible. Like the one-at-a-time path, a lock
    /// conflict with a concurrent engine transaction does not panic — the
    /// run's operations report as uncommitted (the batch aborts as a unit,
    /// which is the group-commit analogue of the per-operation `WouldBlock`
    /// outcome).
    fn flush(
        &mut self,
        site: usize,
        staged: &mut HashMap<ObjId, i64>,
        write_order: &mut Vec<ObjId>,
        segment: &mut Vec<usize>,
        outcomes: &mut [OpOutcome],
    ) {
        if staged.is_empty() {
            segment.clear();
            return;
        }
        let writes: Vec<(&str, i64)> = write_order
            .iter()
            .map(|o| (o.as_str(), staged[o]))
            .collect();
        match self.engines[site].write_logged_batch(&writes) {
            Ok(()) => self.stats.local_commits += segment.len() as u64,
            Err(EngineError::WouldBlock { .. }) => {
                for &i in segment.iter() {
                    outcomes[i] = OpOutcome::default();
                }
            }
            Err(e) => panic!("group commit failed: {e}"),
        }
        staged.clear();
        write_order.clear();
        segment.clear();
    }

    /// Forces a synchronization on behalf of an operation whose treaty pins
    /// an object to its current value (e.g. TPC-C Delivery — Appendix E).
    fn force_sync(&mut self, obj: &ObjId) -> OpOutcome {
        let solver_micros = if self.is_registered(obj) {
            let base = self.shards[self.shard_of(obj)].counters[obj].base;
            let logical = base
                + self
                    .engines
                    .iter()
                    .map(|e| e.peek(obj.as_str()) - base)
                    .sum::<i64>();
            self.install_synchronized(obj, logical, false)
        } else {
            self.stats.negotiations += 1;
            0
        };
        self.stats.synchronizations += 1;
        OpOutcome::synchronized(false, solver_micros)
    }

    /// Installs a freshly synchronized base on every site (through logged
    /// engine transactions) and renegotiates the counter's allowances.
    /// Returns the solver time in microseconds.
    fn install_synchronized(&mut self, obj: &ObjId, new_base: i64, proactive: bool) -> u64 {
        for engine in &self.engines {
            write_through(engine, obj, new_base)
                .expect("synchronization runs with no transactions in flight");
        }
        let sites = self.engines.len();
        if self.tuning.adaptive.is_some() {
            self.refresh_adaptive_hints();
        }
        let shard = self.shard_of(obj);
        let meta = self.shards[shard]
            .counters
            .get_mut(obj)
            .expect("synchronizing a registered counter");
        meta.base = new_base;
        let hints = if self.tuning.adaptive.is_some() {
            &self.adaptive_hints
        } else {
            &self.hints
        };
        let previous = if self.tuning.warm_start {
            Some(meta.allowances.as_slice())
        } else {
            None
        };
        let (allowances, solver_micros) = negotiate_allowances_cached(
            self.mode,
            hints,
            sites,
            new_base,
            meta.lower_bound,
            self.timer,
            &mut self.cache,
            previous,
        );
        meta.allowances = allowances;
        self.stats.negotiations += 1;
        self.stats.solver_micros_total += solver_micros;
        if proactive {
            self.stats.proactive_negotiations += 1;
        }
        solver_micros
    }

    /// Folds one observed operation into the per-site consumption EWMA
    /// (no-op unless the adaptive loop is enabled).
    fn note_demand(&mut self, site: usize, amount: i64) {
        let Some(ad) = self.tuning.adaptive else {
            return;
        };
        let alpha = ad.op_alpha;
        for (i, d) in self.demand.iter_mut().enumerate() {
            *d *= 1.0 - alpha;
            if i == site {
                *d += alpha * amount.max(0) as f64;
            }
        }
    }

    /// Rebuilds the adaptive hints from the consumption EWMA (weights stay
    /// uniform until demand has been observed).
    fn refresh_adaptive_hints(&mut self) {
        self.adaptive_hints.expected_amount = self.hints.expected_amount;
        let total: f64 = self.demand.iter().sum();
        if total <= 0.0 {
            return;
        }
        for (w, d) in self
            .adaptive_hints
            .site_weights
            .iter_mut()
            .zip(&self.demand)
        {
            *w = (d / total).max(1e-6);
        }
    }

    /// Whether a proactive re-split should fire after a local commit left
    /// `new_value` on `site`: the site is close to exhausting its allowance
    /// *and* its observed demand share has drifted above its share of the
    /// current split.
    fn should_resplit(&self, site: usize, obj: &ObjId, new_value: i64) -> bool {
        let Some(ad) = self.tuning.adaptive else {
            return false;
        };
        let meta = &self.shards[self.shard_of(obj)].counters[obj];
        let allowance = -meta.allowances[site];
        if allowance <= 0 {
            return false;
        }
        let remaining = new_value - (meta.base + meta.allowances[site]);
        if remaining as f64 > ad.margin * allowance as f64 {
            return false;
        }
        let split_total: i64 = meta.allowances.iter().map(|a| -a).sum();
        let demand_total: f64 = self.demand.iter().sum();
        if split_total <= 0 || demand_total <= 0.0 {
            return false;
        }
        let demand_share = self.demand[site] / demand_total;
        let split_share = allowance as f64 / split_total as f64;
        demand_share - split_share >= ad.drift
    }
}

/// Writes `value` to `obj` through a fresh logged engine transaction.
fn write_through(engine: &Engine, obj: &ObjId, value: i64) -> Result<(), EngineError> {
    engine.write_logged(obj.as_str(), value)
}

impl SiteRuntime for ReplicatedRuntime {
    fn sites(&self) -> usize {
        self.engines.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        &self.engines[site]
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        self.inboxes[site].push_back(op);
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        let batch: Vec<SiteOp> = self.inboxes[site].drain(..).collect();
        self.run_batch(site, &batch)
    }

    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        // The batch bypasses the inbox: operations queued via `submit` stay
        // queued (a later `poll` runs them), and nothing is discarded.
        self.run_batch(site, ops)
    }

    fn synchronize(&mut self, _site: usize) -> u64 {
        // A full synchronization folds every counter with outstanding
        // deltas; counters already at their base are left untouched.
        let objs: Vec<ObjId> = self
            .shards
            .iter()
            .flat_map(|s| s.counters.keys().cloned())
            .collect();
        let mut solver_micros = 0;
        let mut folded = false;
        for obj in objs {
            let logical = self.logical_value(&obj);
            if logical != self.shards[self.shard_of(&obj)].counters[&obj].base {
                solver_micros += self.install_synchronized(&obj, logical, false);
                folded = true;
            }
        }
        if folded {
            self.stats.synchronizations += 1;
        }
        solver_micros
    }

    fn ensure_registered(&mut self, obj: &ObjId, initial: i64, lower_bound: i64) {
        if !self.is_registered(obj) {
            self.register(obj.clone(), initial, lower_bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_protocol::OptimizerConfig;
    use homeo_sim::DetRng;

    fn stock(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn homeo(sites: usize) -> ReplicatedRuntime {
        ReplicatedRuntime::new(
            sites,
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 10,
                    futures: 2,
                    seed: 21,
                }),
            },
        )
        .with_timer(Timer::fixed_zero())
    }

    fn order(
        runtime: &mut ReplicatedRuntime,
        site: usize,
        obj: &ObjId,
        amount: i64,
        refill_to: Option<i64>,
    ) -> OpOutcome {
        runtime.execute(
            site,
            SiteOp::Order {
                obj: obj.clone(),
                amount,
                refill_to,
            },
        )
    }

    #[test]
    fn most_orders_commit_locally() {
        let mut counters = homeo(2);
        counters.register(stock(0), 100, 1);
        let mut synced = 0;
        for i in 0..60 {
            let out = order(&mut counters, i % 2, &stock(0), 1, Some(99));
            assert!(out.committed);
            if out.synchronized {
                synced += 1;
            }
        }
        // 60 decrements over ~99 of headroom: synchronization must be rare.
        assert!(synced <= 6, "synced={synced}");
        assert!(counters.stats.local_commits >= 54);
    }

    #[test]
    fn protocol_value_matches_serial_micro_order_semantics() {
        // The logical counter value must follow the serial decrement/refill
        // semantics of Listing 1 exactly, no matter how operations are
        // spread over sites.
        for mode in [
            ReplicatedMode::EvenSplit,
            ReplicatedMode::Homeostasis {
                optimizer: Some(OptimizerConfig {
                    lookahead: 8,
                    futures: 2,
                    seed: 5,
                }),
            },
            ReplicatedMode::Homeostasis { optimizer: None },
        ] {
            let refill = 20;
            let mut counters = ReplicatedRuntime::new(3, mode).with_timer(Timer::fixed_zero());
            counters.register(stock(7), 12, 1);
            let mut serial = 12i64;
            let mut rng = DetRng::seed_from(17);
            for step in 0..200 {
                let site = rng.index(3);
                order(&mut counters, site, &stock(7), 1, Some(refill - 1));
                serial = if serial > 1 { serial - 1 } else { refill - 1 };
                assert_eq!(
                    counters.logical_value(&stock(7)),
                    serial,
                    "mode {mode:?}, step {step}"
                );
            }
        }
    }

    #[test]
    fn default_configuration_synchronizes_on_every_decrement() {
        let mut counters =
            ReplicatedRuntime::new(2, ReplicatedMode::Homeostasis { optimizer: None })
                .with_timer(Timer::fixed_zero());
        counters.register(stock(1), 50, 1);
        for i in 0..10 {
            let out = order(&mut counters, i % 2, &stock(1), 1, None);
            assert!(out.synchronized, "op {i}");
        }
    }

    #[test]
    fn even_split_matches_the_demarcation_behaviour() {
        let mut counters = ReplicatedRuntime::new(2, ReplicatedMode::EvenSplit);
        counters.register(stock(2), 101, 1);
        // Each site can take 50 decrements before the first synchronization.
        let mut synced_at = None;
        for i in 0..60 {
            let out = order(&mut counters, 0, &stock(2), 1, Some(100));
            if out.synchronized {
                synced_at = Some(i);
                break;
            }
        }
        assert_eq!(synced_at, Some(50));
    }

    #[test]
    fn increments_never_synchronize() {
        let mut counters = homeo(4);
        let balance = ObjId::new("balance[3]");
        counters.register(balance.clone(), 0, -1_000_000_000);
        for i in 0..40 {
            let out = counters.execute(
                i % 4,
                SiteOp::Increment {
                    obj: balance.clone(),
                    amount: 7,
                },
            );
            assert!(!out.synchronized);
        }
        assert_eq!(counters.logical_value(&balance), 40 * 7);
        assert_eq!(counters.stats.synchronizations, 0);
    }

    #[test]
    fn force_sync_counts_as_synchronization_and_folds_deltas() {
        let mut counters = homeo(2);
        let obj = ObjId::new("neworder[1]");
        counters.register(obj.clone(), 5, 0);
        order(&mut counters, 0, &obj, 1, None);
        let before = counters.stats.synchronizations;
        let out = counters.execute(0, SiteOp::ForceSync { obj: obj.clone() });
        assert!(out.synchronized);
        assert_eq!(counters.stats.synchronizations, before + 1);
        // After the sync every site observes the folded value.
        assert_eq!(counters.visible_value(0, &obj), 4);
        assert_eq!(counters.visible_value(1, &obj), 4);
    }

    #[test]
    fn treaty_invariant_is_maintained_under_random_load() {
        let mut counters = homeo(3);
        for i in 0..20 {
            counters.register(stock(i), 100, 1);
        }
        let mut rng = DetRng::seed_from(3);
        for _ in 0..2000 {
            let site = rng.index(3);
            let item = rng.index(20);
            order(
                &mut counters,
                site,
                &stock(item),
                rng.int_inclusive(1, 3),
                Some(99),
            );
            assert!(counters.all_treaties_hold());
        }
        // Synchronizations happen, but far less often than operations.
        assert!(counters.stats.synchronizations > 0);
        assert!(counters.stats.synchronizations * 5 < counters.stats.local_commits);
    }

    #[test]
    fn counters_are_spread_over_shards() {
        let mut counters = homeo(2);
        for i in 0..200 {
            counters.register(stock(i), 50, 1);
        }
        assert_eq!(counters.len(), 200);
        assert_eq!(counters.shard_count(), DEFAULT_SHARDS);
        let populated = (0..counters.shard_count())
            .filter(|&s| counters.shard_len(s) > 0)
            .count();
        assert!(
            populated > DEFAULT_SHARDS / 2,
            "only {populated} shards used"
        );
        // No shard holds everything.
        let max = (0..counters.shard_count())
            .map(|s| counters.shard_len(s))
            .max()
            .unwrap();
        assert!(max < 200, "one shard holds all counters");
        // Lookups route to the right shard.
        for i in 0..200 {
            assert!(counters.is_registered(&stock(i)));
            assert_eq!(counters.logical_value(&stock(i)), 50);
        }
    }

    #[test]
    fn resharding_is_supported_before_registration() {
        let counters = homeo(2).with_shards(4);
        assert_eq!(counters.shard_count(), 4);
    }

    #[test]
    fn batched_inbox_executes_in_submission_order() {
        let mut counters = homeo(2);
        counters.register(stock(0), 100, 1);
        counters.register(stock(1), 100, 1);
        for item in [0usize, 1, 0] {
            counters.submit(
                0,
                SiteOp::Order {
                    obj: stock(item),
                    amount: 1,
                    refill_to: Some(99),
                },
            );
        }
        let outcomes = counters.poll(0);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.committed));
        assert_eq!(counters.logical_value(&stock(0)), 98);
        assert_eq!(counters.logical_value(&stock(1)), 99);
        // The inbox is drained.
        assert!(counters.poll(0).is_empty());
    }

    #[test]
    fn submit_batch_group_commits_and_matches_one_at_a_time() {
        let ops: Vec<SiteOp> = (0..64)
            .map(|i| SiteOp::Order {
                obj: stock(i % 4),
                amount: 1,
                refill_to: Some(99),
            })
            .collect();
        // One-at-a-time reference run.
        let mut serial = homeo(2);
        for i in 0..4 {
            serial.register(stock(i), 100, 1);
        }
        let serial_outcomes: Vec<OpOutcome> =
            ops.iter().map(|op| serial.execute(0, op.clone())).collect();
        // Batched run over identical state.
        let mut batched = homeo(2);
        for i in 0..4 {
            batched.register(stock(i), 100, 1);
        }
        let batched_outcomes = batched.submit_batch(0, &ops);
        assert_eq!(serial_outcomes, batched_outcomes);
        for i in 0..4 {
            assert_eq!(
                serial.logical_value(&stock(i)),
                batched.logical_value(&stock(i))
            );
            assert_eq!(
                serial.visible_value(0, &stock(i)),
                batched.visible_value(0, &stock(i))
            );
        }
        assert_eq!(serial.stats.local_commits, batched.stats.local_commits);
        assert_eq!(
            serial.stats.synchronizations,
            batched.stats.synchronizations
        );
        // The batch folded its within-treaty run into far fewer WAL
        // transactions (group commit), while recovering to the same state.
        assert!(
            batched.engine(0).wal_len() < serial.engine(0).wal_len(),
            "group commit must shrink the log: {} vs {}",
            batched.engine(0).wal_len(),
            serial.engine(0).wal_len()
        );
        batched.crash_site(0);
        assert_eq!(
            batched.visible_value(0, &stock(0)),
            serial.visible_value(0, &stock(0)),
            "the group-committed state must be durable"
        );
    }

    #[test]
    fn violation_with_concurrently_locked_counter_reports_uncommitted() {
        let mut counters = homeo(2);
        counters.register(stock(0), 4, 1);
        // A concurrent engine transaction holds the counter's lock.
        let mut foreign = {
            let engine = counters.engine(0);
            let t = engine.begin();
            engine.write(&t, stock(0).as_str(), 100).unwrap();
            t
        };
        // The violating order must report uncommitted (as the serial path's
        // transactional read did), not panic inside the fold.
        let out = counters.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 10,
                refill_to: Some(50),
            },
        );
        assert!(!out.committed && !out.synchronized);
        counters.engine(0).abort(&mut foreign).unwrap();
        // Once the conflict clears the same operation synchronizes.
        let out = counters.execute(
            0,
            SiteOp::Order {
                obj: stock(0),
                amount: 10,
                refill_to: Some(50),
            },
        );
        assert!(out.committed && out.synchronized && out.refilled);
    }

    #[test]
    fn batched_increments_and_force_sync_flush_correctly() {
        let mut counters = homeo(2);
        counters.register(stock(0), 100, 1);
        let ops = vec![
            SiteOp::Increment {
                obj: stock(0),
                amount: 5,
            },
            SiteOp::Order {
                obj: stock(0),
                amount: 2,
                refill_to: Some(99),
            },
            SiteOp::ForceSync { obj: stock(0) },
            SiteOp::Increment {
                obj: stock(0),
                amount: 3,
            },
        ];
        let outcomes = counters.submit_batch(0, &ops);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.committed));
        assert!(outcomes[2].synchronized);
        // 100 + 5 − 2 folded by the sync, then +3 locally.
        assert_eq!(counters.logical_value(&stock(0)), 106);
        assert_eq!(counters.visible_value(1, &stock(0)), 103);
    }

    #[test]
    fn counter_state_survives_a_site_crash() {
        // The point of making the fast path engine-backed: counter state is
        // durable. Orders run through the WAL, so a crashed site replays its
        // committed decrements.
        let mut counters = homeo(2);
        counters.register(stock(0), 100, 1);
        for _ in 0..7 {
            let out = order(&mut counters, 0, &stock(0), 1, Some(99));
            assert!(out.committed);
        }
        let before = counters.visible_value(0, &stock(0));
        let logical_before = counters.logical_value(&stock(0));
        let wal_before = counters.engine(0).wal_len();
        assert!(wal_before > 0, "orders must be WAL-logged");
        counters.crash_site(0);
        assert_eq!(counters.visible_value(0, &stock(0)), before);
        assert_eq!(counters.logical_value(&stock(0)), logical_before);
        // And the runtime keeps working after recovery.
        let out = order(&mut counters, 0, &stock(0), 1, Some(99));
        assert!(out.committed);
    }

    #[test]
    fn explicit_synchronize_folds_outstanding_deltas() {
        let mut counters = homeo(2);
        counters.register(stock(0), 100, 1);
        order(&mut counters, 0, &stock(0), 5, Some(99));
        order(&mut counters, 1, &stock(0), 3, Some(99));
        let logical = counters.logical_value(&stock(0));
        counters.synchronize(0);
        // Every site now observes the logical value directly.
        assert_eq!(counters.visible_value(0, &stock(0)), logical);
        assert_eq!(counters.visible_value(1, &stock(0)), logical);
        assert_eq!(counters.logical_value(&stock(0)), logical);
    }
}
