//! Driving a [`SiteRuntime`] under the closed-loop simulation.
//!
//! `homeo-sim` owns the loop *mechanics* (virtual clock, event queue,
//! CPU-saturation model, metric aggregation) but sits below the protocol
//! layers, so it cannot name the system under test. This module is the
//! glue: [`drive`] pulls client [`homeo_sim::Arrival`]s from the loop, lets
//! a [`WorkloadDriver`] issue that client's transaction against the shared
//! [`SiteRuntime`] surface, and feeds the resulting cost components back.

use homeo_sim::{ClientOutcome, ClosedLoop, ClosedLoopConfig, DetRng, RunMetrics};

use crate::SiteRuntime;

/// A workload under closed-loop load: generates one client transaction per
/// call, executes it through the runtime, and prices it.
pub trait WorkloadDriver {
    /// Executes the next transaction issued by a client attached to `site`,
    /// using `rng` for all workload randomness, and reports its outcome and
    /// cost components.
    fn run_once(
        &mut self,
        site: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome;
}

impl<F> WorkloadDriver for F
where
    F: FnMut(usize, &mut dyn SiteRuntime, &mut DetRng) -> ClientOutcome,
{
    fn run_once(
        &mut self,
        site: usize,
        runtime: &mut dyn SiteRuntime,
        rng: &mut DetRng,
    ) -> ClientOutcome {
        self(site, runtime, rng)
    }
}

/// Runs the closed-loop simulation: every client arrival executes one
/// workload transaction against `runtime` and is charged its reported cost
/// components on the virtual clock.
pub fn drive(
    config: &ClosedLoopConfig,
    runtime: &mut dyn SiteRuntime,
    workload: &mut dyn WorkloadDriver,
) -> RunMetrics {
    let mut driver = ClosedLoop::new(config);
    while let Some(arrival) = driver.next_arrival() {
        let outcome = workload.run_once(arrival.replica, runtime, driver.rng());
        driver.complete(arrival, outcome);
    }
    driver.into_metrics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicated::ReplicatedRuntime;
    use crate::SiteOp;
    use homeo_lang::ids::ObjId;
    use homeo_protocol::ReplicatedMode;
    use homeo_sim::clock::millis;
    use homeo_sim::{CostComponents, Timer};

    #[test]
    fn the_closed_loop_drives_a_runtime_end_to_end() {
        let mut runtime =
            ReplicatedRuntime::new(2, ReplicatedMode::EvenSplit).with_timer(Timer::fixed_zero());
        for i in 0..50 {
            runtime.register(ObjId::new(format!("stock[{i}]")), 100, 1);
        }
        let config = ClosedLoopConfig {
            replicas: 2,
            clients_per_replica: 4,
            warmup: millis(100),
            measure: millis(2_000),
            seed: 9,
            cores_per_replica: 8,
        };
        let mut workload = |site: usize, rt: &mut dyn SiteRuntime, rng: &mut DetRng| {
            let obj = ObjId::new(format!("stock[{}]", rng.index(50)));
            let out = rt.execute(
                site,
                SiteOp::Order {
                    obj,
                    amount: 1,
                    refill_to: Some(99),
                },
            );
            ClientOutcome {
                committed: out.committed,
                synchronized: out.synchronized,
                costs: CostComponents {
                    local: 2_000,
                    communication: if out.synchronized { millis(200) } else { 0 },
                    solver: out.solver_micros,
                },
            }
        };
        let metrics = drive(&config, &mut runtime, &mut workload);
        assert!(metrics.counters.committed > 100);
        assert!(metrics.sync_ratio_percent() < 50.0);
        // The runtime really executed: counters moved and the WAL grew.
        assert!(runtime.stats.local_commits > 0);
        assert!(runtime.engine(0).wal_len() > 0);
    }

    #[test]
    fn seeded_drives_are_byte_for_byte_deterministic() {
        let run = || {
            let mut runtime = ReplicatedRuntime::new(2, ReplicatedMode::EvenSplit)
                .with_timer(Timer::fixed_zero());
            runtime.register(ObjId::new("stock[0]"), 500, 1);
            let config = ClosedLoopConfig {
                replicas: 2,
                clients_per_replica: 2,
                warmup: 0,
                measure: millis(500),
                seed: 4,
                cores_per_replica: 8,
            };
            let mut workload = |site: usize, rt: &mut dyn SiteRuntime, _rng: &mut DetRng| {
                let out = rt.execute(
                    site,
                    SiteOp::Order {
                        obj: ObjId::new("stock[0]"),
                        amount: 1,
                        refill_to: Some(499),
                    },
                );
                ClientOutcome {
                    committed: out.committed,
                    synchronized: out.synchronized,
                    costs: CostComponents {
                        local: 1_000,
                        communication: 0,
                        solver: out.solver_micros,
                    },
                }
            };
            let metrics = drive(&config, &mut runtime, &mut workload);
            (
                metrics.counters,
                runtime.logical_value(&ObjId::new("stock[0]")),
                runtime.engine(0).wal_len(),
            )
        };
        assert_eq!(run(), run());
    }
}
