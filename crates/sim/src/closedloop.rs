//! Closed-loop multi-client simulation mechanics.
//!
//! The paper's experiments attach `Nc` clients to each replica; every client
//! issues transactions back-to-back (closed loop), measurements start after a
//! warm-up period and run for a fixed measurement window (Section 6.1).
//!
//! This module owns the *mechanics* of that loop — the event queue, the
//! virtual clock, the CPU-saturation model and the metric aggregation — but
//! deliberately not the system under test. The simulator crate sits below
//! the protocol layers in the dependency graph, so it cannot (and does not)
//! define an executor interface; instead [`ClosedLoop`] is a pull-based
//! driver: callers ask for the [`Arrival`] of the next client, execute that
//! client's transaction however they like (the runtime layer drives a
//! `SiteRuntime`), and report the resulting [`ClientOutcome`] back via
//! [`ClosedLoop::complete`]. The loop turns outcomes into latency samples on
//! the virtual clock, applies a CPU-saturation factor once the number of
//! clients exceeds the replica's cores (the plateau visible in Figure 17),
//! and aggregates the statistics the paper plots.

use serde::{Deserialize, Serialize};

use crate::clock::{millis, SimTime};
use crate::events::EventQueue;
use crate::rng::DetRng;
use crate::stats::{LatencyStats, SyncCounter};

/// The cost components of one transaction execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostComponents {
    /// Local execution time (lock acquisition, reads, writes, commit).
    pub local: SimTime,
    /// Time spent waiting on inter-site communication.
    pub communication: SimTime,
    /// Time spent computing new treaties (solver / optimizer).
    pub solver: SimTime,
}

impl CostComponents {
    /// Total latency contribution.
    pub fn total(&self) -> SimTime {
        self.local + self.communication + self.solver
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &CostComponents) -> CostComponents {
        CostComponents {
            local: self.local + other.local,
            communication: self.communication + other.communication,
            solver: self.solver + other.solver,
        }
    }
}

/// The outcome of one client-issued transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientOutcome {
    /// Whether the transaction committed (false = aborted; it still consumed
    /// time).
    pub committed: bool,
    /// Whether the transaction required inter-site communication.
    pub synchronized: bool,
    /// Its cost components.
    pub costs: CostComponents,
}

/// Configuration of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Number of replicas (sites).
    pub replicas: usize,
    /// Clients attached to each replica.
    pub clients_per_replica: usize,
    /// Warm-up period excluded from measurements.
    pub warmup: SimTime,
    /// Measurement window.
    pub measure: SimTime,
    /// Random seed.
    pub seed: u64,
    /// CPU cores per replica; once `clients_per_replica` exceeds this, local
    /// execution time is inflated proportionally.
    pub cores_per_replica: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            replicas: 2,
            clients_per_replica: 16,
            warmup: millis(5_000),
            measure: millis(300_000),
            seed: 42,
            cores_per_replica: 32,
        }
    }
}

/// Aggregated metrics of a closed-loop run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Latency samples over all replicas (measurement window only).
    pub latency: LatencyStats,
    /// Per-replica latency samples.
    pub per_replica_latency: Vec<LatencyStats>,
    /// Commit / abort / synchronization counts over all replicas.
    pub counters: SyncCounter,
    /// Per-replica counters.
    pub per_replica_counters: Vec<SyncCounter>,
    /// Length of the measurement window.
    pub measured_time: SimTime,
    /// Summed cost components of synchronized (treaty-violating)
    /// transactions, for latency-breakdown figures.
    pub sync_breakdown_total: CostComponents,
    /// Number of synchronized transactions contributing to the breakdown.
    pub sync_breakdown_count: u64,
}

impl RunMetrics {
    /// Throughput per replica in committed transactions per second.
    pub fn throughput_per_replica(&self) -> f64 {
        if self.per_replica_counters.is_empty() {
            return 0.0;
        }
        self.counters.throughput_per_sec(self.measured_time)
            / self.per_replica_counters.len() as f64
    }

    /// Overall system throughput in committed transactions per second.
    pub fn throughput_total(&self) -> f64 {
        self.counters.throughput_per_sec(self.measured_time)
    }

    /// Synchronization ratio in percent.
    pub fn sync_ratio_percent(&self) -> f64 {
        self.counters.sync_ratio_percent()
    }

    /// Average cost breakdown of synchronized transactions, in milliseconds
    /// `(local, solver, communication)` — the bars of Figure 24.
    pub fn sync_breakdown_ms(&self) -> (f64, f64, f64) {
        if self.sync_breakdown_count == 0 {
            return (0.0, 0.0, 0.0);
        }
        let n = self.sync_breakdown_count as f64;
        (
            crate::clock::as_millis_f64(self.sync_breakdown_total.local) / n,
            crate::clock::as_millis_f64(self.sync_breakdown_total.solver) / n,
            crate::clock::as_millis_f64(self.sync_breakdown_total.communication) / n,
        )
    }
}

/// One client becoming runnable: the loop hands these out in virtual-time
/// order and expects a [`ClientOutcome`] back via [`ClosedLoop::complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Virtual time of the arrival.
    pub now: SimTime,
    /// The client id (global across replicas).
    pub client: usize,
    /// The replica the client is attached to.
    pub replica: usize,
}

/// The closed-loop driver. See the module docs for the protocol:
/// [`ClosedLoop::next_arrival`] → execute → [`ClosedLoop::complete`], until
/// `next_arrival` returns `None`, then [`ClosedLoop::into_metrics`].
#[derive(Debug)]
pub struct ClosedLoop {
    config: ClosedLoopConfig,
    rng: DetRng,
    queue: EventQueue<usize>,
    metrics: RunMetrics,
    end_time: SimTime,
    saturation_num: u64,
    saturation_den: u64,
}

impl ClosedLoop {
    /// Sets up a run: all clients are scheduled with slightly staggered
    /// start times so ties don't all land at t=0.
    pub fn new(config: &ClosedLoopConfig) -> Self {
        assert!(config.replicas > 0 && config.clients_per_replica > 0);
        let mut queue: EventQueue<usize> = EventQueue::new();
        let total_clients = config.replicas * config.clients_per_replica;
        for client in 0..total_clients {
            queue.schedule(client as SimTime, client);
        }
        ClosedLoop {
            config: *config,
            rng: DetRng::seed_from(config.seed),
            queue,
            metrics: RunMetrics {
                per_replica_latency: vec![LatencyStats::new(); config.replicas],
                per_replica_counters: vec![SyncCounter::new(); config.replicas],
                measured_time: config.measure,
                ..Default::default()
            },
            end_time: config.warmup + config.measure,
            // CPU saturation factor: with more runnable clients than cores,
            // local work takes proportionally longer (the replicas in the
            // paper share one 32-core machine for the microbenchmark).
            saturation_num: config.clients_per_replica.max(1) as u64,
            saturation_den: config.cores_per_replica.max(1) as u64,
        }
    }

    /// The next client to run, or `None` once the measurement window has
    /// elapsed.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        let (now, client) = self.queue.pop()?;
        if now >= self.end_time {
            return None;
        }
        Some(Arrival {
            now,
            client,
            replica: client % self.config.replicas,
        })
    }

    /// The workload randomness source for this run.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Records the outcome of the transaction issued at `arrival` and
    /// reschedules the client (closed loop: it immediately issues its next
    /// transaction once this one completes).
    pub fn complete(&mut self, arrival: Arrival, outcome: ClientOutcome) {
        let local_effective = if self.saturation_num > self.saturation_den {
            outcome.costs.local * self.saturation_num / self.saturation_den
        } else {
            outcome.costs.local
        };
        let latency = local_effective + outcome.costs.communication + outcome.costs.solver;
        let latency = latency.max(1);
        if arrival.now >= self.config.warmup {
            let replica = arrival.replica;
            self.metrics.latency.record(latency);
            self.metrics.per_replica_latency[replica].record(latency);
            self.metrics
                .counters
                .record(outcome.committed, outcome.synchronized);
            self.metrics.per_replica_counters[replica]
                .record(outcome.committed, outcome.synchronized);
            if outcome.synchronized {
                self.metrics.sync_breakdown_total =
                    self.metrics.sync_breakdown_total.plus(&CostComponents {
                        local: local_effective,
                        communication: outcome.costs.communication,
                        solver: outcome.costs.solver,
                    });
                self.metrics.sync_breakdown_count += 1;
            }
        }
        self.queue.schedule(arrival.now + latency, arrival.client);
    }

    /// Finishes the run and returns the aggregated metrics.
    pub fn into_metrics(self) -> RunMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::millis;

    /// Test-local convenience mirroring how the runtime layer drives the
    /// loop: one closure call per arrival.
    fn run_with(
        config: &ClosedLoopConfig,
        mut execute: impl FnMut(usize, &mut DetRng) -> ClientOutcome,
    ) -> RunMetrics {
        let mut driver = ClosedLoop::new(config);
        while let Some(arrival) = driver.next_arrival() {
            let outcome = execute(arrival.replica, driver.rng());
            driver.complete(arrival, outcome);
        }
        driver.into_metrics()
    }

    fn quick_config() -> ClosedLoopConfig {
        ClosedLoopConfig {
            replicas: 2,
            clients_per_replica: 4,
            warmup: millis(100),
            measure: millis(10_000),
            seed: 1,
            cores_per_replica: 32,
        }
    }

    #[test]
    fn constant_latency_yields_expected_throughput() {
        // Every transaction takes 10 ms; 8 clients → ~800 tx/s total.
        let metrics = run_with(&quick_config(), |_replica, _rng| ClientOutcome {
            committed: true,
            synchronized: false,
            costs: CostComponents {
                local: millis(10),
                communication: 0,
                solver: 0,
            },
        });
        let total = metrics.throughput_total();
        assert!((700.0..900.0).contains(&total), "total={total}");
        assert_eq!(metrics.sync_ratio_percent(), 0.0);
        assert!(metrics.latency.len() > 100);
    }

    #[test]
    fn synchronized_fraction_is_reflected_in_the_ratio() {
        let mut count = 0u64;
        let metrics = run_with(&quick_config(), move |_replica, _rng| {
            count += 1;
            let synchronized = count.is_multiple_of(50); // 2%
            ClientOutcome {
                committed: true,
                synchronized,
                costs: CostComponents {
                    local: millis(2),
                    communication: if synchronized { millis(200) } else { 0 },
                    solver: if synchronized { millis(40) } else { 0 },
                },
            }
        });
        let ratio = metrics.sync_ratio_percent();
        assert!((1.0..4.0).contains(&ratio), "ratio={ratio}");
        // Breakdown reflects the synchronized transactions only.
        let (_, solver_ms, comm_ms) = metrics.sync_breakdown_ms();
        assert!((solver_ms - 40.0).abs() < 1.0);
        assert!((comm_ms - 200.0).abs() < 1.0);
        // The latency profile is bimodal: p50 small, p99+ large.
        let lat = &metrics.latency;
        assert!(lat.percentile_ms(50.0) < 10.0);
        assert!(lat.percentile_ms(99.5) > 100.0);
    }

    #[test]
    fn cpu_saturation_inflates_local_time() {
        let exec = |_r: usize, _rng: &mut DetRng| ClientOutcome {
            committed: true,
            synchronized: false,
            costs: CostComponents {
                local: millis(2),
                communication: 0,
                solver: 0,
            },
        };
        let undersubscribed = ClosedLoopConfig {
            clients_per_replica: 8,
            cores_per_replica: 16,
            ..quick_config()
        };
        let oversubscribed = ClosedLoopConfig {
            clients_per_replica: 64,
            cores_per_replica: 16,
            ..quick_config()
        };
        let a = run_with(&undersubscribed, exec);
        let b = run_with(&oversubscribed, exec);
        // Per-client latency rises under oversubscription...
        assert!(b.latency.percentile_ms(50.0) > a.latency.percentile_ms(50.0));
        // ...so per-replica throughput stops scaling linearly (plateau).
        let scale = b.throughput_per_replica() / a.throughput_per_replica();
        assert!(scale < 3.0, "scale={scale}");
    }

    #[test]
    fn warmup_samples_are_excluded() {
        let config = ClosedLoopConfig {
            replicas: 1,
            clients_per_replica: 1,
            warmup: millis(1_000),
            measure: millis(1_000),
            seed: 3,
            cores_per_replica: 4,
        };
        let metrics = run_with(&config, |_r, _rng| ClientOutcome {
            committed: true,
            synchronized: false,
            costs: CostComponents {
                local: millis(100),
                communication: 0,
                solver: 0,
            },
        });
        // 1 s window / 100 ms per txn ≈ 10 samples, not 20.
        assert!(metrics.latency.len() <= 11);
        assert!(metrics.latency.len() >= 9);
    }

    #[test]
    fn aborted_transactions_count_against_throughput() {
        let metrics = run_with(&quick_config(), |_r, _rng| ClientOutcome {
            committed: false,
            synchronized: true,
            costs: CostComponents {
                local: millis(1),
                communication: millis(10),
                solver: 0,
            },
        });
        assert_eq!(metrics.counters.committed, 0);
        assert!(metrics.counters.aborted > 0);
        assert_eq!(metrics.throughput_total(), 0.0);
        assert_eq!(metrics.sync_ratio_percent(), 100.0);
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let exec = |_r: usize, rng: &mut DetRng| {
            let heavy = rng.chance(0.05);
            ClientOutcome {
                committed: true,
                synchronized: heavy,
                costs: CostComponents {
                    local: millis(2),
                    communication: if heavy { millis(100) } else { 0 },
                    solver: 0,
                },
            }
        };
        let a = run_with(&quick_config(), exec);
        let b = run_with(&quick_config(), exec);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.latency.len(), b.latency.len());
    }

    #[test]
    fn arrivals_carry_the_replica_assignment() {
        let config = ClosedLoopConfig {
            replicas: 3,
            clients_per_replica: 2,
            warmup: 0,
            measure: millis(10),
            seed: 5,
            cores_per_replica: 4,
        };
        let mut driver = ClosedLoop::new(&config);
        let mut seen = std::collections::BTreeSet::new();
        while let Some(arrival) = driver.next_arrival() {
            assert_eq!(arrival.replica, arrival.client % 3);
            seen.insert(arrival.replica);
            driver.complete(
                arrival,
                ClientOutcome {
                    committed: true,
                    synchronized: false,
                    costs: CostComponents {
                        local: millis(1),
                        communication: 0,
                        solver: 0,
                    },
                },
            );
        }
        assert_eq!(seen.len(), 3, "every replica served arrivals");
    }
}
