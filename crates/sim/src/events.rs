//! An ordered event queue for discrete-event simulation.
//!
//! Events are delivered in timestamp order; ties are broken by insertion
//! order so runs are fully deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimTime;

/// A priority queue of timed events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let slot = self.payloads.len();
        self.payloads.push(Some(event));
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
    }

    /// Removes and returns the earliest event together with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse((at, _, slot))) = self.heap.pop() {
            if let Some(event) = self.payloads[slot].take() {
                return Some((at, event));
            }
        }
        None
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
