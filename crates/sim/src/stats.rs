//! Latency, throughput and synchronization statistics.
//!
//! The paper reports three families of metrics: latency-by-percentile
//! profiles (Figures 10, 13, 16, 19, 21), latency CDFs (Figure 27),
//! per-replica throughput (Figures 11, 14, 17, 20, 22, 25, 28) and the
//! synchronization ratio — the fraction of transactions that required
//! inter-site communication (Figures 12, 15, 18, 26, 29).

use serde::{Deserialize, Serialize};

use crate::clock::{as_millis_f64, as_secs_f64, SimTime};

/// A collection of latency samples with percentile and CDF queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<SimTime>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.samples.push(latency);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (0.0..=100.0) in simulated microseconds.
    pub fn percentile(&mut self, p: f64) -> SimTime {
        if self.samples.is_empty() {
            return 0;
        }
        self.ensure_sorted();
        let rank = (p / 100.0 * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// The `p`-th percentile in milliseconds.
    pub fn percentile_ms(&mut self, p: f64) -> f64 {
        as_millis_f64(self.percentile(p))
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: u128 = self.samples.iter().map(|s| *s as u128).sum();
        as_millis_f64((total / self.samples.len() as u128) as SimTime)
    }

    /// Maximum latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        as_millis_f64(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// The latency profile at the given percentiles (the x-axis used by the
    /// paper's latency figures).
    pub fn profile_ms(&mut self, percentiles: &[f64]) -> Vec<(f64, f64)> {
        percentiles
            .iter()
            .map(|p| (*p, self.percentile_ms(*p)))
            .collect()
    }

    /// The empirical CDF evaluated at the given latencies (in milliseconds):
    /// returns `(latency_ms, fraction of samples ≤ latency)` pairs
    /// (Figure 27's axes).
    pub fn cdf_at_ms(&mut self, points_ms: &[f64]) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        points_ms
            .iter()
            .map(|p| {
                let limit = (*p * 1_000.0) as SimTime;
                let count = self.samples.partition_point(|s| *s <= limit);
                (*p, count as f64 / self.samples.len().max(1) as f64)
            })
            .collect()
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Counts transactions and how many of them required synchronization, plus
/// commit/abort bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncCounter {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (e.g. losers of a treaty-violation vote, lock
    /// timeouts).
    pub aborted: u64,
    /// Transactions that required at least one round of inter-site
    /// communication.
    pub synchronized: u64,
}

impl SyncCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transaction outcome.
    pub fn record(&mut self, committed: bool, synchronized: bool) {
        if committed {
            self.committed += 1;
        } else {
            self.aborted += 1;
        }
        if synchronized {
            self.synchronized += 1;
        }
    }

    /// Total transactions seen.
    pub fn total(&self) -> u64 {
        self.committed + self.aborted
    }

    /// The synchronization ratio in percent (the y-axis of Figures 12, 15,
    /// 18, 26, 29).
    pub fn sync_ratio_percent(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.synchronized as f64 / self.total() as f64
        }
    }

    /// Committed transactions per second of simulated time.
    pub fn throughput_per_sec(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.committed as f64 / as_secs_f64(elapsed)
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &SyncCounter) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.synchronized += other.synchronized;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::millis;

    #[test]
    fn percentiles_of_a_known_distribution() {
        let mut stats = LatencyStats::new();
        for i in 1..=100 {
            stats.record(millis(i));
        }
        assert_eq!(stats.percentile(0.0), millis(1));
        assert_eq!(stats.percentile(100.0), millis(100));
        let p50 = stats.percentile_ms(50.0);
        assert!((49.0..=51.0).contains(&p50), "p50={p50}");
        let p97 = stats.percentile_ms(97.0);
        assert!((96.0..=98.0).contains(&p97), "p97={p97}");
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut stats = LatencyStats::new();
        assert_eq!(stats.percentile(50.0), 0);
        assert_eq!(stats.mean_ms(), 0.0);
        assert!(stats.is_empty());
    }

    #[test]
    fn mean_and_max() {
        let mut stats = LatencyStats::new();
        stats.record(millis(2));
        stats.record(millis(4));
        stats.record(millis(6));
        assert!((stats.mean_ms() - 4.0).abs() < 1e-9);
        assert!((stats.max_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_matches_the_sample_distribution() {
        let mut stats = LatencyStats::new();
        // 90 fast (2 ms), 10 slow (200 ms) — the bimodal shape homeostasis
        // latencies have.
        for _ in 0..90 {
            stats.record(millis(2));
        }
        for _ in 0..10 {
            stats.record(millis(200));
        }
        let cdf = stats.cdf_at_ms(&[1.0, 10.0, 500.0]);
        assert!((cdf[0].1 - 0.0).abs() < 1e-9);
        assert!((cdf[1].1 - 0.9).abs() < 1e-9);
        assert!((cdf[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_is_monotone() {
        let mut stats = LatencyStats::new();
        for i in 0..1000u64 {
            stats.record(i * 37 % 5000);
        }
        let profile = stats.profile_ms(&[10.0, 50.0, 90.0, 99.0]);
        for w in profile.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn sync_counter_ratios_and_throughput() {
        let mut c = SyncCounter::new();
        for i in 0..100 {
            c.record(true, i % 50 == 0); // 2% synchronized
        }
        assert_eq!(c.committed, 100);
        assert!((c.sync_ratio_percent() - 2.0).abs() < 1e-9);
        // 100 commits over 2 simulated seconds = 50 tx/s.
        assert!((c.throughput_per_sec(crate::clock::seconds(2)) - 50.0).abs() < 1e-9);
        assert_eq!(c.throughput_per_sec(0), 0.0);
    }

    #[test]
    fn merge_combines_counters_and_samples() {
        let mut a = LatencyStats::new();
        a.record(millis(1));
        let mut b = LatencyStats::new();
        b.record(millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);

        let mut ca = SyncCounter::new();
        ca.record(true, false);
        let mut cb = SyncCounter::new();
        cb.record(false, true);
        ca.merge(&cb);
        assert_eq!(ca.total(), 2);
        assert_eq!(ca.aborted, 1);
        assert_eq!(ca.synchronized, 1);
    }
}
