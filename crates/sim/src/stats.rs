//! Latency, throughput and synchronization statistics.
//!
//! The paper reports three families of metrics: latency-by-percentile
//! profiles (Figures 10, 13, 16, 19, 21), latency CDFs (Figure 27),
//! per-replica throughput (Figures 11, 14, 17, 20, 22, 25, 28) and the
//! synchronization ratio — the fraction of transactions that required
//! inter-site communication (Figures 12, 15, 18, 26, 29).
//!
//! The latency recorder ([`LatencyStats`]) is the telemetry crate's
//! log-bucketed histogram (one histogram implementation in the workspace);
//! it is re-exported here because simulated latencies are [`SimTime`]
//! microseconds and every consumer historically reached it through
//! `homeo_sim::stats`.
//!
//! [`SimTime`]: crate::clock::SimTime

use serde::{Deserialize, Serialize};

use crate::clock::{as_secs_f64, SimTime};

pub use homeo_telemetry::LatencyStats;

/// Counts transactions and how many of them required synchronization, plus
/// commit/abort bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncCounter {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions (e.g. losers of a treaty-violation vote, lock
    /// timeouts).
    pub aborted: u64,
    /// Transactions that required at least one round of inter-site
    /// communication.
    pub synchronized: u64,
}

impl SyncCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transaction outcome.
    pub fn record(&mut self, committed: bool, synchronized: bool) {
        if committed {
            self.committed += 1;
        } else {
            self.aborted += 1;
        }
        if synchronized {
            self.synchronized += 1;
        }
    }

    /// Total transactions seen.
    pub fn total(&self) -> u64 {
        self.committed + self.aborted
    }

    /// The synchronization ratio in percent (the y-axis of Figures 12, 15,
    /// 18, 26, 29).
    pub fn sync_ratio_percent(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.synchronized as f64 / self.total() as f64
        }
    }

    /// Committed transactions per second of simulated time.
    pub fn throughput_per_sec(&self, elapsed: SimTime) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.committed as f64 / as_secs_f64(elapsed)
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &SyncCounter) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.synchronized += other.synchronized;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::millis;

    #[test]
    fn percentiles_of_a_known_distribution() {
        let mut stats = LatencyStats::new();
        for i in 1..=100 {
            stats.record(millis(i));
        }
        assert_eq!(stats.percentile(0.0), millis(1));
        assert_eq!(stats.percentile(100.0), millis(100));
        // The histogram reports a bucket upper bound: within 1/16 above.
        let p50 = stats.percentile_ms(50.0);
        assert!((49.0..=54.0).contains(&p50), "p50={p50}");
        let p97 = stats.percentile_ms(97.0);
        assert!((96.0..=104.0).contains(&p97), "p97={p97}");
    }

    #[test]
    fn sync_counter_ratios_and_throughput() {
        let mut c = SyncCounter::new();
        for i in 0..100 {
            c.record(true, i % 50 == 0); // 2% synchronized
        }
        assert_eq!(c.committed, 100);
        assert!((c.sync_ratio_percent() - 2.0).abs() < 1e-9);
        // 100 commits over 2 simulated seconds = 50 tx/s.
        assert!((c.throughput_per_sec(crate::clock::seconds(2)) - 50.0).abs() < 1e-9);
        assert_eq!(c.throughput_per_sec(0), 0.0);
    }

    #[test]
    fn merge_combines_counters_and_samples() {
        let mut a = LatencyStats::new();
        a.record(millis(1));
        let mut b = LatencyStats::new();
        b.record(millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);

        let mut ca = SyncCounter::new();
        ca.record(true, false);
        let mut cb = SyncCounter::new();
        cb.record(false, true);
        ca.merge(&cb);
        assert_eq!(ca.total(), 2);
        assert_eq!(ca.aborted, 1);
        assert_eq!(ca.synchronized, 1);
    }
}
