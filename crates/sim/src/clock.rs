//! Virtual time.
//!
//! Simulated time is measured in integer microseconds to keep event ordering
//! exact and runs reproducible.

use serde::{Deserialize, Serialize};

/// A point (or duration) in simulated time, in microseconds.
pub type SimTime = u64;

/// Microseconds per millisecond.
pub const MICROS_PER_MILLI: SimTime = 1_000;

/// Microseconds per second.
pub const MICROS_PER_SEC: SimTime = 1_000_000;

/// Converts milliseconds to [`SimTime`].
pub fn millis(ms: u64) -> SimTime {
    ms * MICROS_PER_MILLI
}

/// Converts seconds to [`SimTime`].
pub fn seconds(s: u64) -> SimTime {
    s * MICROS_PER_SEC
}

/// Converts a [`SimTime`] to fractional milliseconds.
pub fn as_millis_f64(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_MILLI as f64
}

/// Converts a [`SimTime`] to fractional seconds.
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / MICROS_PER_SEC as f64
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    /// Panics if `t` is in the past — the simulation must never move time
    /// backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock moved backwards: {} -> {t}", self.now);
        self.now = t;
    }

    /// Advances the clock by `delta`.
    pub fn advance_by(&mut self, delta: SimTime) {
        self.now += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(millis(100), 100_000);
        assert_eq!(seconds(2), 2_000_000);
        assert!((as_millis_f64(1500) - 1.5).abs() < 1e-9);
        assert!((as_secs_f64(2_500_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(10);
        c.advance_by(5);
        assert_eq!(c.now(), 15);
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_time_travel() {
        let mut c = SimClock::new();
        c.advance_to(10);
        c.advance_to(5);
    }
}
