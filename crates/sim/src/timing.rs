//! Injectable wall-clock measurement.
//!
//! The implementation lives in `homeo-telemetry` (the bottom of the
//! dependency graph) so phase stopwatches recorded into telemetry
//! histograms share the same determinism seam as the solver measurements;
//! this module re-exports it under the historical `homeo_sim::Timer` path.

pub use homeo_telemetry::{Stopwatch, Timer};
