//! Network model: per-pair round-trip times.
//!
//! Table 1 of the paper gives the average RTTs between the five EC2
//! datacenters used in the evaluation; the microbenchmark instead uses a
//! single configurable RTT between all replicas. [`RttMatrix`] covers both.

use serde::{Deserialize, Serialize};

use crate::clock::{millis, SimTime};

/// The average RTTs (in milliseconds) between the five EC2 datacenters of
/// the paper's evaluation, exactly as reported in Table 1, in
/// replica-addition order (UE, UW, IE, SG, BR). Intra-datacenter RTT is
/// below 1 ms and treated as 0. This is the single source of truth; every
/// consumer (workload scenarios, figure generators) derives from it via
/// [`RttMatrix::table1`].
pub const TABLE1_RTT_MS: [[u64; 5]; 5] = [
    [0, 64, 80, 243, 164],
    [64, 0, 170, 210, 227],
    [80, 170, 0, 285, 235],
    [243, 210, 285, 0, 372],
    [164, 227, 235, 372, 0],
];

/// A symmetric matrix of round-trip times between sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RttMatrix {
    /// `rtt[i][j]` is the round-trip time between sites `i` and `j`.
    rtt: Vec<Vec<SimTime>>,
}

impl RttMatrix {
    /// The five-datacenter matrix of the paper's Table 1
    /// ([`TABLE1_RTT_MS`]). Use [`RttMatrix::truncated`] for the first `n`
    /// datacenters in replica-addition order.
    pub fn table1() -> Self {
        let rows: Vec<Vec<u64>> = TABLE1_RTT_MS.iter().map(|row| row.to_vec()).collect();
        Self::from_millis(&rows)
    }

    /// A matrix where every distinct pair has the same RTT (the
    /// microbenchmark setting).
    pub fn uniform(sites: usize, rtt_ms: u64) -> Self {
        let rtt = (0..sites)
            .map(|i| {
                (0..sites)
                    .map(|j| if i == j { 0 } else { millis(rtt_ms) })
                    .collect()
            })
            .collect();
        RttMatrix { rtt }
    }

    /// Builds a matrix from explicit millisecond entries (must be square and
    /// symmetric; the diagonal is forced to zero).
    pub fn from_millis(entries: &[Vec<u64>]) -> Self {
        let n = entries.len();
        assert!(
            entries.iter().all(|row| row.len() == n),
            "matrix not square"
        );
        let mut rtt = vec![vec![0; n]; n];
        for i in 0..n {
            for j in 0..n {
                assert_eq!(entries[i][j], entries[j][i], "matrix not symmetric");
                rtt[i][j] = if i == j { 0 } else { millis(entries[i][j]) };
            }
        }
        RttMatrix { rtt }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.rtt.len()
    }

    /// The round-trip time between two sites.
    pub fn rtt(&self, a: usize, b: usize) -> SimTime {
        self.rtt[a][b]
    }

    /// One-way latency between two sites (RTT / 2).
    pub fn one_way(&self, a: usize, b: usize) -> SimTime {
        self.rtt[a][b] / 2
    }

    /// The largest RTT from `site` to any other site — the cost of a
    /// broadcast round initiated by `site` (everyone must answer before the
    /// round completes).
    pub fn max_rtt_from(&self, site: usize) -> SimTime {
        self.rtt[site].iter().copied().max().unwrap_or(0)
    }

    /// The largest RTT between any pair of sites.
    pub fn max_rtt(&self) -> SimTime {
        (0..self.sites())
            .map(|i| self.max_rtt_from(i))
            .max()
            .unwrap_or(0)
    }

    /// Restricts the matrix to the first `n` sites (used when sweeping the
    /// number of replicas over the Table 1 datacenters in order).
    pub fn truncated(&self, n: usize) -> RttMatrix {
        assert!(n <= self.sites());
        RttMatrix {
            rtt: self.rtt[..n].iter().map(|row| row[..n].to_vec()).collect(),
        }
    }

    /// Extends the matrix to `n` sites by tiling the datacenters: site `i`
    /// lives in datacenter `i % sites()`, cross-datacenter pairs keep the
    /// base matrix's RTT, and two distinct sites in the *same* datacenter
    /// talk over the intra-datacenter `same_dc_rtt_ms`. This is how the
    /// N-site scaling sweep stretches the Table 1 five-datacenter geometry
    /// past five replicas without inventing new WAN distances.
    pub fn tiled(&self, n: usize, same_dc_rtt_ms: u64) -> RttMatrix {
        let base = self.sites();
        assert!(base > 0 && n >= base);
        let rtt = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        if i == j {
                            0
                        } else if i % base == j % base {
                            millis(same_dc_rtt_ms)
                        } else {
                            self.rtt[i % base][j % base]
                        }
                    })
                    .collect()
            })
            .collect();
        RttMatrix { rtt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix() {
        let m = RttMatrix::uniform(3, 100);
        assert_eq!(m.sites(), 3);
        assert_eq!(m.rtt(0, 1), millis(100));
        assert_eq!(m.rtt(2, 2), 0);
        assert_eq!(m.one_way(0, 2), millis(50));
        assert_eq!(m.max_rtt(), millis(100));
    }

    #[test]
    fn explicit_matrix_and_truncation() {
        // A 3-site slice in the spirit of Table 1 (UE, UW, IE).
        let m = RttMatrix::from_millis(&[vec![0, 64, 80], vec![64, 0, 170], vec![80, 170, 0]]);
        assert_eq!(m.rtt(1, 2), millis(170));
        assert_eq!(m.max_rtt_from(0), millis(80));
        assert_eq!(m.max_rtt(), millis(170));
        let t = m.truncated(2);
        assert_eq!(t.sites(), 2);
        assert_eq!(t.max_rtt(), millis(64));
        // Tiling past the base size: site 3 shares datacenter 0 with site
        // 0 (intra-DC RTT), but keeps datacenter 0's WAN distances to the
        // other datacenters.
        let big = m.tiled(5, 2);
        assert_eq!(big.sites(), 5);
        assert_eq!(big.rtt(0, 3), millis(2)); // same datacenter
        assert_eq!(big.rtt(3, 1), millis(64)); // dc0 ↔ dc1, as in the base
        assert_eq!(big.rtt(4, 2), millis(170)); // dc1 ↔ dc2, as in the base
        assert_eq!(big.rtt(3, 3), 0);
    }

    #[test]
    fn table1_matches_the_paper() {
        let m = RttMatrix::table1();
        assert_eq!(m.sites(), 5);
        assert_eq!(m.rtt(0, 1), millis(64)); // UE-UW
        assert_eq!(m.rtt(0, 3), millis(243)); // UE-SG
        assert_eq!(m.rtt(3, 4), millis(372)); // SG-BR
        assert_eq!(m.max_rtt(), millis(372));
        for i in 0..5 {
            assert_eq!(m.rtt(i, i), 0);
            for j in 0..5 {
                assert_eq!(m.rtt(i, j), m.rtt(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_matrices_are_rejected() {
        RttMatrix::from_millis(&[vec![0, 10], vec![20, 0]]);
    }

    #[test]
    #[should_panic(expected = "not square")]
    fn non_square_matrices_are_rejected() {
        RttMatrix::from_millis(&[vec![0, 10]]);
    }
}
