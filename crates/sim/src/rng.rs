//! Deterministic random number generation for workloads.
//!
//! All randomness in the simulator flows through [`DetRng`], a thin wrapper
//! around a seeded PRNG, so that every experiment is exactly reproducible
//! from its configuration (seed included).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic, seedable random source with the helpers the paper's
/// workloads need (uniform ranges, hot/cold item selection, weighted picks).
#[derive(Debug, Clone)]
pub struct DetRng {
    rng: StdRng,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    pub fn int_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        self.rng.gen_range(lo..=hi)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// True with probability `p` (0.0..=1.0).
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Selects an item id following the paper's hot/cold skew model:
    /// `hot_fraction` of the item space (the lowest ids) is "hot" and is hit
    /// with probability `hot_probability` (the `H` knob of Section 6.2).
    pub fn hot_cold_item(
        &mut self,
        num_items: usize,
        hot_fraction: f64,
        hot_probability: f64,
    ) -> usize {
        let hot_count = ((num_items as f64 * hot_fraction).ceil() as usize)
            .clamp(1, num_items);
        if self.chance(hot_probability) {
            self.index(hot_count)
        } else if hot_count == num_items {
            self.index(num_items)
        } else {
            hot_count + self.index(num_items - hot_count)
        }
    }

    /// Picks an index according to the given (not necessarily normalised)
    /// weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// `k` distinct uniform indices in `[0, n)` (k ≤ n).
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot draw {k} distinct values from {n}");
        let mut chosen = Vec::with_capacity(k);
        while chosen.len() < k {
            let candidate = self.index(n);
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.int_inclusive(0, 1000), b.int_inclusive(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let sa: Vec<i64> = (0..20).map(|_| a.int_inclusive(0, 1_000_000)).collect();
        let sb: Vec<i64> = (0..20).map(|_| b.int_inclusive(0, 1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = DetRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.int_inclusive(-5, 5);
            assert!((-5..=5).contains(&v));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn hot_cold_skew_prefers_hot_items() {
        let mut rng = DetRng::seed_from(11);
        let n = 10_000;
        let hot_fraction = 0.01;
        let hot_probability = 0.5;
        let hot_count = 100;
        let mut hot_hits = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if rng.hot_cold_item(n, hot_fraction, hot_probability) < hot_count {
                hot_hits += 1;
            }
        }
        let ratio = hot_hits as f64 / trials as f64;
        assert!((ratio - hot_probability).abs() < 0.03, "ratio={ratio}");
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = DetRng::seed_from(13);
        let weights = [45.0, 45.0, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.10).abs() < 0.02, "delivery fraction {f2}");
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = DetRng::seed_from(17);
        for _ in 0..100 {
            let picks = rng.distinct_indices(10, 5);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::seed_from(0).int_inclusive(3, 2);
    }
}
