//! Deterministic random number generation for workloads.
//!
//! All randomness in the simulator flows through [`DetRng`], a self-contained
//! seeded PRNG (xoshiro256++ initialised via splitmix64, no external crates),
//! so that every experiment is exactly reproducible from its configuration
//! (seed included) on any platform and toolchain.

/// A deterministic, seedable random source with the helpers the paper's
/// workloads need (uniform ranges, hot/cold item selection, weighted picks).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand the 64-bit seed into the 256-bit xoshiro state with
        // splitmix64, the initialisation the xoshiro authors recommend.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (debiased with a rejection loop).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = u128::from(self.next_u64()) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    pub fn int_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.bounded(span + 1) as i64)
    }

    /// A uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.bounded(n as u64) as usize
    }

    /// True with probability `p` (0.0..=1.0).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits give the standard dyadic-uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Selects an item id following the paper's hot/cold skew model:
    /// `hot_fraction` of the item space (the lowest ids) is "hot" and is hit
    /// with probability `hot_probability` (the `H` knob of Section 6.2).
    pub fn hot_cold_item(
        &mut self,
        num_items: usize,
        hot_fraction: f64,
        hot_probability: f64,
    ) -> usize {
        let hot_count = ((num_items as f64 * hot_fraction).ceil() as usize).clamp(1, num_items);
        if self.chance(hot_probability) {
            self.index(hot_count)
        } else if hot_count == num_items {
            self.index(num_items)
        } else {
            hot_count + self.index(num_items - hot_count)
        }
    }

    /// Picks an index according to the given (not necessarily normalised)
    /// weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// `k` distinct uniform indices in `[0, n)` (k ≤ n).
    pub fn distinct_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot draw {k} distinct values from {n}");
        let mut chosen = Vec::with_capacity(k);
        while chosen.len() < k {
            let candidate = self.index(n);
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.int_inclusive(0, 1000), b.int_inclusive(0, 1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let sa: Vec<i64> = (0..20).map(|_| a.int_inclusive(0, 1_000_000)).collect();
        let sb: Vec<i64> = (0..20).map(|_| b.int_inclusive(0, 1_000_000)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = DetRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.int_inclusive(-5, 5);
            assert!((-5..=5).contains(&v));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn hot_cold_skew_prefers_hot_items() {
        let mut rng = DetRng::seed_from(11);
        let n = 10_000;
        let hot_fraction = 0.01;
        let hot_probability = 0.5;
        let hot_count = 100;
        let mut hot_hits = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if rng.hot_cold_item(n, hot_fraction, hot_probability) < hot_count {
                hot_hits += 1;
            }
        }
        let ratio = hot_hits as f64 / trials as f64;
        assert!((ratio - hot_probability).abs() < 0.03, "ratio={ratio}");
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = DetRng::seed_from(13);
        let weights = [45.0, 45.0, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.10).abs() < 0.02, "delivery fraction {f2}");
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = DetRng::seed_from(17);
        for _ in 0..100 {
            let picks = rng.distinct_indices(10, 5);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::seed_from(0).int_inclusive(3, 2);
    }
}
