//! # homeo-sim
//!
//! Deterministic discrete-event simulation substrate.
//!
//! The paper evaluates the homeostasis protocol on EC2 instances spread over
//! five datacenters with round-trip times between 50 ms and ~400 ms
//! (Table 1). This crate provides the simulation equivalent of that testbed:
//!
//! * a virtual clock in microseconds ([`clock`]),
//! * an ordered event queue ([`events`]),
//! * a deterministic, seedable random source with the distributions the
//!   workloads need ([`rng`]),
//! * a network model parameterised by an RTT matrix ([`net`]),
//! * latency / throughput / synchronization-ratio statistics, including the
//!   percentile profiles and CDFs the paper plots ([`stats`]),
//! * an injectable elapsed-time source ([`timing`]) so seeded runs can be
//!   byte-for-byte reproducible while production runs measure real solver
//!   time,
//! * the closed-loop multi-client mechanics ([`closedloop`]): a pull-based
//!   driver that hands out client arrivals and charges each transaction the
//!   cost components (local execution, communication rounds, solver time)
//!   reported by the system under test. The system itself is driven through
//!   the `SiteRuntime` layer (crate `homeo-runtime`), which sits above this
//!   crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod closedloop;
pub mod events;
pub mod net;
pub mod rng;
pub mod stats;
pub mod timing;

pub use clock::{SimClock, SimTime, MICROS_PER_MILLI};
pub use closedloop::{
    Arrival, ClientOutcome, ClosedLoop, ClosedLoopConfig, CostComponents, RunMetrics,
};
pub use events::EventQueue;
pub use net::{RttMatrix, TABLE1_RTT_MS};
pub use rng::DetRng;
pub use stats::{LatencyStats, SyncCounter};
pub use timing::{Stopwatch, Timer};
