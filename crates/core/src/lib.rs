//! # homeostasis-core
//!
//! Public facade for the Homeostasis Protocol reproduction
//! (*The Homeostasis Protocol: Avoiding Transaction Coordination Through
//! Program Analysis*, SIGMOD 2015).
//!
//! Downstream users depend on this crate alone; it re-exports the pieces of
//! the workspace in one coherent API and adds [`HomeostasisSystem`], a
//! convenience wrapper that drives the whole pipeline:
//!
//! ```
//! use homeostasis_core::{HomeostasisSystem, lang::programs, lang::Database, protocol::Loc};
//!
//! // 1. Describe the workload (transactions in L) and where objects live.
//! let transactions = vec![programs::t1(), programs::t2()];
//! let loc = Loc::from_pairs([("x", 0usize), ("y", 1usize)]);
//! let initial = Database::from_pairs([("x", 10), ("y", 13)]);
//!
//! // 2. Build the system: analysis, treaty generation and per-site engines
//! //    all happen here.
//! let mut system = HomeostasisSystem::builder()
//!     .transactions(transactions)
//!     .location(loc)
//!     .sites(2)
//!     .initial_database(initial)
//!     .build();
//!
//! // 3. Execute transactions; most commit without any communication.
//! let outcome = system.execute("T1").unwrap();
//! assert!(outcome.committed);
//! assert!(system.verify_equivalence());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The transaction languages `L` and `L++` (Section 2).
pub use homeo_lang as lang;

/// Symbolic-table program analysis (Section 2).
pub use homeo_analysis as analysis;

/// Linear arithmetic, SAT, MaxSAT and MaxSMT solving substrate.
pub use homeo_solver as solver;

/// The transactional storage engine substrate.
pub use homeo_store as store;

/// The deterministic discrete-event simulator substrate.
pub use homeo_sim as sim;

/// The observability layer: histograms, the metrics registry and the
/// injectable elapsed-time seam.
pub use homeo_telemetry as telemetry;

/// The homeostasis protocol itself (Sections 3–5).
pub use homeo_protocol as protocol;

/// The shared per-site execution runtime (`submit`/`poll`/`synchronize`
/// over engine-backed sites) every protocol variant runs through.
pub use homeo_runtime as runtime;

/// Baseline coordination protocols (2PC, local, demarcation/OPT).
pub use homeo_baselines as baselines;

/// The threaded, message-passing cluster subsystem (worker threads behind
/// a `Transport` of serialized frames; deterministic fault injection).
pub use homeo_cluster as cluster;

/// The evaluation workloads (microbenchmark, TPC-C subset, Table 1).
pub use homeo_workloads as workloads;

use homeo_lang::ast::Transaction;
use homeo_lang::database::Database;
use homeo_protocol::correctness::verify_round;
use homeo_protocol::exec::ExecError;
use homeo_protocol::round::TxnOutcome;
use homeo_protocol::{HomeostasisCluster, Loc, OptimizerConfig};

/// Builder for [`HomeostasisSystem`].
#[derive(Default)]
pub struct SystemBuilder {
    transactions: Vec<Transaction>,
    loc: Loc,
    sites: usize,
    initial: Database,
    optimizer: Option<OptimizerConfig>,
}

impl SystemBuilder {
    /// The workload: every transaction that can run in the system (the
    /// protocol requires all transaction code to be known up front).
    pub fn transactions(mut self, transactions: Vec<Transaction>) -> Self {
        self.transactions = transactions;
        self
    }

    /// The object-location map `Loc`.
    pub fn location(mut self, loc: Loc) -> Self {
        self.loc = loc;
        self
    }

    /// The number of sites.
    pub fn sites(mut self, sites: usize) -> Self {
        self.sites = sites;
        self
    }

    /// The initial (consistent) database.
    pub fn initial_database(mut self, db: Database) -> Self {
        self.initial = db;
        self
    }

    /// Enables the workload-driven treaty optimizer (Algorithm 1). Without
    /// this the always-valid default configuration of Theorem 4.3 is used.
    pub fn optimizer(mut self, config: OptimizerConfig) -> Self {
        self.optimizer = Some(config);
        self
    }

    /// Builds the system: runs the offline analysis, negotiates the first
    /// round's treaties and initializes one storage engine per site.
    pub fn build(self) -> HomeostasisSystem {
        assert!(self.sites > 0, "a system needs at least one site");
        assert!(
            !self.transactions.is_empty(),
            "a system needs at least one transaction"
        );
        let names = self.transactions.iter().map(|t| t.name.clone()).collect();
        let cluster = HomeostasisCluster::new(
            self.transactions,
            self.loc,
            self.sites,
            self.initial,
            self.optimizer,
        );
        HomeostasisSystem { cluster, names }
    }
}

/// A running homeostasis deployment: analyzed workload, per-site engines,
/// current treaties.
pub struct HomeostasisSystem {
    cluster: HomeostasisCluster,
    names: Vec<String>,
}

impl HomeostasisSystem {
    /// Starts building a system.
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Executes the named transaction on its home site.
    pub fn execute(&mut self, name: &str) -> Result<TxnOutcome, ExecError> {
        let index = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown transaction `{name}`"));
        self.cluster.execute(index)
    }

    /// Executes a transaction by index.
    pub fn execute_index(&mut self, index: usize) -> Result<TxnOutcome, ExecError> {
        self.cluster.execute(index)
    }

    /// The authoritative global database (union of all sites' local parts).
    pub fn global_database(&self) -> Database {
        self.cluster.global_database()
    }

    /// The treaty round currently in force.
    pub fn treaty_round(&self) -> u64 {
        self.cluster.treaties().round
    }

    /// Checks Theorem 3.8 for the current round: the protocol execution must
    /// be observationally equivalent to a serial execution.
    pub fn verify_equivalence(&self) -> bool {
        verify_round(&self.cluster).is_equivalent()
    }

    /// Accesses the underlying cluster for advanced use (treaty inspection,
    /// statistics).
    pub fn cluster(&self) -> &HomeostasisCluster {
        &self.cluster
    }

    /// The registered transaction names, in index order.
    pub fn transaction_names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use homeo_lang::programs;

    fn system() -> HomeostasisSystem {
        HomeostasisSystem::builder()
            .transactions(vec![programs::t1(), programs::t2()])
            .location(Loc::from_pairs([("x", 0usize), ("y", 1usize)]))
            .sites(2)
            .initial_database(Database::from_pairs([("x", 10), ("y", 13)]))
            .optimizer(OptimizerConfig {
                lookahead: 8,
                futures: 2,
                seed: 1,
            })
            .build()
    }

    #[test]
    fn end_to_end_pipeline_runs_and_stays_equivalent() {
        let mut sys = system();
        for i in 0..20 {
            let name = if i % 2 == 0 { "T1" } else { "T2" };
            let out = sys.execute(name).unwrap();
            assert!(out.committed);
        }
        assert!(sys.verify_equivalence());
        assert_eq!(sys.transaction_names(), &["T1", "T2"]);
    }

    #[test]
    #[should_panic(expected = "unknown transaction")]
    fn unknown_transaction_names_panic() {
        let mut sys = system();
        let _ = sys.execute("nope");
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn empty_workloads_are_rejected() {
        let _ = HomeostasisSystem::builder()
            .sites(1)
            .location(Loc::new().with_default_site(0))
            .build();
    }
}
