//! Injectable wall-clock measurement.
//!
//! The paper's throughput figures fold measured solver time into simulated
//! latency, so the protocol layers need to time real work — but seeded test
//! runs must be byte-for-byte reproducible. [`Timer`] is the seam: production
//! paths use [`Timer::Wall`] (a monotonic clock), tests use
//! [`Timer::Fixed`], which charges a constant duration to every measured
//! section regardless of how long it actually took.
//!
//! [`Timer::measure`] covers sections that fit in one closure;
//! [`Stopwatch`] (from [`Timer::start`]) covers phases that span several
//! calls — a synchronization round's delta collection or install barrier
//! stretches across many message deliveries, and each phase boundary just
//! reads the stopwatch. A stopwatch made from a fixed timer reports the
//! constant, so histograms fed from phase timers stay value-deterministic
//! in seeded runs.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// A source of elapsed-time measurements for instrumented sections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Timer {
    /// Measure real elapsed time with a monotonic clock.
    #[default]
    Wall,
    /// Report a fixed number of microseconds for every measured section
    /// (deterministic; use in tests and seeded reproductions).
    Fixed(u64),
}

impl Timer {
    /// A deterministic timer that reports zero elapsed time.
    pub fn fixed_zero() -> Self {
        Timer::Fixed(0)
    }

    /// Runs `f`, returning its result together with the elapsed time in
    /// microseconds (real for [`Timer::Wall`], constant for
    /// [`Timer::Fixed`]).
    pub fn measure<R>(self, f: impl FnOnce() -> R) -> (R, u64) {
        match self {
            Timer::Wall => {
                let started = Instant::now();
                let result = f();
                (result, started.elapsed().as_micros() as u64)
            }
            Timer::Fixed(micros) => (f(), micros),
        }
    }

    /// Starts a stopwatch for a phase that spans multiple calls.
    pub fn start(self) -> Stopwatch {
        match self {
            Timer::Wall => Stopwatch::Wall(Instant::now()),
            Timer::Fixed(micros) => Stopwatch::Fixed(micros),
        }
    }
}

/// A running phase measurement (see [`Timer::start`]).
#[derive(Debug, Clone, Copy)]
pub enum Stopwatch {
    /// Real elapsed time since the start instant.
    Wall(Instant),
    /// Always reports the timer's constant (deterministic runs).
    Fixed(u64),
}

impl Stopwatch {
    /// Microseconds elapsed since [`Timer::start`] (the constant for a
    /// fixed timer).
    pub fn elapsed_micros(&self) -> u64 {
        match self {
            Stopwatch::Wall(started) => started.elapsed().as_micros() as u64,
            Stopwatch::Fixed(micros) => *micros,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_timers_report_the_constant() {
        let (value, micros) = Timer::Fixed(42).measure(|| 7);
        assert_eq!(value, 7);
        assert_eq!(micros, 42);
        assert_eq!(Timer::fixed_zero().measure(|| ()).1, 0);
    }

    #[test]
    fn wall_timers_report_monotonic_elapsed_time() {
        let (value, micros) = Timer::Wall.measure(|| {
            // Do a little real work so the measurement is meaningful.
            (0..1000u64).sum::<u64>()
        });
        assert_eq!(value, 499_500);
        // Elapsed time is non-negative by construction; just make sure the
        // measurement did not produce something absurd.
        assert!(micros < 10_000_000);
    }

    #[test]
    fn default_is_wall() {
        assert_eq!(Timer::default(), Timer::Wall);
    }

    #[test]
    fn fixed_stopwatches_report_the_constant_forever() {
        let watch = Timer::Fixed(17).start();
        assert_eq!(watch.elapsed_micros(), 17);
        assert_eq!(watch.elapsed_micros(), 17);
    }

    #[test]
    fn wall_stopwatches_are_monotone() {
        let watch = Timer::Wall.start();
        let a = watch.elapsed_micros();
        let b = watch.elapsed_micros();
        assert!(b >= a);
    }
}
