//! A per-site metrics registry with index-typed handles.
//!
//! Registration (`counter` / `gauge` / `histogram`) interns a name and
//! returns a copyable id; the record path (`add` / `set` / `observe`) is a
//! bare slice index with no allocation, hashing or locking. The registry is
//! single-owner by design — each site's event loop owns one and records
//! into it from its own thread; cross-site aggregation happens by merging
//! the rendered values (or [`crate::Histogram`]s) client-side.
//!
//! [`Registry::render`] emits a Prometheus-style text dump: counters and
//! gauges as `name value` lines, histograms as `_count`/`_sum`/`_min`/
//! `_max` plus `_p50`/`_p90`/`_p99`/`_p999` quantile lines, each family
//! preceded by a `# TYPE` comment. This is the payload of the cluster's
//! `MetricsReply` wire message.

use std::fmt::Write as _;

use crate::hist::Histogram;

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A named collection of counters, gauges and histograms (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a monotonic counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return HistId(i);
        }
        self.hists.push((name.to_string(), Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Increments a counter.
    pub fn add(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a gauge to an absolute value.
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, id: HistId, value: u64) {
        self.hists[id.0].1.record(value);
    }

    /// A counter's current value, by name (tests and CI checks).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A gauge's current value, by name.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram, by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// A histogram, by handle.
    pub fn histogram_at(&self, id: HistId) -> &Histogram {
        &self.hists[id.0].1
    }

    /// Renders the registry as a Prometheus-style text dump (module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.hists {
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}_count {}", hist.count());
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_min {}", hist.min());
            let _ = writeln!(out, "{name}_max {}", hist.max());
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
                let _ = writeln!(out, "{name}_{label} {}", hist.quantile(q));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let mut reg = Registry::new();
        let a = reg.counter("frames_in_total");
        let b = reg.counter("frames_in_total");
        assert_eq!(a, b);
        reg.add(a, 2);
        reg.inc(b);
        assert_eq!(reg.counter_value("frames_in_total"), Some(3));
    }

    #[test]
    fn gauges_hold_the_last_set_value() {
        let mut reg = Registry::new();
        let g = reg.gauge("write_queue_bytes");
        reg.set(g, 4096);
        reg.set(g, 128);
        assert_eq!(reg.gauge_value("write_queue_bytes"), Some(128));
    }

    #[test]
    fn render_emits_every_metric_family() {
        let mut reg = Registry::new();
        let c = reg.counter("frames_in_total");
        let g = reg.gauge("queue_bytes");
        let h = reg.histogram("latency_micros");
        reg.add(c, 7);
        reg.set(g, -3);
        for v in [100u64, 200, 300] {
            reg.observe(h, v);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE frames_in_total counter"));
        assert!(text.contains("frames_in_total 7"));
        assert!(text.contains("queue_bytes -3"));
        assert!(text.contains("latency_micros_count 3"));
        assert!(text.contains("latency_micros_sum 600"));
        assert!(text.contains("latency_micros_min 100"));
        assert!(text.contains("latency_micros_max 300"));
        assert!(text.contains("latency_micros_p50 "));
        assert!(text.contains("latency_micros_p999 "));
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        let reg = Registry::new();
        assert_eq!(reg.counter_value("nope"), None);
        assert_eq!(reg.gauge_value("nope"), None);
        assert!(reg.histogram_by_name("nope").is_none());
    }
}
