//! # homeo-telemetry
//!
//! The workspace's observability layer: everything the protocol, the
//! cluster data plane and the load drivers record about themselves.
//!
//! The crate sits at the *bottom* of the dependency graph (its only
//! dependency is the serde shim) so every layer — the simulator, the
//! runtime, the cluster backends, the bench suite — can share one
//! histogram implementation and one registry format:
//!
//! * [`Histogram`] — a mergeable, fixed-size log-bucketed HDR-style
//!   latency histogram: exact below 16, ≤ 1/16 relative bucket error
//!   above, element-wise-additive merge (associative and commutative, so
//!   per-connection and per-site instances aggregate exactly), and
//!   saturation into the top bucket for absurd values;
//! * [`LatencyStats`] — the microsecond-domain view the paper's figures
//!   use (percentile profiles, CDFs, mean/max in milliseconds), now a thin
//!   wrapper over [`Histogram`] instead of a second implementation;
//! * [`Registry`] — named counters, gauges and histograms behind
//!   index-typed handles; registration allocates, the record path is a
//!   bare slice index. [`Registry::render`] produces the Prometheus-style
//!   text dump the cluster's `MetricsRequest` wire message answers with;
//! * [`Timer`] / [`Stopwatch`] — the injectable elapsed-time seam. It
//!   lives here (re-exported by `homeo-sim` for compatibility) so phase
//!   timers recorded into histograms stay value-deterministic under
//!   [`Timer::Fixed`], exactly like the solver measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod timing;

pub use hist::{Histogram, LatencyStats};
pub use registry::{CounterId, GaugeId, HistId, Registry};
pub use timing::{Stopwatch, Timer};
