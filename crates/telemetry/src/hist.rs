//! Mergeable log-bucketed latency histograms.
//!
//! [`Histogram`] is the workspace's one histogram implementation: a fixed
//! array of HDR-style log-linear buckets over `u64` values (microseconds by
//! convention). Values below 16 are exact; above that each power of two is
//! split into 16 linear sub-buckets, so a recorded value lands in a bucket
//! whose width is at most 1/16 of its lower bound (≤ 6.25 % relative
//! quantile error). Values at or above 2^40 (≈ 12.7 days in microseconds)
//! saturate into the top bucket.
//!
//! The record path is a leading-zero count plus one slice index — no
//! allocation, no sorting, no sampling. Merging adds bucket arrays
//! element-wise, which is associative and commutative, so per-connection
//! and per-site instances aggregate exactly in any order.
//!
//! [`LatencyStats`] is the microsecond-domain view the paper's figures use
//! (percentile profiles, CDFs, mean/max in milliseconds), kept as a thin
//! wrapper so the simulator and workload crates did not have to change
//! shape when their sample-vector implementation was deleted.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power of two, as a bit count (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Exponent at which values saturate into the top bucket.
const MAX_EXP: u32 = 40;
/// Total bucket count: 16 exact buckets below 16, then 16 per power of two.
const BUCKETS: usize = ((MAX_EXP - SUB_BITS) as usize + 1) * SUB_COUNT;

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    if exp >= MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((v >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
    ((exp - SUB_BITS) as usize) * SUB_COUNT + SUB_COUNT + sub
}

/// The inclusive `(lower, upper)` value range of a bucket.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < SUB_COUNT {
        return (i as u64, i as u64);
    }
    let exp = SUB_BITS + ((i - SUB_COUNT) / SUB_COUNT) as u32;
    let sub = ((i - SUB_COUNT) % SUB_COUNT) as u64;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (SUB_COUNT as u64 + sub) * width;
    (lower, lower + width - 1)
}

/// A fixed-size log-bucketed histogram of `u64` values (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value. Allocation-free (a deserialized histogram with a
    /// foreign bucket layout is re-sized once, defensively).
    pub fn record(&mut self, v: u64) {
        if self.buckets.len() != BUCKETS {
            self.buckets.resize(BUCKETS, 0);
        }
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0.0..=1.0): the upper bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample, clamped to the
    /// observed min/max (so `quantile(0.0)` is the exact minimum and
    /// `quantile(1.0)` the exact maximum). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let (_, upper) = bucket_bounds(i);
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// The fraction of recorded values ≤ `x` (0.0 when empty). Exact at and
    /// beyond the observed extremes; linearly interpolated inside the
    /// bucket `x` falls into.
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.count == 0 || x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        let cut = bucket_index(x);
        let mut below = 0u64;
        for n in &self.buckets[..cut] {
            below += n;
        }
        let (lower, upper) = bucket_bounds(cut);
        let inside = self.buckets[cut] as f64 * (x - lower + 1) as f64 / (upper - lower + 1) as f64;
        ((below as f64 + inside) / self.count as f64).min(1.0)
    }

    /// Merges `other` into `self` (element-wise bucket addition; associative
    /// and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() != BUCKETS {
            self.buckets.resize(BUCKETS, 0);
        }
        for (i, n) in other.buckets.iter().enumerate().take(BUCKETS) {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A collection of latency samples (microseconds) with percentile and CDF
/// queries, backed by [`Histogram`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    hist: Histogram,
}

impl LatencyStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in microseconds.
    pub fn record(&mut self, latency: u64) {
        self.hist.record(latency);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// The underlying histogram (for merging with wire-level telemetry).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// The `p`-th percentile (0.0..=100.0) in microseconds.
    pub fn percentile(&self, p: f64) -> u64 {
        self.hist.quantile(p / 100.0)
    }

    /// The `p`-th percentile in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.percentile(p) as f64 / 1_000.0
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.hist.mean() / 1_000.0
    }

    /// Maximum latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.hist.max() as f64 / 1_000.0
    }

    /// The latency profile at the given percentiles (the x-axis used by the
    /// paper's latency figures).
    pub fn profile_ms(&self, percentiles: &[f64]) -> Vec<(f64, f64)> {
        percentiles
            .iter()
            .map(|p| (*p, self.percentile_ms(*p)))
            .collect()
    }

    /// The empirical CDF evaluated at the given latencies (in milliseconds):
    /// returns `(latency_ms, fraction of samples ≤ latency)` pairs
    /// (Figure 27's axes).
    pub fn cdf_at_ms(&self, points_ms: &[f64]) -> Vec<(f64, f64)> {
        points_ms
            .iter()
            .map(|p| (*p, self.hist.fraction_le((*p * 1_000.0) as u64)))
            .collect()
    }

    /// Merges another recorder into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn millis(ms: u64) -> u64 {
        ms * 1_000
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_bounds_invert_bucket_index() {
        // Every bucket's bounds map back to the bucket, and the bucket
        // width never exceeds 1/16 of its lower bound.
        for i in 0..BUCKETS {
            let (lower, upper) = bucket_bounds(i);
            assert_eq!(bucket_index(lower), i, "lower bound of bucket {i}");
            if i < BUCKETS - 1 {
                assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
                let next = bucket_bounds(i + 1).0;
                assert_eq!(upper + 1, next, "buckets {i} and {} contiguous", i + 1);
            }
            if lower >= 16 {
                assert!(
                    (upper - lower + 1) * 16 <= lower + 16,
                    "bucket {i} too wide"
                );
            }
        }
    }

    #[test]
    fn absurd_values_saturate_into_the_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1 << 60);
        h.record(1 << MAX_EXP);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1 << MAX_EXP), BUCKETS - 1);
        assert_eq!(h.count(), 3);
        // The exact max survives saturation; mid-quantiles report the cap.
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.quantile(0.5) >= bucket_bounds(BUCKETS - 1).0);
    }

    #[test]
    fn quantiles_track_exact_values_within_bucket_error() {
        let mut h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        // A deterministic long-tailed stream.
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1_000) * (x % 97) + 1;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len()) - 1;
            let truth = exact[rank] as f64;
            let approx = h.quantile(q) as f64;
            assert!(
                approx >= truth && approx <= truth * (1.0 + 1.0 / 16.0) + 1.0,
                "q={q}: approx={approx} truth={truth}"
            );
        }
        assert_eq!(h.quantile(0.0), exact[0]);
        assert_eq!(h.quantile(1.0), *exact.last().unwrap());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut parts: Vec<Histogram> = Vec::new();
        for seed in 1..=3u64 {
            let mut h = Histogram::new();
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15);
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.record(x % 1_000_000);
            }
            parts.push(h);
        }
        // (a ⊕ b) ⊕ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // c ⊕ (b ⊕ a)
        let mut inner = parts[1].clone();
        inner.merge(&parts[0]);
        let mut right = parts[2].clone();
        right.merge(&inner);
        assert_eq!(left, right);
        assert_eq!(left.count(), 1500);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = LatencyStats::new();
        assert_eq!(stats.percentile(50.0), 0);
        assert_eq!(stats.mean_ms(), 0.0);
        assert!(stats.is_empty());
    }

    #[test]
    fn mean_and_max() {
        let mut stats = LatencyStats::new();
        stats.record(millis(2));
        stats.record(millis(4));
        stats.record(millis(6));
        assert!((stats.mean_ms() - 4.0).abs() < 1e-9);
        assert!((stats.max_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_matches_the_sample_distribution() {
        let mut stats = LatencyStats::new();
        // 90 fast (2 ms), 10 slow (200 ms) — the bimodal shape homeostasis
        // latencies have.
        for _ in 0..90 {
            stats.record(millis(2));
        }
        for _ in 0..10 {
            stats.record(millis(200));
        }
        let cdf = stats.cdf_at_ms(&[1.0, 10.0, 500.0]);
        assert!((cdf[0].1 - 0.0).abs() < 1e-9);
        assert!((cdf[1].1 - 0.9).abs() < 1e-9);
        assert!((cdf[2].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_is_monotone() {
        let mut stats = LatencyStats::new();
        for i in 0..1000u64 {
            stats.record(i * 37 % 5000);
        }
        let profile = stats.profile_ms(&[10.0, 50.0, 90.0, 99.0]);
        for w in profile.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn merge_combines_latency_recorders() {
        let mut a = LatencyStats::new();
        a.record(millis(1));
        let mut b = LatencyStats::new();
        b.record(millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.max_ms() - 3.0).abs() < 1e-9);
    }
}
