//! Exact rational arithmetic on `i128` numerators/denominators.
//!
//! Fourier–Motzkin elimination multiplies and adds constraint coefficients;
//! doing that in floating point would make feasibility checks unsound. The
//! magnitudes that arise from treaty templates are tiny, so an `i128`-backed
//! normalized fraction is more than enough.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let (num, den) = (num * sign, den * sign);
        let g = gcd(num, den).max(1);
        Rational {
            num: num / g,
            den: den / g,
        }
    }

    /// Creates an integer rational.
    pub fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (after normalization).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True when the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True when the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True when the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Largest integer `≤ self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(&self) -> i128 {
        -((-*self).floor())
    }

    /// The reciprocal.
    ///
    /// # Panics
    /// Panics when the value is zero.
    pub fn recip(&self) -> Self {
        Rational::new(self.den, self.num)
    }

    /// Converts to `i64` when the value is an integer in range.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(-half, Rational::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::from_int(3) > Rational::new(5, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn to_i64_only_for_integers() {
        assert_eq!(Rational::from_int(42).to_i64(), Some(42));
        assert_eq!(Rational::new(1, 2).to_i64(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 6).to_string(), "1/2");
        assert_eq!(Rational::from_int(-4).to_string(), "-4");
    }
}
