//! Propositional CNF representation and a DPLL SAT solver.
//!
//! The instances produced by the homeostasis pipeline are small (tens to a
//! few hundred variables), so a classic DPLL with unit propagation and a
//! most-occurring-literal branching heuristic is plenty, while staying easy
//! to audit. Assumption literals are supported so that the MaxSAT layer can
//! perform deletion-based unsat-core extraction.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A propositional variable, identified by index (0-based).
pub type VarId = usize;

/// A literal: a variable together with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Literal {
    /// The variable.
    pub var: VarId,
    /// True for the positive literal `x`, false for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal for `var`.
    pub fn pos(var: VarId) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal for `var`.
    pub fn neg(var: VarId) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// The opposite literal.
    pub fn negated(self) -> Self {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Whether the literal is satisfied by the given variable value.
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Builds a clause from literals.
    pub fn new(literals: impl IntoIterator<Item = Literal>) -> Self {
        Clause {
            literals: literals.into_iter().collect(),
        }
    }

    /// The empty clause (always false).
    pub fn empty() -> Self {
        Clause::default()
    }

    /// True if the clause contains the literal.
    pub fn contains(&self, lit: Literal) -> bool {
        self.literals.contains(&lit)
    }
}

/// A CNF formula.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh variable and returns its id.
    pub fn fresh_var(&mut self) -> VarId {
        let id = self.num_vars;
        self.num_vars += 1;
        id
    }

    /// Adds a clause; literals referring to unknown variables grow the
    /// variable count.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause.literals {
            if lit.var >= self.num_vars {
                self.num_vars = lit.var + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: Literal) {
        self.add_clause(Clause::new([lit]));
    }

    /// Adds a pairwise at-most-one constraint over the literals (standard
    /// quadratic encoding, adequate for the small relaxation groups produced
    /// by Fu-Malik).
    pub fn add_at_most_one(&mut self, lits: &[Literal]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.add_clause(Clause::new([lits[i].negated(), lits[j].negated()]));
            }
        }
    }

    /// Evaluates the formula under a (total) assignment.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.literals
                .iter()
                .any(|l| l.var < assignment.len() && l.satisfied_by(assignment[l.var]))
        })
    }
}

/// The result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SatResult {
    /// Satisfiable with the given assignment (indexed by variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True when satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// The model, if any.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }
}

/// A DPLL solver with unit propagation.
#[derive(Debug, Default)]
pub struct DpllSolver {
    /// Statistics: number of decisions made in the last solve call.
    pub decisions: usize,
    /// Statistics: number of unit propagations in the last solve call.
    pub propagations: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Value {
    Unassigned,
    True,
    False,
}

impl DpllSolver {
    /// Creates a solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the formula.
    pub fn solve(&mut self, cnf: &Cnf) -> SatResult {
        self.solve_with_assumptions(cnf, &[])
    }

    /// Solves the formula under the given assumption literals (treated as
    /// additional unit clauses).
    pub fn solve_with_assumptions(&mut self, cnf: &Cnf, assumptions: &[Literal]) -> SatResult {
        self.decisions = 0;
        self.propagations = 0;
        let mut clauses: Vec<Vec<Literal>> =
            cnf.clauses.iter().map(|c| c.literals.clone()).collect();
        for a in assumptions {
            clauses.push(vec![*a]);
        }
        let num_vars = cnf
            .num_vars
            .max(assumptions.iter().map(|a| a.var + 1).max().unwrap_or(0));
        let mut assignment = vec![Value::Unassigned; num_vars];
        if self.dpll(&clauses, &mut assignment) {
            SatResult::Sat(
                assignment
                    .into_iter()
                    .map(|v| matches!(v, Value::True))
                    .collect(),
            )
        } else {
            SatResult::Unsat
        }
    }

    fn dpll(&mut self, clauses: &[Vec<Literal>], assignment: &mut Vec<Value>) -> bool {
        // Unit propagation to fixpoint.
        let mut trail: Vec<VarId> = Vec::new();
        loop {
            let mut propagated = false;
            for clause in clauses {
                let mut unassigned: Option<Literal> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for lit in clause {
                    match assignment[lit.var] {
                        Value::Unassigned => {
                            unassigned_count += 1;
                            unassigned = Some(*lit);
                        }
                        Value::True if lit.positive => {
                            satisfied = true;
                            break;
                        }
                        Value::False if !lit.positive => {
                            satisfied = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        // Conflict: undo and fail.
                        for &v in &trail {
                            assignment[v] = Value::Unassigned;
                        }
                        return false;
                    }
                    1 => {
                        let lit = unassigned.expect("one unassigned literal");
                        assignment[lit.var] = if lit.positive {
                            Value::True
                        } else {
                            Value::False
                        };
                        trail.push(lit.var);
                        self.propagations += 1;
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }

        // Pick a branching variable: the literal occurring most often among
        // not-yet-satisfied clauses.
        let mut counts: Vec<usize> = vec![0; assignment.len()];
        let mut any_unassigned = false;
        for clause in clauses {
            let satisfied = clause.iter().any(|l| match assignment[l.var] {
                Value::True => l.positive,
                Value::False => !l.positive,
                Value::Unassigned => false,
            });
            if satisfied {
                continue;
            }
            for lit in clause {
                if assignment[lit.var] == Value::Unassigned {
                    counts[lit.var] += 1;
                    any_unassigned = true;
                }
            }
        }
        if !any_unassigned {
            // All clauses satisfied (or no clauses left to satisfy).
            let all_satisfied = clauses.iter().all(|clause| {
                clause.iter().any(|l| match assignment[l.var] {
                    Value::True => l.positive,
                    Value::False => !l.positive,
                    Value::Unassigned => false,
                })
            });
            if all_satisfied {
                // Assign remaining variables arbitrarily (false).
                for v in assignment.iter_mut() {
                    if *v == Value::Unassigned {
                        *v = Value::False;
                    }
                }
                return true;
            }
            for &v in &trail {
                assignment[v] = Value::Unassigned;
            }
            return false;
        }
        let branch_var = counts
            .iter()
            .enumerate()
            .filter(|(v, _)| assignment[*v] == Value::Unassigned)
            .max_by_key(|(_, c)| **c)
            .map(|(v, _)| v)
            .expect("an unassigned variable exists");

        self.decisions += 1;
        for value in [Value::True, Value::False] {
            assignment[branch_var] = value;
            if self.dpll(clauses, assignment) {
                return true;
            }
            assignment[branch_var] = Value::Unassigned;
        }
        for &v in &trail {
            assignment[v] = Value::Unassigned;
        }
        false
    }

    /// Extracts a minimal (irreducible) unsat core from `soft` under the hard
    /// formula `cnf`: a subset `C ⊆ soft` such that `cnf ∧ C` is UNSAT and
    /// every proper subset of `C` obtained by dropping one element is SAT.
    ///
    /// Precondition: `cnf ∧ soft` is UNSAT (checked by debug assertion).
    pub fn minimal_core(&mut self, cnf: &Cnf, soft: &[Literal]) -> Vec<Literal> {
        debug_assert!(!self.solve_with_assumptions(cnf, soft).is_sat());
        let mut core: Vec<Literal> = soft.to_vec();
        let mut i = 0;
        while i < core.len() {
            let mut candidate = core.clone();
            candidate.remove(i);
            if self.solve_with_assumptions(cnf, &candidate).is_sat() {
                // This literal is necessary for unsatisfiability; keep it.
                i += 1;
            } else {
                core = candidate;
            }
        }
        core
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;

    fn lit(v: VarId, positive: bool) -> Literal {
        Literal { var: v, positive }
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new(0);
        assert!(DpllSolver::new().solve(&cnf).is_sat());
    }

    #[test]
    fn single_empty_clause_is_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(Clause::empty());
        assert!(!DpllSolver::new().solve(&cnf).is_sat());
    }

    #[test]
    fn unit_propagation_chain() {
        // x0, x0 -> x1, x1 -> x2  ==> all true
        let mut cnf = Cnf::new(3);
        cnf.add_unit(lit(0, true));
        cnf.add_clause(Clause::new([lit(0, false), lit(1, true)]));
        cnf.add_clause(Clause::new([lit(1, false), lit(2, true)]));
        match DpllSolver::new().solve(&cnf) {
            SatResult::Sat(m) => assert_eq!(m, vec![true, true, true]),
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn simple_contradiction() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        cnf.add_unit(lit(0, false));
        assert_eq!(DpllSolver::new().solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p0 in hole, p1 in hole, but not both: x0, x1, ¬x0 ∨ ¬x1
        let mut cnf = Cnf::new(2);
        cnf.add_unit(lit(0, true));
        cnf.add_unit(lit(1, true));
        cnf.add_clause(Clause::new([lit(0, false), lit(1, false)]));
        assert_eq!(DpllSolver::new().solve(&cnf), SatResult::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        // Random-ish 3-SAT instance that is satisfiable.
        let mut cnf = Cnf::new(5);
        let clauses = [
            [(0, true), (1, false), (2, true)],
            [(1, true), (2, true), (3, false)],
            [(0, false), (3, true), (4, true)],
            [(2, false), (3, false), (4, false)],
            [(0, true), (2, true), (4, true)],
        ];
        for c in clauses {
            cnf.add_clause(Clause::new(c.iter().map(|(v, p)| lit(*v, *p))));
        }
        match DpllSolver::new().solve(&cnf) {
            SatResult::Sat(m) => assert!(cnf.evaluate(&m)),
            SatResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn assumptions_restrict_the_search() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(Clause::new([lit(0, true), lit(1, true)]));
        let mut solver = DpllSolver::new();
        assert!(solver
            .solve_with_assumptions(&cnf, &[lit(0, false)])
            .is_sat());
        assert!(!solver
            .solve_with_assumptions(&cnf, &[lit(0, false), lit(1, false)])
            .is_sat());
    }

    #[test]
    fn at_most_one_encoding() {
        let mut cnf = Cnf::new(3);
        let lits = [lit(0, true), lit(1, true), lit(2, true)];
        cnf.add_at_most_one(&lits);
        let mut solver = DpllSolver::new();
        // Any single one can be true...
        assert!(solver
            .solve_with_assumptions(&cnf, &[lit(0, true), lit(1, false)])
            .is_sat());
        // ...but two at once cannot.
        assert!(!solver
            .solve_with_assumptions(&cnf, &[lit(0, true), lit(1, true)])
            .is_sat());
    }

    #[test]
    fn minimal_core_extraction() {
        // Hard: ¬x0 ∨ ¬x1 (can't have both), soft: x0, x1, x2.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::new([lit(0, false), lit(1, false)]));
        let mut solver = DpllSolver::new();
        let core = solver.minimal_core(&cnf, &[lit(0, true), lit(1, true), lit(2, true)]);
        let vars: BTreeSet<_> = core.iter().map(|l| l.var).collect();
        assert_eq!(vars, BTreeSet::from([0, 1]));
    }

    #[test]
    fn larger_unsat_instance() {
        // Encode x_i for i in 0..4 all pairwise different truth values -> impossible
        // with 5 variables forced true and an at-most-one constraint.
        let mut cnf = Cnf::new(5);
        let lits: Vec<Literal> = (0..5).map(|v| lit(v, true)).collect();
        cnf.add_at_most_one(&lits);
        for l in &lits {
            cnf.add_unit(*l);
        }
        assert_eq!(DpllSolver::new().solve(&cnf), SatResult::Unsat);
    }
}
