//! # homeo-solver
//!
//! Constraint-solving substrate for the Homeostasis Protocol reproduction.
//!
//! The paper's prototype delegates all reasoning to the Z3 SMT solver and its
//! Fu-Malik MaxSAT procedure. This crate implements, from scratch, exactly
//! the fragments that the homeostasis pipeline needs:
//!
//! * exact rational arithmetic ([`rational`]),
//! * linear integer arithmetic atoms and conjunctions ([`linear`]),
//! * feasibility + model extraction for conjunctions of linear constraints
//!   via Fourier–Motzkin elimination with Gaussian substitution for
//!   equalities ([`fm`]),
//! * a propositional CNF representation and a DPLL SAT solver ([`sat`]),
//! * the Fu-Malik partial-MaxSAT algorithm with deletion-based unsat-core
//!   extraction ([`maxsat`]),
//! * a lazy MaxSMT loop over linear-arithmetic soft groups
//!   ([`maxsmt`]) — the engine behind the treaty-configuration optimizer
//!   (Algorithm 1 in the paper).
//!
//! Everything is deterministic and dependency-free, which keeps protocol
//! rounds and benchmarks reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fm;
pub mod linear;
pub mod maxsat;
pub mod maxsmt;
pub mod rational;
pub mod sat;

pub use fm::{check_feasible, Feasibility};
pub use linear::{CmpKind, LinExpr, LinearConstraint, VarName};
pub use maxsat::{FuMalik, MaxSatResult};
pub use maxsmt::{max_feasible_subset, MaxSmtResult, SoftGroup};
pub use rational::Rational;
pub use sat::{Clause, Cnf, DpllSolver, Literal, SatResult, VarId};
