//! Partial MaxSAT via the Fu-Malik algorithm.
//!
//! The homeostasis prototype uses "the Fu-Malik Max SAT procedure in the
//! Microsoft Z3 SMT solver" to pick treaty configurations (Section 5.2).
//! This module reimplements the algorithm on top of the in-crate DPLL
//! solver:
//!
//! * hard clauses must be satisfied;
//! * soft clauses should be satisfied; each violated soft clause costs 1;
//! * while the formula (hard ∧ soft) is unsatisfiable, extract an unsat core
//!   among the soft clauses, add a fresh relaxation variable to each soft
//!   clause in the core, and constrain the relaxation variables of the core
//!   with an at-most-one constraint; each round increases the cost by one.
//!
//! Core extraction is deletion-based (repeated SAT calls), which is exact
//! and fast at the instance sizes the treaty optimizer produces.

use serde::{Deserialize, Serialize};

use crate::sat::{Clause, Cnf, DpllSolver, Literal, SatResult};

/// The result of a partial MaxSAT call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxSatResult {
    /// Minimal number of violated soft clauses.
    pub cost: usize,
    /// A model over the *original* variables achieving that cost.
    pub model: Vec<bool>,
    /// Indices (into the soft clause list) of the clauses satisfied by the
    /// model.
    pub satisfied_soft: Vec<usize>,
}

/// Fu-Malik partial MaxSAT solver.
#[derive(Debug, Default)]
pub struct FuMalik {
    /// Number of SAT calls made by the last `solve`.
    pub sat_calls: usize,
    /// Number of core-relaxation rounds performed by the last `solve`.
    pub rounds: usize,
}

impl FuMalik {
    /// Creates a solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves the partial MaxSAT instance `(hard, soft)`.
    ///
    /// Returns `None` when the hard clauses alone are unsatisfiable.
    pub fn solve(&mut self, hard: &Cnf, soft: &[Clause]) -> Option<MaxSatResult> {
        self.sat_calls = 0;
        self.rounds = 0;
        let original_vars = hard.num_vars.max(
            soft.iter()
                .flat_map(|c| c.literals.iter().map(|l| l.var + 1))
                .max()
                .unwrap_or(0),
        );

        let mut solver = DpllSolver::new();
        // Hard clauses must be satisfiable on their own.
        let mut working = hard.clone();
        working.num_vars = working.num_vars.max(original_vars);
        self.sat_calls += 1;
        if !solver.solve(&working).is_sat() {
            return None;
        }

        // Each soft clause gets a selector literal s_i; asserting s_i forces
        // the (possibly relaxed) soft clause to hold. Selectors double as the
        // assumption literals used for core extraction.
        let mut selectors: Vec<Literal> = Vec::with_capacity(soft.len());
        for clause in soft {
            let s = working.fresh_var();
            // (¬s ∨ clause)
            let mut lits = vec![Literal::neg(s)];
            lits.extend(clause.literals.iter().copied());
            working.add_clause(Clause::new(lits));
            selectors.push(Literal::pos(s));
        }

        let mut cost = 0usize;
        loop {
            self.sat_calls += 1;
            match solver.solve_with_assumptions(&working, &selectors) {
                SatResult::Sat(model) => {
                    let satisfied_soft = soft
                        .iter()
                        .enumerate()
                        .filter(|(_, clause)| {
                            clause
                                .literals
                                .iter()
                                .any(|l| l.var < model.len() && l.satisfied_by(model[l.var]))
                        })
                        .map(|(i, _)| i)
                        .collect();
                    let model = model.into_iter().take(original_vars).collect();
                    return Some(MaxSatResult {
                        cost,
                        model,
                        satisfied_soft,
                    });
                }
                SatResult::Unsat => {
                    self.rounds += 1;
                    cost += 1;
                    // Find a minimal core among the selector assumptions.
                    self.sat_calls += selectors.len() + 1;
                    let core = solver.minimal_core(&working, &selectors);
                    if core.is_empty() {
                        // Hard clauses became unsatisfiable, which cannot
                        // happen since we only ever add relaxations.
                        return None;
                    }
                    // Relax every soft clause in the core: add a fresh
                    // relaxation variable r to the clause, and allow at most
                    // one r per core to be true.
                    let mut relax_lits = Vec::with_capacity(core.len());
                    for sel in &core {
                        let r = working.fresh_var();
                        relax_lits.push(Literal::pos(r));
                        // The selector-guarded clause is (¬s ∨ C); relaxing it
                        // means (¬s ∨ C ∨ r). Find the clause guarded by this
                        // selector and extend it.
                        let guard = Literal::neg(sel.var);
                        for clause in working.clauses.iter_mut() {
                            if clause.literals.first() == Some(&guard) {
                                clause.literals.push(Literal::pos(r));
                            }
                        }
                    }
                    working.add_at_most_one(&relax_lits);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, positive: bool) -> Literal {
        Literal { var: v, positive }
    }

    #[test]
    fn all_soft_satisfiable_costs_zero() {
        let hard = Cnf::new(2);
        let soft = vec![Clause::new([lit(0, true)]), Clause::new([lit(1, false)])];
        let res = FuMalik::new().solve(&hard, &soft).unwrap();
        assert_eq!(res.cost, 0);
        assert_eq!(res.satisfied_soft, vec![0, 1]);
        assert!(res.model[0]);
        assert!(!res.model[1]);
    }

    #[test]
    fn conflicting_soft_units_cost_one() {
        // Soft: x0 and ¬x0 — exactly one can hold.
        let hard = Cnf::new(1);
        let soft = vec![Clause::new([lit(0, true)]), Clause::new([lit(0, false)])];
        let res = FuMalik::new().solve(&hard, &soft).unwrap();
        assert_eq!(res.cost, 1);
        assert_eq!(res.satisfied_soft.len(), 1);
    }

    #[test]
    fn hard_constraints_are_never_violated() {
        // Hard: ¬x0; soft: x0, x0, x0. Cost must be 3.
        let mut hard = Cnf::new(1);
        hard.add_unit(lit(0, false));
        let soft = vec![
            Clause::new([lit(0, true)]),
            Clause::new([lit(0, true)]),
            Clause::new([lit(0, true)]),
        ];
        let res = FuMalik::new().solve(&hard, &soft).unwrap();
        assert_eq!(res.cost, 3);
        assert!(res.satisfied_soft.is_empty());
        assert!(!res.model[0]);
    }

    #[test]
    fn unsatisfiable_hard_clauses_return_none() {
        let mut hard = Cnf::new(1);
        hard.add_unit(lit(0, true));
        hard.add_unit(lit(0, false));
        assert!(FuMalik::new().solve(&hard, &[]).is_none());
    }

    #[test]
    fn at_most_one_interaction() {
        // Hard: at most one of x0, x1, x2. Soft: each of them. Best cost = 2.
        let mut hard = Cnf::new(3);
        hard.add_at_most_one(&[lit(0, true), lit(1, true), lit(2, true)]);
        let soft = vec![
            Clause::new([lit(0, true)]),
            Clause::new([lit(1, true)]),
            Clause::new([lit(2, true)]),
        ];
        let res = FuMalik::new().solve(&hard, &soft).unwrap();
        assert_eq!(res.cost, 2);
        assert_eq!(res.satisfied_soft.len(), 1);
        let trues = res.model.iter().filter(|b| **b).count();
        assert_eq!(trues, 1);
    }

    #[test]
    fn paper_style_configuration_choice() {
        // Mirror of the Appendix C example: three "future executions", the
        // first and third compatible with each other, the second not.
        // Encode compatibility with booleans: f1 ∧ f3 allowed, f2 excludes both.
        let mut hard = Cnf::new(3);
        hard.add_clause(Clause::new([lit(0, false), lit(1, false)])); // f1 -> ¬f2
        hard.add_clause(Clause::new([lit(2, false), lit(1, false)])); // f3 -> ¬f2
        let soft = vec![
            Clause::new([lit(0, true)]),
            Clause::new([lit(1, true)]),
            Clause::new([lit(2, true)]),
        ];
        let res = FuMalik::new().solve(&hard, &soft).unwrap();
        assert_eq!(res.cost, 1);
        assert_eq!(res.satisfied_soft, vec![0, 2]);
    }

    #[test]
    fn mixed_multi_literal_soft_clauses() {
        // Hard: x0 xor x1 (encoded), soft: (x0 ∨ x1) [satisfiable], (x0 ∧ x1 is
        // impossible so soft units x0 and x1 cost at least... both can't hold].
        let mut hard = Cnf::new(2);
        hard.add_clause(Clause::new([lit(0, true), lit(1, true)]));
        hard.add_clause(Clause::new([lit(0, false), lit(1, false)]));
        let soft = vec![
            Clause::new([lit(0, true), lit(1, true)]),
            Clause::new([lit(0, true)]),
            Clause::new([lit(1, true)]),
        ];
        let res = FuMalik::new().solve(&hard, &soft).unwrap();
        assert_eq!(res.cost, 1);
        assert_eq!(res.satisfied_soft.len(), 2);
    }
}
