//! Linear integer arithmetic expressions and constraints.
//!
//! A linear constraint (Section 4.2 of the paper) has the form
//! `Σ dᵢ·xᵢ ⋈ n` where the `dᵢ` and `n` are integers, the `xᵢ` are variables
//! (database objects or configuration variables) and `⋈ ∈ {<, ≤, =}`.
//! Treaty templates, local treaties and the preprocessed global treaty ψ are
//! all conjunctions of such constraints.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Variable names used by the solver: database objects, delta objects or
/// configuration variables, identified by their textual name.
pub type VarName = String;

/// A linear expression `Σ dᵢ·xᵢ + c` with integer coefficients.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarName, i64>,
    constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1·x`.
    pub fn var(name: impl Into<VarName>) -> Self {
        Self::term(name, 1)
    }

    /// The expression `coeff·x`.
    pub fn term(name: impl Into<VarName>, coeff: i64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert(name.into(), coeff);
        }
        LinExpr { terms, constant: 0 }
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `name` (0 if absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.terms.get(name).copied().unwrap_or(0)
    }

    /// Iterates over the non-zero terms in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (&VarName, i64)> {
        self.terms.iter().map(|(k, v)| (k, *v))
    }

    /// The variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &VarName> {
        self.terms.keys()
    }

    /// True when the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff·name` in place.
    pub fn add_term(&mut self, name: impl Into<VarName>, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(name.into()).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            // Remove cancelled terms to keep equality structural.
            let key = self
                .terms
                .iter()
                .find(|(_, v)| **v == 0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: i64) {
        self.constant += c;
    }

    /// Returns `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in other.terms() {
            out.add_term(v.clone(), c);
        }
        out.add_constant(other.constant);
        out
    }

    /// Returns `self - other`.
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        self.plus(&other.scaled(-1))
    }

    /// Returns `k·self`.
    pub fn scaled(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Evaluates the expression under an assignment (missing variables are 0).
    pub fn eval(&self, assignment: &BTreeMap<VarName, i64>) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * assignment.get(v).copied().unwrap_or(0))
                .sum::<i64>()
    }

    /// Substitutes a concrete value for a variable.
    pub fn substitute(&self, name: &str, value: i64) -> LinExpr {
        let mut out = self.clone();
        if let Some(c) = out.terms.remove(name) {
            out.constant += c * value;
        }
        out
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == 1 {
                    write!(f, "{v}")?;
                } else if c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c >= 0 {
                if c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

/// Comparison kinds for linear constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// `≤`
    Le,
    /// `<`
    Lt,
    /// `=`
    Eq,
}

impl CmpKind {
    /// Evaluates `lhs ⋈ rhs`.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpKind::Le => lhs <= rhs,
            CmpKind::Lt => lhs < rhs,
            CmpKind::Eq => lhs == rhs,
        }
    }

    /// The printable symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpKind::Le => "<=",
            CmpKind::Lt => "<",
            CmpKind::Eq => "=",
        }
    }
}

/// A linear constraint `expr ⋈ 0`, stored in homogeneous form.
///
/// The public constructors accept the natural `lhs ⋈ rhs` form and normalise
/// to `lhs - rhs ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinearConstraint {
    /// The left-hand side; the constraint is `expr ⋈ 0`.
    pub expr: LinExpr,
    /// The comparison against zero.
    pub op: CmpKind,
}

impl LinearConstraint {
    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Self {
        LinearConstraint {
            expr: lhs.minus(&rhs),
            op: CmpKind::Le,
        }
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Self {
        LinearConstraint {
            expr: lhs.minus(&rhs),
            op: CmpKind::Lt,
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Self {
        LinearConstraint {
            expr: lhs.minus(&rhs),
            op: CmpKind::Eq,
        }
    }

    /// `lhs ≥ rhs` (normalised to `rhs ≤ lhs`).
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Self {
        Self::le(rhs, lhs)
    }

    /// `lhs > rhs` (normalised to `rhs < lhs`).
    pub fn gt(lhs: LinExpr, rhs: LinExpr) -> Self {
        Self::lt(rhs, lhs)
    }

    /// The variables mentioned by the constraint.
    pub fn vars(&self) -> impl Iterator<Item = &VarName> {
        self.expr.vars()
    }

    /// Evaluates the constraint under an integer assignment.
    pub fn holds(&self, assignment: &BTreeMap<VarName, i64>) -> bool {
        self.op.eval(self.expr.eval(assignment), 0)
    }

    /// Substitutes a concrete value for a variable.
    pub fn substitute(&self, name: &str, value: i64) -> LinearConstraint {
        LinearConstraint {
            expr: self.expr.substitute(name, value),
            op: self.op,
        }
    }

    /// When the constraint mentions no variables, returns whether it is
    /// trivially true (`Some(true)`), trivially false (`Some(false)`), or
    /// `None` when variables remain.
    pub fn trivially(&self) -> Option<bool> {
        if self.expr.is_constant() {
            Some(self.op.eval(self.expr.constant_part(), 0))
        } else {
            None
        }
    }

    /// Converts a strict integer constraint `expr < 0` into the equivalent
    /// non-strict `expr + 1 ≤ 0`. Equalities and non-strict constraints are
    /// returned unchanged. This is sound and complete over the integers and
    /// lets the Fourier–Motzkin core work with `≤` only.
    pub fn tightened(&self) -> LinearConstraint {
        match self.op {
            CmpKind::Lt => {
                let mut expr = self.expr.clone();
                expr.add_constant(1);
                LinearConstraint {
                    expr,
                    op: CmpKind::Le,
                }
            }
            _ => self.clone(),
        }
    }
}

impl fmt::Display for LinearConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print in `terms ⋈ -constant` form, which reads like the paper.
        let terms_only = LinExpr {
            terms: self.expr.terms.clone(),
            constant: 0,
        };
        write!(
            f,
            "{} {} {}",
            terms_only,
            self.op.symbol(),
            -self.expr.constant_part()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(pairs: &[(&str, i64)]) -> BTreeMap<VarName, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn expr_building_and_eval() {
        let mut e = LinExpr::var("x");
        e.add_term("y", 2);
        e.add_constant(-3);
        assert_eq!(e.eval(&assignment(&[("x", 5), ("y", 1)])), 4);
        assert_eq!(e.coeff("x"), 1);
        assert_eq!(e.coeff("z"), 0);
    }

    #[test]
    fn cancelling_terms_are_removed() {
        let mut e = LinExpr::term("x", 3);
        e.add_term("x", -3);
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn plus_minus_scaled() {
        let a = LinExpr::var("x").plus(&LinExpr::constant(2));
        let b = LinExpr::term("x", 2).plus(&LinExpr::var("y"));
        let s = a.plus(&b);
        assert_eq!(s.coeff("x"), 3);
        assert_eq!(s.coeff("y"), 1);
        assert_eq!(s.constant_part(), 2);
        let d = a.minus(&b);
        assert_eq!(d.coeff("x"), -1);
        assert_eq!(d.coeff("y"), -1);
        assert_eq!(a.scaled(-2).coeff("x"), -2);
        assert_eq!(a.scaled(0), LinExpr::zero());
    }

    #[test]
    fn constraint_normalisation_and_holds() {
        // x + y >= 20 should hold for (10, 13)
        let c = LinearConstraint::ge(
            LinExpr::var("x").plus(&LinExpr::var("y")),
            LinExpr::constant(20),
        );
        assert!(c.holds(&assignment(&[("x", 10), ("y", 13)])));
        assert!(!c.holds(&assignment(&[("x", 10), ("y", 9)])));
    }

    #[test]
    fn strict_constraints_tighten_over_integers() {
        // x < 10 becomes x + 1 <= 10, i.e. x <= 9.
        let c = LinearConstraint::lt(LinExpr::var("x"), LinExpr::constant(10));
        let t = c.tightened();
        assert_eq!(t.op, CmpKind::Le);
        assert!(t.holds(&assignment(&[("x", 9)])));
        assert!(!t.holds(&assignment(&[("x", 10)])));
    }

    #[test]
    fn substitution_fixes_variables() {
        let c = LinearConstraint::le(
            LinExpr::var("x").plus(&LinExpr::var("y")),
            LinExpr::constant(5),
        );
        let c2 = c.substitute("y", 3);
        assert!(c2.holds(&assignment(&[("x", 2)])));
        assert!(!c2.holds(&assignment(&[("x", 3)])));
        assert_eq!(
            c.substitute("x", 0).substitute("y", 0).trivially(),
            Some(true)
        );
        assert_eq!(
            c.substitute("x", 9).substitute("y", 0).trivially(),
            Some(false)
        );
    }

    #[test]
    fn display_is_readable() {
        let c = LinearConstraint::ge(
            LinExpr::var("x").plus(&LinExpr::var("y")),
            LinExpr::constant(20),
        );
        // x + y >= 20 is normalised to 20 - x - y <= 0, displayed from terms.
        let s = c.to_string();
        assert!(s.contains("<= "), "{s}");
        let e = LinExpr::term("x", 2)
            .minus(&LinExpr::var("y"))
            .plus(&LinExpr::constant(-7));
        assert_eq!(e.to_string(), "2*x - y - 7");
        assert_eq!(LinExpr::constant(0).to_string(), "0");
    }
}
