//! Feasibility of conjunctions of linear constraints via Fourier–Motzkin
//! elimination.
//!
//! This is the theory engine used by the symbolic-table analysis (to prune
//! infeasible execution paths), by treaty-template validation (H1/H2 of
//! Section 4.1) and by the MaxSMT layer behind the treaty-configuration
//! optimizer.
//!
//! The procedure:
//!
//! 1. strict constraints are tightened to non-strict over the integers
//!    (`e < 0  ⇒  e + 1 ≤ 0`),
//! 2. equalities are removed by Gaussian substitution,
//! 3. remaining inequalities are reduced by Fourier–Motzkin elimination,
//! 4. if the constant residue is consistent, a model is rebuilt by
//!    back-substitution, preferring integer witnesses.
//!
//! Unsatisfiability answers are exact for integer solutions. Satisfiability
//! answers come with an integer model whenever back-substitution finds one
//! (which covers every constraint system the homeostasis pipeline produces);
//! in the remaining corner cases the result is reported as rationally
//! feasible only.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::linear::{CmpKind, LinearConstraint, VarName};
use crate::rational::Rational;

/// The outcome of a feasibility check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feasibility {
    /// The conjunction has no solution over the rationals (hence none over
    /// the integers).
    Infeasible,
    /// An integer model satisfying every constraint.
    Feasible(BTreeMap<VarName, i64>),
    /// The conjunction is feasible over the rationals but the bounded search
    /// did not produce an integer witness.
    FeasibleRationalOnly,
}

impl Feasibility {
    /// True unless the conjunction is infeasible.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, Feasibility::Infeasible)
    }

    /// The integer model, if one was produced.
    pub fn model(&self) -> Option<&BTreeMap<VarName, i64>> {
        match self {
            Feasibility::Feasible(m) => Some(m),
            _ => None,
        }
    }
}

/// A linear expression with rational coefficients, used internally during
/// elimination.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RatExpr {
    terms: BTreeMap<VarName, Rational>,
    constant: Rational,
}

impl RatExpr {
    fn from_constraint(c: &LinearConstraint) -> (Self, CmpKind) {
        let mut terms = BTreeMap::new();
        for (v, coeff) in c.expr.terms() {
            terms.insert(v.clone(), Rational::from_int(coeff));
        }
        (
            RatExpr {
                terms,
                constant: Rational::from_int(c.expr.constant_part()),
            },
            c.op,
        )
    }

    fn coeff(&self, v: &str) -> Rational {
        self.terms.get(v).copied().unwrap_or(Rational::ZERO)
    }

    fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// self + k * other
    fn add_scaled(&self, other: &RatExpr, k: Rational) -> RatExpr {
        let mut terms = self.terms.clone();
        for (v, c) in &other.terms {
            let entry = terms.entry(v.clone()).or_insert(Rational::ZERO);
            *entry = *entry + *c * k;
        }
        terms.retain(|_, c| !c.is_zero());
        RatExpr {
            terms,
            constant: self.constant + other.constant * k,
        }
    }

    /// Substitute v := replacement (an expression not containing v).
    fn substitute(&self, v: &str, replacement: &RatExpr) -> RatExpr {
        let c = self.coeff(v);
        if c.is_zero() {
            return self.clone();
        }
        let mut without = self.clone();
        without.terms.remove(v);
        without.add_scaled(replacement, c)
    }

    fn eval(&self, assignment: &BTreeMap<VarName, Rational>) -> Rational {
        let mut total = self.constant;
        for (v, c) in &self.terms {
            total = total + *c * assignment.get(v).copied().unwrap_or(Rational::ZERO);
        }
        total
    }
}

/// A constraint `expr ≤ 0` (all strictness removed by integer tightening).
#[derive(Debug, Clone)]
struct RatLe {
    expr: RatExpr,
}

/// Checks the feasibility of a conjunction of linear constraints over the
/// integers and extracts a model when possible.
pub fn check_feasible(constraints: &[LinearConstraint]) -> Feasibility {
    // Step 0: trivial checks and conversion to rational ≤ / = forms.
    let mut les: Vec<RatLe> = Vec::new();
    let mut eqs: Vec<RatExpr> = Vec::new();
    for c in constraints {
        if let Some(truth) = c.trivially() {
            if truth {
                continue;
            }
            return Feasibility::Infeasible;
        }
        let tightened = c.tightened();
        let (expr, op) = RatExpr::from_constraint(&tightened);
        match op {
            CmpKind::Le => les.push(RatLe { expr }),
            CmpKind::Eq => eqs.push(expr),
            CmpKind::Lt => unreachable!("tightened() removes strict inequalities"),
        }
    }

    // Step 1: eliminate equalities by substitution. Record the substitutions
    // so the model can be reconstructed afterwards.
    let mut substitutions: Vec<(VarName, RatExpr)> = Vec::new();
    while let Some(eq) = eqs.pop() {
        if eq.is_constant() {
            if !eq.constant.is_zero() {
                return Feasibility::Infeasible;
            }
            continue;
        }
        // Solve for the first variable: a·v + rest = 0  =>  v = -rest / a.
        let (v, a) = {
            let (v, a) = eq.terms.iter().next().expect("non-constant equality");
            (v.clone(), *a)
        };
        let mut rest = eq.clone();
        rest.terms.remove(&v);
        let replacement = RatExpr {
            terms: rest
                .terms
                .iter()
                .map(|(k, c)| (k.clone(), -(*c / a)))
                .collect(),
            constant: -(rest.constant / a),
        };
        for e in eqs.iter_mut() {
            *e = e.substitute(&v, &replacement);
        }
        for le in les.iter_mut() {
            le.expr = le.expr.substitute(&v, &replacement);
        }
        substitutions.push((v, replacement));
    }

    // Step 2: Fourier–Motzkin elimination over the inequalities.
    let mut vars: BTreeSet<VarName> = BTreeSet::new();
    for le in &les {
        vars.extend(le.expr.terms.keys().cloned());
    }
    // For each eliminated variable remember the constraints that mentioned it
    // (in terms of later-eliminated variables only) for back-substitution.
    let mut elimination_stack: Vec<(VarName, Vec<RatLe>)> = Vec::new();

    for v in vars.iter() {
        let (mentioning, rest): (Vec<RatLe>, Vec<RatLe>) =
            les.drain(..).partition(|le| !le.expr.coeff(v).is_zero());
        les = rest;
        // Lower bounds: coefficient < 0 (v ≥ ...); upper bounds: coefficient > 0.
        let lowers: Vec<&RatLe> = mentioning
            .iter()
            .filter(|le| le.expr.coeff(v).is_negative())
            .collect();
        let uppers: Vec<&RatLe> = mentioning
            .iter()
            .filter(|le| le.expr.coeff(v).is_positive())
            .collect();
        for lo in &lowers {
            for up in &uppers {
                // lo: a·v + A ≤ 0 with a < 0  =>  v ≥ A / (-a)
                // up: b·v + B ≤ 0 with b > 0  =>  v ≤ -B / b
                // combine: b·A + (-a)·B ≤ 0
                let a = lo.expr.coeff(v);
                let b = up.expr.coeff(v);
                let mut lo_wo = lo.expr.clone();
                lo_wo.terms.remove(v);
                let mut up_wo = up.expr.clone();
                up_wo.terms.remove(v);
                let combined = lo_wo.add_scaled(&up_wo, -a / b).clone();
                // combined = A + (-a/b)·B ≤ 0 (scaled by 1/b > 0, sign safe)
                if combined.is_constant() {
                    if combined.constant.is_positive() {
                        return Feasibility::Infeasible;
                    }
                } else {
                    les.push(RatLe { expr: combined });
                }
            }
        }
        elimination_stack.push((v.clone(), mentioning));
    }

    // Step 3: whatever remains must be constant.
    for le in &les {
        debug_assert!(le.expr.is_constant());
        if le.expr.constant.is_positive() {
            return Feasibility::Infeasible;
        }
    }

    // Step 4: back-substitution to build a model.
    let mut assignment: BTreeMap<VarName, Rational> = BTreeMap::new();
    for (v, constraints) in elimination_stack.iter().rev() {
        let mut lower: Option<Rational> = None;
        let mut upper: Option<Rational> = None;
        for le in constraints {
            let a = le.expr.coeff(v);
            let mut rest = le.expr.clone();
            rest.terms.remove(v);
            let value = rest.eval(&assignment);
            // a·v + value ≤ 0
            if a.is_positive() {
                let bound = -(value / a);
                upper = Some(match upper {
                    Some(u) if u < bound => u,
                    _ => bound,
                });
            } else {
                let bound = -(value / a);
                lower = Some(match lower {
                    Some(l) if l > bound => l,
                    _ => bound,
                });
            }
        }
        let choice = match (lower, upper) {
            (Some(l), Some(u)) => {
                // Prefer an integer in [l, u]; fall back to l.
                let li = Rational::from_int(l.ceil() as i64);
                if li <= u {
                    li
                } else {
                    l
                }
            }
            (Some(l), None) => Rational::from_int(l.ceil() as i64),
            (None, Some(u)) => Rational::from_int(u.floor() as i64),
            (None, None) => Rational::ZERO,
        };
        assignment.insert(v.clone(), choice);
    }
    // Variables eliminated through equalities, in reverse order.
    for (v, replacement) in substitutions.iter().rev() {
        let value = replacement.eval(&assignment);
        assignment.insert(v.clone(), value);
    }

    // Step 5: verify and return an integer model when possible.
    let mut int_model: BTreeMap<VarName, i64> = BTreeMap::new();
    for (v, value) in &assignment {
        match value.to_i64() {
            Some(n) => {
                int_model.insert(v.clone(), n);
            }
            None => return Feasibility::FeasibleRationalOnly,
        }
    }
    if constraints.iter().all(|c| c.holds(&int_model)) {
        Feasibility::Feasible(int_model)
    } else {
        Feasibility::FeasibleRationalOnly
    }
}

/// Convenience wrapper: true when the conjunction has any solution.
pub fn is_feasible(constraints: &[LinearConstraint]) -> bool {
    check_feasible(constraints).is_feasible()
}

/// Checks whether `antecedent ⇒ consequent` holds for every integer
/// assignment, i.e. whether `antecedent ∧ ¬consequent` is infeasible.
///
/// `¬consequent` of a conjunction is a disjunction, so the check is performed
/// clause by clause: the implication holds iff for every constraint `c` in
/// `consequent`, `antecedent ∧ ¬c` is infeasible.
pub fn implies(antecedent: &[LinearConstraint], consequent: &[LinearConstraint]) -> bool {
    consequent.iter().all(|c| {
        let negs = negate_constraint(c);
        // ¬c may itself be a disjunction (for equalities); the implication
        // fails if any disjunct is consistent with the antecedent.
        negs.iter().all(|disjunct| {
            let mut system: Vec<LinearConstraint> = antecedent.to_vec();
            system.push(disjunct.clone());
            !is_feasible(&system)
        })
    })
}

/// Negates a single linear constraint over the integers, returning the
/// disjuncts of the negation.
pub fn negate_constraint(c: &LinearConstraint) -> Vec<LinearConstraint> {
    use crate::linear::LinExpr;
    let zero = LinExpr::zero();
    match c.op {
        // ¬(e ≤ 0)  ⇔  e > 0  ⇔  0 < e
        CmpKind::Le => vec![LinearConstraint::lt(zero, c.expr.clone())],
        // ¬(e < 0)  ⇔  e ≥ 0  ⇔  0 ≤ e
        CmpKind::Lt => vec![LinearConstraint::le(zero, c.expr.clone())],
        // ¬(e = 0)  ⇔  e < 0 ∨ e > 0
        CmpKind::Eq => vec![
            LinearConstraint::lt(c.expr.clone(), zero.clone()),
            LinearConstraint::lt(zero, c.expr.clone()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn var(v: &str) -> LinExpr {
        LinExpr::var(v)
    }

    fn num(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }

    #[test]
    fn trivially_true_and_false_systems() {
        assert!(matches!(
            check_feasible(&[LinearConstraint::le(num(1), num(2))]),
            Feasibility::Feasible(_)
        ));
        assert_eq!(
            check_feasible(&[LinearConstraint::le(num(3), num(2))]),
            Feasibility::Infeasible
        );
        assert!(matches!(check_feasible(&[]), Feasibility::Feasible(_)));
    }

    #[test]
    fn simple_bounds_produce_integer_model() {
        // 3 ≤ x ≤ 5, x = y
        let cs = vec![
            LinearConstraint::ge(var("x"), num(3)),
            LinearConstraint::le(var("x"), num(5)),
            LinearConstraint::eq(var("x"), var("y")),
        ];
        match check_feasible(&cs) {
            Feasibility::Feasible(m) => {
                let x = m["x"];
                assert!((3..=5).contains(&x));
                assert_eq!(m["y"], x);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_bounds_are_infeasible() {
        let cs = vec![
            LinearConstraint::ge(var("x"), num(10)),
            LinearConstraint::lt(var("x"), num(10)),
        ];
        assert_eq!(check_feasible(&cs), Feasibility::Infeasible);
    }

    #[test]
    fn chained_sums_are_handled() {
        // x + y >= 20, x <= 5, y <= 10  => 15 < 20: infeasible
        let cs = vec![
            LinearConstraint::ge(var("x").plus(&var("y")), num(20)),
            LinearConstraint::le(var("x"), num(5)),
            LinearConstraint::le(var("y"), num(10)),
        ];
        assert_eq!(check_feasible(&cs), Feasibility::Infeasible);

        // Relax y: feasible with a model.
        let cs = vec![
            LinearConstraint::ge(var("x").plus(&var("y")), num(20)),
            LinearConstraint::le(var("x"), num(5)),
            LinearConstraint::le(var("y"), num(16)),
        ];
        let f = check_feasible(&cs);
        let m = f.model().expect("integer model");
        assert!(m["x"] + m["y"] >= 20);
        assert!(m["x"] <= 5 && m["y"] <= 16);
    }

    #[test]
    fn equalities_are_substituted() {
        // x = 2y, x + y = 9  => y = 3, x = 6
        let cs = vec![
            LinearConstraint::eq(var("x"), LinExpr::term("y", 2)),
            LinearConstraint::eq(var("x").plus(&var("y")), num(9)),
        ];
        let f = check_feasible(&cs);
        let m = f.model().expect("integer model");
        assert_eq!(m["x"], 6);
        assert_eq!(m["y"], 3);
    }

    #[test]
    fn strictness_matters_over_integers() {
        // x < 1 and x > -1 has the single integer solution 0.
        let cs = vec![
            LinearConstraint::lt(var("x"), num(1)),
            LinearConstraint::gt(var("x"), num(-1)),
        ];
        let f = check_feasible(&cs);
        assert_eq!(f.model().expect("model")["x"], 0);

        // 0 < x < 1 has no integer solution; tightening makes it infeasible.
        let cs = vec![
            LinearConstraint::lt(var("x"), num(1)),
            LinearConstraint::gt(var("x"), num(0)),
        ];
        assert_eq!(check_feasible(&cs), Feasibility::Infeasible);
    }

    #[test]
    fn paper_example_path_conditions() {
        // The joint symbolic table of {T1, T2} (Figure 4c) has the row
        // 10 ≤ x + y < 20; it should be satisfiable, and adding x + y < 10
        // makes it unsatisfiable.
        let sum = var("x").plus(&var("y"));
        let row = vec![
            LinearConstraint::ge(sum.clone(), num(10)),
            LinearConstraint::lt(sum.clone(), num(20)),
        ];
        assert!(is_feasible(&row));
        let mut contradiction = row.clone();
        contradiction.push(LinearConstraint::lt(sum, num(10)));
        assert!(!is_feasible(&contradiction));
    }

    #[test]
    fn implication_checks() {
        // (x >= 12 ∧ y >= 8) ⇒ x + y >= 20
        let ante = vec![
            LinearConstraint::ge(var("x"), num(12)),
            LinearConstraint::ge(var("y"), num(8)),
        ];
        let cons = vec![LinearConstraint::ge(var("x").plus(&var("y")), num(20))];
        assert!(implies(&ante, &cons));
        // (x >= 12) alone does not imply it.
        assert!(!implies(&ante[..1], &cons));
        // Anything implies a trivially true consequent.
        assert!(implies(&ante, &[LinearConstraint::le(num(0), num(0))]));
        // An infeasible antecedent implies anything.
        let bad = vec![
            LinearConstraint::ge(var("x"), num(1)),
            LinearConstraint::le(var("x"), num(0)),
        ];
        assert!(implies(&bad, &[LinearConstraint::le(num(5), num(0))]));
    }

    #[test]
    fn negation_of_equality_is_a_disjunction() {
        let c = LinearConstraint::eq(var("x"), num(3));
        let negs = negate_constraint(&c);
        assert_eq!(negs.len(), 2);
        // x = 2 satisfies one disjunct, x = 3 satisfies neither.
        let m2: BTreeMap<VarName, i64> = [("x".to_string(), 2)].into_iter().collect();
        let m3: BTreeMap<VarName, i64> = [("x".to_string(), 3)].into_iter().collect();
        assert!(negs.iter().any(|d| d.holds(&m2)));
        assert!(!negs.iter().any(|d| d.holds(&m3)));
    }

    #[test]
    fn larger_system_with_many_variables() {
        // Pairwise chained x1 ≤ x2 ≤ ... ≤ x6, x1 ≥ 0, x6 ≤ 3, sum ≥ 10.
        let mut cs = Vec::new();
        for i in 1..6 {
            cs.push(LinearConstraint::le(
                var(&format!("x{i}")),
                var(&format!("x{}", i + 1)),
            ));
        }
        cs.push(LinearConstraint::ge(var("x1"), num(0)));
        cs.push(LinearConstraint::le(var("x6"), num(3)));
        let mut sum = LinExpr::zero();
        for i in 1..=6 {
            sum = sum.plus(&var(&format!("x{i}")));
        }
        cs.push(LinearConstraint::ge(sum.clone(), num(10)));
        let f = check_feasible(&cs);
        assert!(f.is_feasible());
        if let Some(m) = f.model() {
            let total: i64 = (1..=6).map(|i| m[&format!("x{i}")]).sum();
            assert!(total >= 10);
        }
        // Making the cap too small flips it to infeasible (6 * 1 < 10).
        cs.push(LinearConstraint::le(var("x6"), num(1)));
        assert!(!is_feasible(&cs));
    }
}
