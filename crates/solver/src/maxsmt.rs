//! Lazy MaxSMT over linear integer arithmetic.
//!
//! Algorithm 1 in the paper asks for "the largest satisfiable subset of
//! constraints that includes all the hard constraints" together with a model.
//! The soft constraints produced by sampled future executions are
//! *conjunctions* of linear constraints (one conjunction per simulated
//! database state), and the hard constraint is the treaty-template validity
//! condition — also a conjunction of linear constraints.
//!
//! This module implements the standard lazy-SMT architecture on top of the
//! in-crate pieces:
//!
//! 1. abstract each soft group `j` with a propositional selector `s_j`;
//! 2. ask the Fu-Malik MaxSAT engine for an assignment maximizing the number
//!    of selected groups, subject to the theory lemmas learned so far;
//! 3. check the selected groups (plus the hard constraints) for feasibility
//!    with the Fourier–Motzkin engine;
//! 4. if feasible, the selection is optimal (the lemmas are sound, so the
//!    propositional optimum is an upper bound); otherwise shrink the
//!    selection to a minimal infeasible subset and add the corresponding
//!    blocking clause, then repeat.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::fm::{check_feasible, Feasibility};
use crate::linear::{LinearConstraint, VarName};
use crate::maxsat::FuMalik;
use crate::sat::{Clause, Cnf, Literal};

/// A soft group: a conjunction of linear constraints that should ideally hold
/// together (e.g. "no treaty violation in sampled future database Dⱼ").
pub type SoftGroup = Vec<LinearConstraint>;

/// The result of a MaxSMT call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxSmtResult {
    /// Indices of the soft groups that are jointly satisfiable with the hard
    /// constraints (a maximum-cardinality such set).
    pub selected: Vec<usize>,
    /// An integer model satisfying the hard constraints and every selected
    /// group, when one could be extracted.
    pub model: Option<BTreeMap<VarName, i64>>,
    /// Number of soft groups left unsatisfied (`soft.len() - selected.len()`).
    pub cost: usize,
    /// Number of theory lemmas (blocking clauses) learned.
    pub lemmas: usize,
}

/// Computes a maximum-cardinality subset of `soft_groups` that is jointly
/// feasible with `hard`, together with an integer model.
///
/// Returns `None` when the hard constraints alone are infeasible.
pub fn max_feasible_subset(
    hard: &[LinearConstraint],
    soft_groups: &[SoftGroup],
) -> Option<MaxSmtResult> {
    if !check_feasible(hard).is_feasible() {
        return None;
    }
    let n = soft_groups.len();
    let mut cnf = Cnf::new(n);
    let soft_clauses: Vec<Clause> = (0..n).map(|j| Clause::new([Literal::pos(j)])).collect();
    let mut lemmas = 0usize;

    // Safety bound: each iteration learns a new blocking clause over the
    // selectors, so 2^n is a hard ceiling; in practice a handful suffice.
    let max_iterations = 10_000;
    for _ in 0..max_iterations {
        let mut engine = FuMalik::new();
        let res = engine
            .solve(&cnf, &soft_clauses)
            .expect("selector abstraction is always satisfiable");
        let selected: Vec<usize> = res.satisfied_soft.clone();

        // Theory check on the selected groups.
        let mut system: Vec<LinearConstraint> = hard.to_vec();
        for &j in &selected {
            system.extend(soft_groups[j].iter().cloned());
        }
        match check_feasible(&system) {
            Feasibility::Feasible(model) => {
                return Some(MaxSmtResult {
                    cost: n - selected.len(),
                    selected,
                    model: Some(model),
                    lemmas,
                });
            }
            Feasibility::FeasibleRationalOnly => {
                return Some(MaxSmtResult {
                    cost: n - selected.len(),
                    selected,
                    model: None,
                    lemmas,
                });
            }
            Feasibility::Infeasible => {
                // Shrink to a minimal infeasible subset of the selected
                // groups (deletion-based), then block it.
                let core = minimal_infeasible_subset(hard, soft_groups, &selected);
                debug_assert!(!core.is_empty());
                cnf.add_clause(Clause::new(core.iter().map(|&j| Literal::neg(j))));
                lemmas += 1;
            }
        }
    }
    // Fall back to the hard-only solution if the iteration bound is ever hit.
    let model = match check_feasible(hard) {
        Feasibility::Feasible(m) => Some(m),
        _ => None,
    };
    Some(MaxSmtResult {
        selected: Vec::new(),
        model,
        cost: n,
        lemmas,
    })
}

/// Deletion-based minimal infeasible subset of `candidate` group indices
/// (relative to the always-included hard constraints).
fn minimal_infeasible_subset(
    hard: &[LinearConstraint],
    soft_groups: &[SoftGroup],
    candidate: &[usize],
) -> Vec<usize> {
    let feasible_with = |indices: &[usize]| -> bool {
        let mut system: Vec<LinearConstraint> = hard.to_vec();
        for &j in indices {
            system.extend(soft_groups[j].iter().cloned());
        }
        check_feasible(&system).is_feasible()
    };
    debug_assert!(!feasible_with(candidate));
    let mut core: Vec<usize> = candidate.to_vec();
    let mut i = 0;
    while i < core.len() {
        let mut smaller = core.clone();
        smaller.remove(i);
        if feasible_with(&smaller) {
            i += 1;
        } else {
            core = smaller;
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn var(v: &str) -> LinExpr {
        LinExpr::var(v)
    }

    fn num(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }

    #[test]
    fn all_groups_compatible() {
        let hard = vec![LinearConstraint::ge(var("c"), num(0))];
        let soft = vec![
            vec![LinearConstraint::ge(var("c"), num(3))],
            vec![LinearConstraint::ge(var("c"), num(5))],
        ];
        let res = max_feasible_subset(&hard, &soft).unwrap();
        assert_eq!(res.selected, vec![0, 1]);
        assert_eq!(res.cost, 0);
        let m = res.model.unwrap();
        assert!(m["c"] >= 5);
    }

    #[test]
    fn incompatible_groups_drop_the_minority() {
        // Hard: 0 <= c <= 10. Groups: {c >= 8}, {c >= 7}, {c <= 2}.
        // Best: keep the two lower-bound groups, drop the upper bound.
        let hard = vec![
            LinearConstraint::ge(var("c"), num(0)),
            LinearConstraint::le(var("c"), num(10)),
        ];
        let soft = vec![
            vec![LinearConstraint::ge(var("c"), num(8))],
            vec![LinearConstraint::ge(var("c"), num(7))],
            vec![LinearConstraint::le(var("c"), num(2))],
        ];
        let res = max_feasible_subset(&hard, &soft).unwrap();
        assert_eq!(res.cost, 1);
        assert_eq!(res.selected, vec![0, 1]);
        let m = res.model.unwrap();
        assert!(m["c"] >= 8 && m["c"] <= 10);
        assert!(res.lemmas >= 1);
    }

    #[test]
    fn infeasible_hard_constraints_return_none() {
        let hard = vec![
            LinearConstraint::ge(var("c"), num(1)),
            LinearConstraint::le(var("c"), num(0)),
        ];
        assert!(max_feasible_subset(&hard, &[]).is_none());
    }

    #[test]
    fn paper_appendix_c_example() {
        // Templates: ϕΓ1 : x + cy ≥ 20, ϕΓ2 : cx + y ≥ 20, with D = (10, 13).
        // Validity (H1) reduces to cx + cy ≤ 20; the sampled futures yield the
        // soft groups {cy ≥ 12, cx ≥ 8}, {cy ≥ 13, cx ≥ 7}, {cy ≥ 12, cx ≥ 8}.
        // The optimizer should satisfy groups 0 and 2 (cost 1), e.g. with
        // cy = 12, cx = 8 — exactly the configuration the paper reports.
        let hard = vec![LinearConstraint::le(var("cx").plus(&var("cy")), num(20))];
        let g = |cy: i64, cx: i64| {
            vec![
                LinearConstraint::ge(var("cy"), num(cy)),
                LinearConstraint::ge(var("cx"), num(cx)),
            ]
        };
        let soft = vec![g(12, 8), g(13, 7), g(12, 8)];
        let res = max_feasible_subset(&hard, &soft).unwrap();
        assert_eq!(res.cost, 1);
        assert_eq!(res.selected, vec![0, 2]);
        let m = res.model.unwrap();
        assert!(m["cy"] >= 12 && m["cx"] >= 8 && m["cx"] + m["cy"] <= 20);
    }

    #[test]
    fn groups_spanning_multiple_variables() {
        // Hard: a + b <= 10. Groups pull a and b in different directions.
        let hard = vec![LinearConstraint::le(var("a").plus(&var("b")), num(10))];
        let soft = vec![
            vec![
                LinearConstraint::ge(var("a"), num(6)),
                LinearConstraint::ge(var("b"), num(6)),
            ], // infeasible with hard
            vec![LinearConstraint::ge(var("a"), num(4))],
            vec![LinearConstraint::ge(var("b"), num(5))],
        ];
        let res = max_feasible_subset(&hard, &soft).unwrap();
        assert_eq!(res.cost, 1);
        assert_eq!(res.selected, vec![1, 2]);
        let m = res.model.unwrap();
        assert!(m["a"] >= 4 && m["b"] >= 5 && m["a"] + m["b"] <= 10);
    }

    #[test]
    fn empty_soft_set_is_trivially_optimal() {
        let hard = vec![LinearConstraint::ge(var("z"), num(0))];
        let res = max_feasible_subset(&hard, &[]).unwrap();
        assert!(res.selected.is_empty());
        assert_eq!(res.cost, 0);
        assert!(res.model.is_some());
    }
}
