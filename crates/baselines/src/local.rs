//! The "local" baseline: every replica executes transactions against its own
//! copy with no communication whatsoever.
//!
//! This is the paper's bare-bones performance floor — "database consistency
//! across replicas is not guaranteed". The module tracks per-replica values
//! so tests (and the examples) can demonstrate exactly that divergence.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_lang::ids::ObjId;

/// Per-replica counters with no coordination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalCounters {
    replicas: usize,
    values: Vec<BTreeMap<ObjId, i64>>,
    /// Committed operations.
    pub commits: u64,
}

impl LocalCounters {
    /// Creates `replicas` independent copies.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0);
        LocalCounters {
            replicas,
            values: vec![BTreeMap::new(); replicas],
            commits: 0,
        }
    }

    /// Sets an object's value on every replica (consistent population).
    pub fn populate(&mut self, obj: ObjId, value: i64) {
        for replica in &mut self.values {
            replica.insert(obj.clone(), value);
        }
    }

    /// The value a replica currently holds.
    pub fn value_at(&self, replica: usize, obj: &ObjId) -> i64 {
        self.values[replica].get(obj).copied().unwrap_or(0)
    }

    /// Applies the decrement-or-refill order at one replica only.
    pub fn order(&mut self, replica: usize, obj: &ObjId, amount: i64, refill_to: Option<i64>) {
        let value = self.value_at(replica, obj);
        let new = if value > amount {
            value - amount
        } else if let Some(r) = refill_to {
            r
        } else {
            value - amount
        };
        self.values[replica].insert(obj.clone(), new);
        self.commits += 1;
    }

    /// True when every replica agrees on the value of `obj` — generally
    /// false once the workload has run, which is the point of the baseline.
    pub fn is_consistent(&self, obj: &ObjId) -> bool {
        let first = self.value_at(0, obj);
        (1..self.replicas).all(|r| self.value_at(r, obj) == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_diverge_without_coordination() {
        let mut l = LocalCounters::new(2);
        let obj = ObjId::new("stock[1]");
        l.populate(obj.clone(), 10);
        assert!(l.is_consistent(&obj));
        l.order(0, &obj, 1, None);
        assert!(!l.is_consistent(&obj));
        assert_eq!(l.value_at(0, &obj), 9);
        assert_eq!(l.value_at(1, &obj), 10);
        assert_eq!(l.commits, 1);
    }

    #[test]
    fn refill_happens_per_replica() {
        let mut l = LocalCounters::new(2);
        let obj = ObjId::new("stock[2]");
        l.populate(obj.clone(), 1);
        l.order(0, &obj, 1, Some(100));
        assert_eq!(l.value_at(0, &obj), 100);
        assert_eq!(l.value_at(1, &obj), 1);
    }
}
