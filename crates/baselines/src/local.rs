//! The "local" baseline: every replica executes transactions against its own
//! engine with no communication whatsoever, behind the shared
//! [`SiteRuntime`] surface.
//!
//! This is the paper's bare-bones performance floor — "database consistency
//! across replicas is not guaranteed". Each replica owns a real storage
//! engine (2PL + WAL, like every other runtime), so tests and examples can
//! demonstrate exactly that divergence on durable, engine-backed state.

use std::collections::VecDeque;

use homeo_lang::ids::ObjId;
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_store::{Engine, EngineError};

/// Per-replica engines with no coordination.
pub struct LocalRuntime {
    engines: Vec<Engine>,
    inboxes: Vec<VecDeque<SiteOp>>,
    /// Committed operations.
    pub commits: u64,
}

impl LocalRuntime {
    /// Creates `replicas` independent copies with fresh engines.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0);
        Self::from_engines((0..replicas).map(|_| Engine::new()).collect())
    }

    /// Creates the runtime over pre-populated engines (one per replica).
    pub fn from_engines(engines: Vec<Engine>) -> Self {
        assert!(!engines.is_empty());
        let replicas = engines.len();
        LocalRuntime {
            engines,
            inboxes: vec![VecDeque::new(); replicas],
            commits: 0,
        }
    }

    /// Sets an object's value on every replica (consistent population,
    /// logged through each engine).
    pub fn populate(&mut self, obj: ObjId, value: i64) {
        for engine in &self.engines {
            let mut txn = engine.begin();
            engine
                .write(&txn, obj.as_str(), value)
                .and_then(|()| engine.commit(&mut txn))
                .expect("population write cannot conflict");
        }
    }

    /// True when every replica agrees on the value of `obj` — generally
    /// false once the workload has run, which is the point of the baseline.
    pub fn is_consistent(&self, obj: &ObjId) -> bool {
        let first = self.engines[0].peek(obj.as_str());
        self.engines[1..]
            .iter()
            .all(|e| e.peek(obj.as_str()) == first)
    }

    fn run_op(&mut self, site: usize, op: SiteOp) -> OpOutcome {
        let obj = match &op {
            SiteOp::Order { obj, .. } | SiteOp::Increment { obj, .. } => obj.clone(),
            // Local execution never communicates; a forced synchronization
            // is a no-op that "commits" without touching anything.
            SiteOp::ForceSync { .. } => {
                self.commits += 1;
                return OpOutcome::local_commit();
            }
            // The local baseline executes counter operations only; a
            // general transaction is typed as rejected, never a panic.
            SiteOp::Transaction { .. } => return OpOutcome::unsupported(),
        };
        let engine = &self.engines[site];
        let mut txn = engine.begin();
        let value = match engine.read(&txn, obj.as_str()) {
            Ok(v) => v,
            Err(EngineError::WouldBlock { .. }) => {
                engine.abort(&mut txn).ok();
                return OpOutcome::default();
            }
            Err(e) => panic!("local read failed: {e}"),
        };
        let new = match &op {
            SiteOp::Order {
                amount, refill_to, ..
            } => {
                if value > *amount {
                    value - amount
                } else if let Some(r) = refill_to {
                    *r
                } else {
                    value - amount
                }
            }
            SiteOp::Increment { amount, .. } => value + amount.abs(),
            _ => unreachable!("handled above"),
        };
        engine
            .write(&txn, obj.as_str(), new)
            .and_then(|()| engine.commit(&mut txn))
            .expect("writer already holds the lock");
        self.commits += 1;
        OpOutcome::local_commit()
    }
}

impl SiteRuntime for LocalRuntime {
    fn sites(&self) -> usize {
        self.engines.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        &self.engines[site]
    }

    fn submit(&mut self, site: usize, op: SiteOp) {
        self.inboxes[site].push_back(op);
    }

    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        let batch: Vec<SiteOp> = self.inboxes[site].drain(..).collect();
        batch.into_iter().map(|op| self.run_op(site, op)).collect()
    }

    /// The local baseline never synchronizes — that is its defining
    /// property (and its consistency bug).
    fn synchronize(&mut self, _site: usize) -> u64 {
        0
    }

    /// The batched path runs each operation directly against the replica's
    /// engine, skipping the per-operation inbox round-trip. Semantics are
    /// identical to one-at-a-time execution (there is no cross-operation
    /// state to amortize — local execution is already coordination-free).
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        ops.iter().map(|op| self.run_op(site, op.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_diverge_without_coordination() {
        let mut l = LocalRuntime::new(2);
        let obj = ObjId::new("stock[1]");
        l.populate(obj.clone(), 10);
        assert!(l.is_consistent(&obj));
        let out = l.execute(
            0,
            SiteOp::Order {
                obj: obj.clone(),
                amount: 1,
                refill_to: None,
            },
        );
        assert!(out.committed && !out.synchronized);
        assert!(!l.is_consistent(&obj));
        assert_eq!(l.value_at(0, &obj), 9);
        assert_eq!(l.value_at(1, &obj), 10);
        assert_eq!(l.commits, 1);
    }

    #[test]
    fn refill_happens_per_replica() {
        let mut l = LocalRuntime::new(2);
        let obj = ObjId::new("stock[2]");
        l.populate(obj.clone(), 1);
        l.execute(
            0,
            SiteOp::Order {
                obj: obj.clone(),
                amount: 1,
                refill_to: Some(100),
            },
        );
        assert_eq!(l.value_at(0, &obj), 100);
        assert_eq!(l.value_at(1, &obj), 1);
    }

    #[test]
    fn local_state_is_engine_backed_and_recoverable() {
        let mut l = LocalRuntime::new(2);
        let obj = ObjId::new("stock[3]");
        l.populate(obj.clone(), 10);
        for _ in 0..3 {
            l.execute(
                0,
                SiteOp::Order {
                    obj: obj.clone(),
                    amount: 1,
                    refill_to: None,
                },
            );
        }
        assert!(l.engine(0).wal_len() > 0);
        l.engines[0].crash_and_recover();
        assert_eq!(l.value_at(0, &obj), 7);
    }
}
