//! # homeo-baselines
//!
//! The baseline execution modes the paper compares against (Section 6.1),
//! all implemented behind the shared `SiteRuntime` surface of
//! `homeo-runtime` and backed by real per-site storage engines:
//!
//! * **2PC** ([`twopc`]) — classical two-phase commit across all replicas:
//!   every transaction pays two round trips of coordination and holds its
//!   locks for the duration, so conflicts rise with latency and concurrency.
//! * **local** ([`local`]) — each replica executes transactions locally with
//!   no communication at all; replica states diverge (no consistency), which
//!   is the latency/throughput floor.
//! * **OPT** — the hand-crafted demarcation-protocol variant that splits the
//!   remaining headroom evenly among replicas at each synchronization point;
//!   it is implemented as [`homeo_protocol::ReplicatedMode::EvenSplit`]
//!   (executed by `homeo_runtime::ReplicatedRuntime`) and re-exported here
//!   for discoverability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod local;
pub mod twopc;

pub use homeo_protocol::ReplicatedMode;
pub use local::LocalRuntime;
pub use twopc::TwoPcRuntime;
