//! Two-phase commit over fully replicated state.
//!
//! Every transaction acquires locks at all replicas (prepare), then commits
//! (commit phase): two communication round trips per transaction, exactly
//! the latency profile the paper's 2PC baseline shows. Contention is modelled
//! faithfully at the level the evaluation cares about: a transaction that
//! finds its object locked by a concurrent in-flight transaction aborts (the
//! paper's 2PC runs suffered "frequent transaction aborts" at higher client
//! counts and relied on MySQL's 1 s lock-wait timeout).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use homeo_lang::ids::ObjId;

/// Outcome of one 2PC transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoPcOutcome {
    /// Whether the transaction committed.
    pub committed: bool,
    /// 2PC always communicates: two round trips.
    pub comm_rounds: u32,
}

/// A fully replicated cluster coordinated with 2PC.
///
/// The cluster keeps one authoritative value per object (all replicas agree
/// after every commit — that is the point of 2PC) plus a set of objects
/// locked by in-flight transactions, which the simulator uses to model
/// conflicts: the caller marks a transaction in-flight for the duration of
/// its two round trips.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TwoPcCluster {
    values: BTreeMap<ObjId, i64>,
    /// Objects currently locked by in-flight transactions, with the count of
    /// waiters that will conflict.
    in_flight: BTreeMap<ObjId, u32>,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (conflicts).
    pub aborts: u64,
}

impl TwoPcCluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an object's replicated value (population).
    pub fn populate(&mut self, obj: ObjId, value: i64) {
        self.values.insert(obj, value);
    }

    /// The committed value of an object.
    pub fn value(&self, obj: &ObjId) -> i64 {
        self.values.get(obj).copied().unwrap_or(0)
    }

    /// Marks the beginning of a transaction on `obj`; returns false (and
    /// counts an abort) when the object is already locked by an in-flight
    /// transaction.
    pub fn begin(&mut self, obj: &ObjId) -> bool {
        let entry = self.in_flight.entry(obj.clone()).or_insert(0);
        if *entry > 0 {
            self.aborts += 1;
            false
        } else {
            *entry = 1;
            true
        }
    }

    /// Completes a transaction started with [`Self::begin`], applying the
    /// decrement-or-refill semantics of the workloads.
    pub fn finish_order(
        &mut self,
        obj: &ObjId,
        amount: i64,
        refill_to: Option<i64>,
    ) -> TwoPcOutcome {
        let value = self.value(obj);
        let new = if value > amount {
            value - amount
        } else if let Some(r) = refill_to {
            r
        } else {
            value - amount
        };
        self.values.insert(obj.clone(), new);
        self.in_flight.remove(obj);
        self.commits += 1;
        TwoPcOutcome {
            committed: true,
            comm_rounds: 2,
        }
    }

    /// Completes a transaction with a plain delta (Payment-style).
    pub fn finish_increment(&mut self, obj: &ObjId, amount: i64) -> TwoPcOutcome {
        let value = self.value(obj) + amount;
        self.values.insert(obj.clone(), value);
        self.in_flight.remove(obj);
        self.commits += 1;
        TwoPcOutcome {
            committed: true,
            comm_rounds: 2,
        }
    }

    /// Convenience: a whole order transaction in one call (begin + finish or
    /// abort on conflict), used by the closed-loop executors.
    pub fn order(&mut self, obj: &ObjId, amount: i64, refill_to: Option<i64>) -> TwoPcOutcome {
        if self.begin(obj) {
            self.finish_order(obj, amount, refill_to)
        } else {
            TwoPcOutcome {
                committed: false,
                comm_rounds: 2,
            }
        }
    }

    /// The conflict (abort) rate observed so far, in percent.
    pub fn abort_rate_percent(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborts as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    #[test]
    fn orders_apply_decrement_and_refill_semantics() {
        let mut c = TwoPcCluster::new();
        c.populate(obj(1), 3);
        assert!(c.order(&obj(1), 1, Some(100)).committed);
        assert_eq!(c.value(&obj(1)), 2);
        c.order(&obj(1), 1, Some(100));
        assert_eq!(c.value(&obj(1)), 1);
        // value == 1 is not > 1, so the next order refills.
        c.order(&obj(1), 1, Some(100));
        assert_eq!(c.value(&obj(1)), 100);
        assert_eq!(c.commits, 3);
    }

    #[test]
    fn concurrent_transactions_on_the_same_object_conflict() {
        let mut c = TwoPcCluster::new();
        c.populate(obj(2), 10);
        assert!(c.begin(&obj(2)));
        // A second client arrives while the first is still in flight.
        let second = c.order(&obj(2), 1, None);
        assert!(!second.committed);
        assert_eq!(c.aborts, 1);
        // The first finishes normally.
        let first = c.finish_order(&obj(2), 1, None);
        assert!(first.committed);
        assert_eq!(c.value(&obj(2)), 9);
        assert!(c.abort_rate_percent() > 0.0);
    }

    #[test]
    fn increments_are_replicated_immediately() {
        let mut c = TwoPcCluster::new();
        c.populate(ObjId::new("balance"), 5);
        assert!(c.begin(&ObjId::new("balance")));
        c.finish_increment(&ObjId::new("balance"), 7);
        assert_eq!(c.value(&ObjId::new("balance")), 12);
    }

    #[test]
    fn every_transaction_pays_two_round_trips() {
        let mut c = TwoPcCluster::new();
        c.populate(obj(3), 50);
        for _ in 0..5 {
            let out = c.order(&obj(3), 1, None);
            assert_eq!(out.comm_rounds, 2);
        }
    }
}
