//! Two-phase commit over fully replicated state, behind the shared
//! [`SiteRuntime`] surface.
//!
//! Every transaction acquires its lock at submit time (the prepare phase:
//! all replicas grant or the transaction aborts) and applies its write to
//! **every** site's storage engine at poll time (the commit phase): two
//! communication round trips per transaction, exactly the latency profile
//! the paper's 2PC baseline shows. Contention is modelled faithfully at the
//! level the evaluation cares about: a transaction that finds its object
//! locked by a concurrent in-flight transaction aborts (the paper's 2PC
//! runs suffered "frequent transaction aborts" at higher client counts and
//! relied on MySQL's 1 s lock-wait timeout).
//!
//! Unlike the seed's `BTreeMap`-only cluster, all replicated values live in
//! per-site engines, so the WAL and local concurrency control cover the
//! baseline exactly like the protocol paths.

use std::collections::{BTreeMap, VecDeque};

use homeo_lang::ids::ObjId;
use homeo_runtime::{OpOutcome, SiteOp, SiteRuntime};
use homeo_store::{Engine, EngineError};

/// A fully replicated cluster coordinated with 2PC, one storage engine per
/// site (all replicas agree after every commit — that is the point of 2PC).
pub struct TwoPcRuntime {
    engines: Vec<Engine>,
    /// Objects locked by in-flight (submitted, not yet polled)
    /// transactions, keyed to the submission that owns the lock.
    in_flight: BTreeMap<ObjId, u64>,
    /// Per-site inboxes: `(submission id, doomed, op)`; `doomed` marks
    /// submissions that lost the prepare phase to a concurrent holder.
    inboxes: Vec<VecDeque<(u64, bool, SiteOp)>>,
    next_submission: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (conflicts).
    pub aborts: u64,
}

impl TwoPcRuntime {
    /// Creates a cluster of `sites` replicas with fresh engines.
    pub fn new(sites: usize) -> Self {
        assert!(sites > 0);
        Self::from_engines((0..sites).map(|_| Engine::new()).collect())
    }

    /// Creates a cluster over pre-populated engines (one per site; they must
    /// hold identical state, as replicas do).
    pub fn from_engines(engines: Vec<Engine>) -> Self {
        assert!(!engines.is_empty());
        let sites = engines.len();
        TwoPcRuntime {
            engines,
            in_flight: BTreeMap::new(),
            inboxes: vec![VecDeque::new(); sites],
            next_submission: 0,
            commits: 0,
            aborts: 0,
        }
    }

    /// Sets an object's replicated value on every site (population; logged
    /// through each engine so recovery covers it).
    pub fn populate(&mut self, obj: ObjId, value: i64) {
        for engine in &self.engines {
            write_through(engine, &obj, value);
        }
    }

    /// The committed (replicated) value of an object.
    pub fn value(&self, obj: &ObjId) -> i64 {
        self.engines[0].peek(obj.as_str())
    }

    /// The conflict (abort) rate observed so far, in percent.
    pub fn abort_rate_percent(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            100.0 * self.aborts as f64 / total as f64
        }
    }

    /// The counter an operation targets; `None` for general transactions,
    /// which this baseline cannot execute (they complete as typed
    /// [`OpOutcome::unsupported`] rejections, never a panic).
    fn op_object(op: &SiteOp) -> Option<&ObjId> {
        match op {
            SiteOp::Order { obj, .. }
            | SiteOp::Increment { obj, .. }
            | SiteOp::ForceSync { obj } => Some(obj),
            SiteOp::Transaction { .. } => None,
        }
    }

    /// The commit phase of one prepared operation: apply the write to every
    /// replica's engine.
    fn commit_everywhere(&mut self, op: &SiteOp) -> OpOutcome {
        let obj = Self::op_object(op).expect("rejected at submit").clone();
        let value = self.value(&obj);
        let new = match op {
            SiteOp::Order {
                amount, refill_to, ..
            } => {
                if value > *amount {
                    value - amount
                } else if let Some(r) = refill_to {
                    *r
                } else {
                    value - amount
                }
            }
            SiteOp::Increment { amount, .. } => value + amount.abs(),
            SiteOp::ForceSync { .. } => value,
            SiteOp::Transaction { .. } => unreachable!("rejected at submit"),
        };
        for engine in &self.engines {
            write_through(engine, &obj, new);
        }
        self.commits += 1;
        OpOutcome {
            committed: true,
            synchronized: true,
            refilled: matches!(op, SiteOp::Order { refill_to: Some(r), amount, .. } if value <= *amount && new == *r),
            comm_rounds: 2,
            ..Default::default()
        }
    }
}

/// Writes `value` to `obj` through a fresh logged engine transaction.
fn write_through(engine: &Engine, obj: &ObjId, value: i64) {
    let mut txn = engine.begin();
    match engine
        .write(&txn, obj.as_str(), value)
        .and_then(|()| engine.commit(&mut txn))
    {
        Ok(()) => {}
        Err(EngineError::WouldBlock { .. }) => {
            // The replicated write set is guarded by the 2PC lock table, so
            // an engine-level conflict cannot happen in a well-formed run.
            engine.abort(&mut txn).ok();
            panic!("2PC commit raced an engine transaction on `{obj}`");
        }
        Err(e) => panic!("2PC commit failed: {e}"),
    }
}

impl SiteRuntime for TwoPcRuntime {
    fn sites(&self) -> usize {
        self.engines.len()
    }

    fn engine(&self, site: usize) -> &Engine {
        &self.engines[site]
    }

    /// The prepare phase: try to lock the object at all replicas. A
    /// submission that finds the object held by another in-flight
    /// submission is doomed and will abort at poll time.
    fn submit(&mut self, site: usize, op: SiteOp) {
        let id = self.next_submission;
        self.next_submission += 1;
        let doomed = match Self::op_object(&op) {
            // Unsupported operations skip the prepare phase entirely; poll
            // types them as rejected.
            None => false,
            Some(obj) => match self.in_flight.entry(obj.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(id);
                    false
                }
                std::collections::btree_map::Entry::Occupied(_) => true,
            },
        };
        self.inboxes[site].push_back((id, doomed, op));
    }

    /// The commit phase for every prepared operation in the site's inbox.
    fn poll(&mut self, site: usize) -> Vec<OpOutcome> {
        let batch: Vec<(u64, bool, SiteOp)> = self.inboxes[site].drain(..).collect();
        batch
            .into_iter()
            .map(|(id, doomed, op)| {
                let Some(obj) = Self::op_object(&op) else {
                    return OpOutcome::unsupported();
                };
                let obj = obj.clone();
                if doomed {
                    self.aborts += 1;
                    return OpOutcome {
                        committed: false,
                        synchronized: true,
                        comm_rounds: 2,
                        ..Default::default()
                    };
                }
                let outcome = self.commit_everywhere(&op);
                if self.in_flight.get(&obj) == Some(&id) {
                    self.in_flight.remove(&obj);
                }
                outcome
            })
            .collect()
    }

    /// 2PC is always synchronized: every commit already installed the
    /// authoritative state everywhere, so there is nothing left to fold.
    fn synchronize(&mut self, _site: usize) -> u64 {
        0
    }

    /// The batched path: each operation still prepares and commits
    /// individually (2PC has no group commit — every transaction pays its
    /// two round trips), but the inbox round-trip per operation is skipped.
    /// An operation only conflicts with submissions that were in flight
    /// before the batch, exactly as if the batch were executed one at a
    /// time.
    fn submit_batch(&mut self, site: usize, ops: &[SiteOp]) -> Vec<OpOutcome> {
        let _ = site; // every replica applies every commit
        ops.iter()
            .map(|op| {
                let Some(obj) = Self::op_object(op) else {
                    return OpOutcome::unsupported();
                };
                if self.in_flight.contains_key(obj) {
                    // Prepare lost to a concurrent in-flight submission.
                    self.aborts += 1;
                    return OpOutcome {
                        committed: false,
                        synchronized: true,
                        comm_rounds: 2,
                        ..Default::default()
                    };
                }
                self.commit_everywhere(op)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: usize) -> ObjId {
        ObjId::new(format!("stock[{i}]"))
    }

    fn order(
        c: &mut TwoPcRuntime,
        site: usize,
        o: &ObjId,
        amount: i64,
        refill: Option<i64>,
    ) -> OpOutcome {
        c.execute(
            site,
            SiteOp::Order {
                obj: o.clone(),
                amount,
                refill_to: refill,
            },
        )
    }

    #[test]
    fn orders_apply_decrement_and_refill_semantics() {
        let mut c = TwoPcRuntime::new(2);
        c.populate(obj(1), 3);
        assert!(order(&mut c, 0, &obj(1), 1, Some(100)).committed);
        assert_eq!(c.value(&obj(1)), 2);
        order(&mut c, 1, &obj(1), 1, Some(100));
        assert_eq!(c.value(&obj(1)), 1);
        // value == 1 is not > 1, so the next order refills.
        let out = order(&mut c, 0, &obj(1), 1, Some(100));
        assert!(out.refilled);
        assert_eq!(c.value(&obj(1)), 100);
        assert_eq!(c.commits, 3);
    }

    #[test]
    fn commits_are_replicated_to_every_site_engine() {
        let mut c = TwoPcRuntime::new(3);
        c.populate(obj(4), 10);
        order(&mut c, 2, &obj(4), 1, None);
        for site in 0..3 {
            assert_eq!(c.value_at(site, &obj(4)), 9);
            assert!(
                c.engine(site).wal_len() > 0,
                "site {site} commit not logged"
            );
        }
    }

    #[test]
    fn concurrent_submissions_on_the_same_object_conflict() {
        let mut c = TwoPcRuntime::new(2);
        c.populate(obj(2), 10);
        // Two clients prepare on the same object before either commits.
        c.submit(
            0,
            SiteOp::Order {
                obj: obj(2),
                amount: 1,
                refill_to: None,
            },
        );
        c.submit(
            1,
            SiteOp::Order {
                obj: obj(2),
                amount: 1,
                refill_to: None,
            },
        );
        let second = c.poll(1);
        assert!(!second[0].committed);
        assert_eq!(c.aborts, 1);
        // The first finishes normally.
        let first = c.poll(0);
        assert!(first[0].committed);
        assert_eq!(c.value(&obj(2)), 9);
        assert!(c.abort_rate_percent() > 0.0);
        // The lock is released: a fresh transaction succeeds.
        assert!(order(&mut c, 1, &obj(2), 1, None).committed);
    }

    #[test]
    fn increments_are_replicated_immediately() {
        let mut c = TwoPcRuntime::new(2);
        let balance = ObjId::new("balance");
        c.populate(balance.clone(), 5);
        let out = c.execute(
            0,
            SiteOp::Increment {
                obj: balance.clone(),
                amount: 7,
            },
        );
        assert!(out.committed && out.synchronized);
        assert_eq!(c.value(&balance), 12);
        assert_eq!(c.value_at(1, &balance), 12);
    }

    #[test]
    fn every_transaction_pays_two_round_trips() {
        let mut c = TwoPcRuntime::new(2);
        c.populate(obj(3), 50);
        for _ in 0..5 {
            let out = order(&mut c, 0, &obj(3), 1, None);
            assert_eq!(out.comm_rounds, 2);
        }
    }

    #[test]
    fn submit_batch_commits_each_op_and_respects_in_flight_locks() {
        let mut c = TwoPcRuntime::new(2);
        c.populate(obj(7), 10);
        c.populate(obj(8), 10);
        // A prepare in flight on obj(7) dooms batch ops touching it.
        c.submit(
            0,
            SiteOp::Order {
                obj: obj(7),
                amount: 1,
                refill_to: None,
            },
        );
        let batch = vec![
            SiteOp::Order {
                obj: obj(7),
                amount: 1,
                refill_to: None,
            },
            SiteOp::Order {
                obj: obj(8),
                amount: 1,
                refill_to: None,
            },
            SiteOp::Order {
                obj: obj(8),
                amount: 1,
                refill_to: None,
            },
        ];
        let outcomes = c.submit_batch(1, &batch);
        assert!(
            !outcomes[0].committed,
            "conflicts with the in-flight prepare"
        );
        // Sequential batch ops on one object do NOT self-conflict: each
        // commits before the next prepares, exactly like one-at-a-time.
        assert!(outcomes[1].committed && outcomes[2].committed);
        assert_eq!(c.value(&obj(8)), 8);
        // The queued submission still commits afterwards.
        assert!(c.poll(0)[0].committed);
        assert_eq!(c.value(&obj(7)), 9);
    }

    #[test]
    fn replicated_state_survives_a_site_crash() {
        let mut c = TwoPcRuntime::new(2);
        c.populate(obj(5), 20);
        for _ in 0..4 {
            order(&mut c, 0, &obj(5), 1, None);
        }
        c.engines[1].crash_and_recover();
        assert_eq!(c.value_at(1, &obj(5)), 16);
    }
}
