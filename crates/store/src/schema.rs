//! Values, columns, rows and table schemas for the relational layer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A cell value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A short text value (names, addresses in TPC-C population).
    Text(String),
}

impl Value {
    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Text(_) => None,
        }
    }

    /// The text payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Text(s) => Some(s),
        }
    }

    /// The type of the value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Text(_) => ColumnType::Text,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// Text.
    Text,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// An integer column.
    pub fn int(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Int,
        }
    }

    /// A text column.
    pub fn text(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Text,
        }
    }
}

/// A row: one value per column, in schema order.
pub type Row = Vec<Value>;

/// A table schema: named columns plus the primary-key column indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Indices of the primary-key columns (in key order).
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Creates a schema; primary-key columns are given by name.
    ///
    /// # Panics
    /// Panics if a primary-key column name is unknown.
    pub fn new(name: impl Into<String>, columns: Vec<Column>, primary_key: &[&str]) -> Self {
        let pk = primary_key
            .iter()
            .map(|k| {
                columns
                    .iter()
                    .position(|c| c.name == *k)
                    .unwrap_or_else(|| panic!("unknown primary key column `{k}`"))
            })
            .collect();
        TableSchema {
            name: name.into(),
            columns,
            primary_key: pk,
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Extracts the primary key of a row.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Checks that a row matches the schema (arity and types).
    pub fn validate(&self, row: &Row) -> bool {
        row.len() == self.columns.len()
            && row
                .iter()
                .zip(&self.columns)
                .all(|(v, c)| v.column_type() == c.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stock_schema() -> TableSchema {
        TableSchema::new(
            "stock",
            vec![Column::int("itemid"), Column::int("qty")],
            &["itemid"],
        )
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_text(), None);
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from("hi").column_type(), ColumnType::Text);
    }

    #[test]
    fn schema_key_extraction() {
        let s = stock_schema();
        let row = vec![Value::Int(7), Value::Int(40)];
        assert_eq!(s.key_of(&row), vec![Value::Int(7)]);
        assert_eq!(s.column_index("qty"), Some(1));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    fn row_validation_checks_arity_and_types() {
        let s = stock_schema();
        assert!(s.validate(&vec![Value::Int(1), Value::Int(2)]));
        assert!(!s.validate(&vec![Value::Int(1)]));
        assert!(!s.validate(&vec![Value::Int(1), Value::from("oops")]));
    }

    #[test]
    #[should_panic(expected = "unknown primary key")]
    fn unknown_pk_column_panics() {
        TableSchema::new("t", vec![Column::int("a")], &["b"]);
    }

    #[test]
    fn composite_primary_keys() {
        let s = TableSchema::new(
            "district",
            vec![
                Column::int("w_id"),
                Column::int("d_id"),
                Column::int("next_o_id"),
            ],
            &["w_id", "d_id"],
        );
        let row = vec![Value::Int(1), Value::Int(3), Value::Int(3001)];
        assert_eq!(s.key_of(&row), vec![Value::Int(1), Value::Int(3)]);
    }
}
