//! A strict two-phase-locking lock manager.
//!
//! The homeostasis protocol's normal-execution phase requires that the local
//! interleaving of transactions at each site be (view-)serializable
//! (Section 3.3: "this can be enforced conservatively by any classical
//! algorithm that guarantees view-serializability"). The prototype leans on
//! MySQL for this; we provide a classic shared/exclusive lock manager with
//! strict 2PL and a wound-free `WouldBlock` discipline — the caller (the
//! simulator's site loop) decides whether to queue or abort, which also lets
//! benchmarks model lock-wait timeouts like MySQL's 1-second floor
//! (Section 6.2).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// The outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockOutcome {
    /// The lock was granted (or was already held in a compatible mode).
    Granted,
    /// The lock conflicts with locks held by the listed transaction(s); the
    /// caller should wait or abort.
    WouldBlock,
}

/// Identifier of a transaction for locking purposes.
pub type TxnId = u64;

#[derive(Debug, Default, Clone)]
struct LockEntry {
    shared: BTreeSet<TxnId>,
    exclusive: Option<TxnId>,
}

/// A table of locks keyed by resource name (we lock at object granularity).
#[derive(Debug, Default, Clone)]
pub struct LockManager {
    locks: BTreeMap<String, LockEntry>,
    held: BTreeMap<TxnId, BTreeSet<String>>,
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a lock on `resource` in the given mode for `txn`.
    pub fn acquire(&mut self, txn: TxnId, resource: &str, mode: LockMode) -> LockOutcome {
        let entry = self.locks.entry(resource.to_string()).or_default();
        match mode {
            LockMode::Shared => {
                match entry.exclusive {
                    Some(owner) if owner != txn => return LockOutcome::WouldBlock,
                    _ => {}
                }
                entry.shared.insert(txn);
            }
            LockMode::Exclusive => {
                match entry.exclusive {
                    Some(owner) if owner != txn => return LockOutcome::WouldBlock,
                    _ => {}
                }
                // Upgrade is allowed only when the requester is the sole reader.
                if entry.shared.iter().any(|t| *t != txn) {
                    return LockOutcome::WouldBlock;
                }
                entry.exclusive = Some(txn);
                entry.shared.insert(txn);
            }
        }
        self.held
            .entry(txn)
            .or_default()
            .insert(resource.to_string());
        LockOutcome::Granted
    }

    /// True when `txn` currently holds a lock on `resource` (in any mode).
    pub fn holds(&self, txn: TxnId, resource: &str) -> bool {
        self.held
            .get(&txn)
            .map(|rs| rs.contains(resource))
            .unwrap_or(false)
    }

    /// The transactions currently blocking a request by `txn` for
    /// `resource` in `mode` (empty when the request would be granted).
    pub fn blockers(&self, txn: TxnId, resource: &str, mode: LockMode) -> Vec<TxnId> {
        let Some(entry) = self.locks.get(resource) else {
            return Vec::new();
        };
        let mut out = BTreeSet::new();
        if let Some(owner) = entry.exclusive {
            if owner != txn {
                out.insert(owner);
            }
        }
        if mode == LockMode::Exclusive {
            for t in &entry.shared {
                if *t != txn {
                    out.insert(*t);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Releases every lock held by the transaction (strict 2PL: all locks are
    /// released together at commit or abort).
    pub fn release_all(&mut self, txn: TxnId) {
        if let Some(resources) = self.held.remove(&txn) {
            for r in resources {
                if let Some(entry) = self.locks.get_mut(&r) {
                    entry.shared.remove(&txn);
                    if entry.exclusive == Some(txn) {
                        entry.exclusive = None;
                    }
                    if entry.shared.is_empty() && entry.exclusive.is_none() {
                        self.locks.remove(&r);
                    }
                }
            }
        }
    }

    /// Number of resources currently locked (by anyone).
    pub fn locked_resources(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_are_compatible() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(1, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(2, "x", LockMode::Shared), LockOutcome::Granted);
        assert!(lm.holds(1, "x") && lm.holds(2, "x"));
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(2, "x", LockMode::Shared),
            LockOutcome::WouldBlock
        );
        assert_eq!(
            lm.acquire(2, "x", LockMode::Exclusive),
            LockOutcome::WouldBlock
        );
        assert_eq!(lm.blockers(2, "x", LockMode::Shared), vec![1]);
    }

    #[test]
    fn reacquisition_and_upgrade_by_the_same_txn() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(1, "x", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(lm.acquire(1, "x", LockMode::Shared), LockOutcome::Granted);
        // Another reader blocks the upgrade.
        let mut lm = LockManager::new();
        lm.acquire(1, "x", LockMode::Shared);
        lm.acquire(2, "x", LockMode::Shared);
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::WouldBlock
        );
        assert_eq!(lm.blockers(1, "x", LockMode::Exclusive), vec![2]);
    }

    #[test]
    fn release_all_frees_resources() {
        let mut lm = LockManager::new();
        lm.acquire(1, "x", LockMode::Exclusive);
        lm.acquire(1, "y", LockMode::Shared);
        assert_eq!(lm.locked_resources(), 2);
        lm.release_all(1);
        assert_eq!(lm.locked_resources(), 0);
        assert_eq!(
            lm.acquire(2, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
    }

    #[test]
    fn disjoint_resources_do_not_conflict() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(1, "x", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(2, "y", LockMode::Exclusive),
            LockOutcome::Granted
        );
    }

    #[test]
    fn blockers_on_unlocked_resource_is_empty() {
        let lm = LockManager::new();
        assert!(lm.blockers(1, "x", LockMode::Exclusive).is_empty());
    }
}
