//! The storage engine façade: transactional object access plus relational
//! tables, built from the lock manager, WAL and table layers.
//!
//! The engine exposes two coordinated views of the same site-local state:
//!
//! * a flat **object namespace** (`String → i64`), which is what compiled
//!   `L`/`L++` transactions and the homeostasis protocol read and write, and
//! * **relational tables**, used by workload generators to populate and
//!   inspect data the way the paper's benchmark drivers do.
//!
//! Object access is transactional: reads take shared locks, writes take
//! exclusive locks (strict 2PL), updates are staged per transaction and only
//! applied (and logged) at commit.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

use crate::locks::{LockManager, LockMode, LockOutcome};
use crate::schema::{Row, TableSchema, Value};
use crate::table::{Table, TableError};
use crate::wal::{LogRecord, Wal};

/// Errors from engine operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineError {
    /// The requested lock conflicts with another transaction.
    WouldBlock {
        /// The object being locked.
        object: String,
    },
    /// The transaction handle is not active.
    NotActive,
    /// A relational-layer error.
    Table(TableError),
    /// Unknown table.
    UnknownTable(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WouldBlock { object } => {
                write!(f, "lock conflict on `{object}`")
            }
            EngineError::NotActive => write!(f, "transaction is not active"),
            EngineError::Table(e) => write!(f, "table error: {e}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TableError> for EngineError {
    fn from(e: TableError) -> Self {
        EngineError::Table(e)
    }
}

/// Status of a transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Running; may read, write, commit or abort.
    Active,
    /// Successfully committed.
    Committed,
    /// Aborted; its staged writes were discarded.
    Aborted,
}

/// A transaction handle returned by [`Engine::begin`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnHandle {
    /// Engine-assigned transaction id.
    pub id: u64,
    /// Current status.
    pub status: TxnStatus,
}

#[derive(Debug, Default)]
struct TxnState {
    staged: BTreeMap<String, i64>,
}

#[derive(Debug, Default)]
struct EngineInner {
    objects: BTreeMap<String, i64>,
    tables: BTreeMap<String, Table>,
    locks: LockManager,
    wal: Wal,
    transactions: BTreeMap<u64, TxnState>,
    next_txn: u64,
    committed_count: u64,
    aborted_count: u64,
}

/// The storage engine for one site. Cheap to share: interior mutability via
/// a single mutex (sites in the simulator are single-threaded, the benchmark
/// driver occasionally inspects engines from the coordinating thread).
#[derive(Debug, Default)]
pub struct Engine {
    inner: Mutex<EngineInner>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the engine state. A panic while holding the lock poisons it in
    /// std; the state is still consistent (every mutation completes under the
    /// lock), so recover the guard rather than propagating the poison.
    fn lock(&self) -> MutexGuard<'_, EngineInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // ------------------------------------------------------------------
    // Object (key-value) transactional API
    // ------------------------------------------------------------------

    /// Begins a transaction.
    pub fn begin(&self) -> TxnHandle {
        let mut inner = self.lock();
        inner.next_txn += 1;
        let id = inner.next_txn;
        inner.transactions.insert(id, TxnState::default());
        inner.wal.append(LogRecord::Begin { txn: id });
        TxnHandle {
            id,
            status: TxnStatus::Active,
        }
    }

    /// Reads an object within a transaction (shared lock; sees the
    /// transaction's own staged writes).
    pub fn read(&self, txn: &TxnHandle, object: &str) -> Result<i64, EngineError> {
        let mut inner = self.lock();
        Self::ensure_active(&inner, txn)?;
        if let Some(v) = inner
            .transactions
            .get(&txn.id)
            .and_then(|t| t.staged.get(object))
        {
            return Ok(*v);
        }
        match inner.locks.acquire(txn.id, object, LockMode::Shared) {
            LockOutcome::Granted => Ok(inner.objects.get(object).copied().unwrap_or(0)),
            LockOutcome::WouldBlock => Err(EngineError::WouldBlock {
                object: object.to_string(),
            }),
        }
    }

    /// Stages a write within a transaction (exclusive lock).
    pub fn write(&self, txn: &TxnHandle, object: &str, value: i64) -> Result<(), EngineError> {
        let mut inner = self.lock();
        Self::ensure_active(&inner, txn)?;
        match inner.locks.acquire(txn.id, object, LockMode::Exclusive) {
            LockOutcome::Granted => {
                inner
                    .transactions
                    .get_mut(&txn.id)
                    .expect("active transaction exists")
                    .staged
                    .insert(object.to_string(), value);
                Ok(())
            }
            LockOutcome::WouldBlock => Err(EngineError::WouldBlock {
                object: object.to_string(),
            }),
        }
    }

    /// Commits the transaction: staged writes are logged and applied, locks
    /// released.
    pub fn commit(&self, txn: &mut TxnHandle) -> Result<(), EngineError> {
        let mut inner = self.lock();
        Self::ensure_active(&inner, txn)?;
        let state = inner
            .transactions
            .remove(&txn.id)
            .ok_or(EngineError::NotActive)?;
        for (object, value) in &state.staged {
            let previous = inner.objects.get(object).copied().unwrap_or(0);
            inner.wal.append(LogRecord::Write {
                txn: txn.id,
                object: object.clone(),
                value: *value,
                previous,
            });
        }
        inner.wal.append(LogRecord::Commit { txn: txn.id });
        for (object, value) in state.staged {
            if value == 0 {
                inner.objects.remove(&object);
            } else {
                inner.objects.insert(object, value);
            }
        }
        inner.locks.release_all(txn.id);
        inner.committed_count += 1;
        txn.status = TxnStatus::Committed;
        Ok(())
    }

    /// Aborts the transaction: staged writes are discarded, locks released.
    pub fn abort(&self, txn: &mut TxnHandle) -> Result<(), EngineError> {
        let mut inner = self.lock();
        Self::ensure_active(&inner, txn)?;
        inner.transactions.remove(&txn.id);
        inner.wal.append(LogRecord::Abort { txn: txn.id });
        inner.locks.release_all(txn.id);
        inner.aborted_count += 1;
        txn.status = TxnStatus::Aborted;
        Ok(())
    }

    fn ensure_active(inner: &EngineInner, txn: &TxnHandle) -> Result<(), EngineError> {
        if txn.status != TxnStatus::Active || !inner.transactions.contains_key(&txn.id) {
            return Err(EngineError::NotActive);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Non-transactional object access (population, snapshots, sync)
    // ------------------------------------------------------------------

    /// Reads an object outside any transaction (used for population and by
    /// the protocol's synchronization phase, which runs when no transactions
    /// are active).
    pub fn peek(&self, object: &str) -> i64 {
        self.lock().objects.get(object).copied().unwrap_or(0)
    }

    /// Writes an object outside any transaction.
    pub fn poke(&self, object: &str, value: i64) {
        let mut inner = self.lock();
        if value == 0 {
            inner.objects.remove(object);
        } else {
            inner.objects.insert(object.to_string(), value);
        }
    }

    /// Writes `value` to `object` through a fresh logged transaction — the
    /// one-shot form of begin/write/commit used for population writes and
    /// for installing synchronized state (both run when the caller knows no
    /// conflicting transaction is in flight). Unlike [`Engine::poke`], the
    /// write is WAL-logged, so it survives [`Engine::crash_and_recover`].
    pub fn write_logged(&self, object: &str, value: i64) -> Result<(), EngineError> {
        let mut txn = self.begin();
        match self
            .write(&txn, object, value)
            .and_then(|()| self.commit(&mut txn))
        {
            Ok(()) => Ok(()),
            Err(e) => {
                self.abort(&mut txn).ok();
                Err(e)
            }
        }
    }

    /// Writes a whole batch of objects through **one** logged transaction —
    /// the group-commit form of [`Engine::write_logged`]. The entire batch
    /// runs under a single engine-lock acquisition and costs one WAL
    /// `Begin`/`Commit` cycle regardless of its size, which is what makes
    /// the runtime's batched submission path cheaper than N one-shot
    /// commits. The batch is atomic: if any object is locked by an in-flight
    /// transaction, nothing is applied and the batch aborts as a unit.
    ///
    /// Later entries win when the batch names the same object twice (each
    /// write is logged, recovery replays them in order).
    pub fn write_logged_batch(&self, writes: &[(&str, i64)]) -> Result<(), EngineError> {
        if writes.is_empty() {
            return Ok(());
        }
        let mut inner = self.lock();
        inner.next_txn += 1;
        let id = inner.next_txn;
        inner.wal.append(LogRecord::Begin { txn: id });
        for (object, _) in writes {
            match inner.locks.acquire(id, object, LockMode::Exclusive) {
                LockOutcome::Granted => {}
                LockOutcome::WouldBlock => {
                    inner.wal.append(LogRecord::Abort { txn: id });
                    inner.locks.release_all(id);
                    inner.aborted_count += 1;
                    return Err(EngineError::WouldBlock {
                        object: (*object).to_string(),
                    });
                }
            }
        }
        for (object, value) in writes {
            let previous = inner.objects.get(*object).copied().unwrap_or(0);
            inner.wal.append(LogRecord::Write {
                txn: id,
                object: (*object).to_string(),
                value: *value,
                previous,
            });
            if *value == 0 {
                inner.objects.remove(*object);
            } else {
                inner.objects.insert((*object).to_string(), *value);
            }
        }
        inner.wal.append(LogRecord::Commit { txn: id });
        inner.locks.release_all(id);
        inner.committed_count += 1;
        Ok(())
    }

    /// A snapshot of the whole object namespace.
    pub fn snapshot(&self) -> BTreeMap<String, i64> {
        self.lock().objects.clone()
    }

    /// Replaces the object namespace wholesale (used when installing a
    /// recovered or synchronized state).
    pub fn install(&self, objects: BTreeMap<String, i64>) {
        self.lock().objects = objects.into_iter().filter(|(_, v)| *v != 0).collect();
    }

    // ------------------------------------------------------------------
    // Relational layer
    // ------------------------------------------------------------------

    /// Creates a table.
    pub fn create_table(&self, schema: TableSchema) {
        let mut inner = self.lock();
        let name = schema.name.clone();
        inner.tables.insert(name, Table::new(schema));
    }

    /// Runs a closure with read access to a table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R, EngineError> {
        let inner = self.lock();
        let table = inner
            .tables
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        Ok(f(table))
    }

    /// Runs a closure with mutable access to a table.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> R,
    ) -> Result<R, EngineError> {
        let mut inner = self.lock();
        let table = inner
            .tables
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        Ok(f(table))
    }

    /// Inserts a row into a table.
    pub fn insert_row(&self, table: &str, row: Row) -> Result<(), EngineError> {
        self.with_table_mut(table, |t| t.insert(row))?
            .map_err(EngineError::from)
    }

    /// Fetches a row by primary key.
    pub fn get_row(&self, table: &str, key: &[Value]) -> Result<Option<Row>, EngineError> {
        self.with_table(table, |t| t.get(key).cloned())
    }

    // ------------------------------------------------------------------
    // Durability & statistics
    // ------------------------------------------------------------------

    /// Simulates a crash + recovery: the object state is rebuilt from the
    /// WAL replayed over an empty baseline, and all in-flight transactions
    /// disappear. Relational tables (population data) survive, matching the
    /// paper's "all in-memory state can be recomputed" stance.
    pub fn crash_and_recover(&self) {
        let mut inner = self.lock();
        let recovered = inner.wal.recover(&BTreeMap::new());
        inner.objects = recovered
            .objects
            .into_iter()
            .filter(|(_, v)| *v != 0)
            .collect();
        inner.transactions.clear();
        inner.locks = LockManager::new();
    }

    /// Serializes the WAL to the binary frame an on-disk log writer would
    /// hold (length-prefixed records; see [`Wal::encode`]).
    pub fn wal_frame(&self) -> Vec<u8> {
        self.lock().wal.encode()
    }

    /// Reopens an engine from a (possibly torn) WAL frame, as after a crash
    /// that cut the log mid-record: the longest clean prefix is replayed and
    /// the committed object state installed. Relational tables are *not*
    /// part of the log (population data is reloaded by the workload, per the
    /// paper's "all in-memory state can be recomputed" stance). Returns
    /// `None` when even the frame header is unreadable.
    pub fn reopen_from_frame(frame: &[u8]) -> Option<Engine> {
        let wal = Wal::decode_prefix(frame)?;
        let recovered = wal.recover(&BTreeMap::new());
        // Fresh transaction ids must not collide with ANY id in the log —
        // committed, aborted or torn in-flight. Reusing a torn transaction's
        // id would let a later commit of the fresh transaction resurrect the
        // torn one's surviving writes on the next replay.
        let max_txn = wal.max_txn_id();
        let engine = Engine::new();
        {
            let mut inner = engine.lock();
            inner.objects = recovered
                .objects
                .into_iter()
                .filter(|(_, v)| *v != 0)
                .collect();
            inner.wal = wal;
            inner.next_txn = max_txn;
        }
        Some(engine)
    }

    /// Number of committed transactions.
    pub fn committed_count(&self) -> u64 {
        self.lock().committed_count
    }

    /// Number of aborted transactions.
    pub fn aborted_count(&self) -> u64 {
        self.lock().aborted_count
    }

    /// Number of WAL records (diagnostics).
    pub fn wal_len(&self) -> usize {
        self.lock().wal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    #[test]
    fn read_write_commit_cycle() {
        let engine = Engine::new();
        let mut txn = engine.begin();
        assert_eq!(engine.read(&txn, "x").unwrap(), 0);
        engine.write(&txn, "x", 5).unwrap();
        // Own writes are visible before commit.
        assert_eq!(engine.read(&txn, "x").unwrap(), 5);
        // But not outside the transaction.
        assert_eq!(engine.peek("x"), 0);
        engine.commit(&mut txn).unwrap();
        assert_eq!(engine.peek("x"), 5);
        assert_eq!(engine.committed_count(), 1);
    }

    #[test]
    fn abort_discards_staged_writes() {
        let engine = Engine::new();
        let mut txn = engine.begin();
        engine.write(&txn, "x", 9).unwrap();
        engine.abort(&mut txn).unwrap();
        assert_eq!(engine.peek("x"), 0);
        assert_eq!(engine.aborted_count(), 1);
        assert!(matches!(
            engine.read(&txn, "x"),
            Err(EngineError::NotActive)
        ));
    }

    #[test]
    fn conflicting_writers_block() {
        let engine = Engine::new();
        let mut t1 = engine.begin();
        let t2 = engine.begin();
        engine.write(&t1, "x", 1).unwrap();
        assert!(matches!(
            engine.write(&t2, "x", 2),
            Err(EngineError::WouldBlock { .. })
        ));
        assert!(matches!(
            engine.read(&t2, "x"),
            Err(EngineError::WouldBlock { .. })
        ));
        engine.commit(&mut t1).unwrap();
        // After commit the lock is free.
        assert_eq!(engine.read(&t2, "x").unwrap(), 1);
    }

    #[test]
    fn readers_do_not_block_each_other() {
        let engine = Engine::new();
        engine.poke("x", 7);
        let t1 = engine.begin();
        let t2 = engine.begin();
        assert_eq!(engine.read(&t1, "x").unwrap(), 7);
        assert_eq!(engine.read(&t2, "x").unwrap(), 7);
        // But a writer now blocks.
        let t3 = engine.begin();
        assert!(matches!(
            engine.write(&t3, "x", 0),
            Err(EngineError::WouldBlock { .. })
        ));
    }

    #[test]
    fn serializable_interleaving_of_counter_increments() {
        // Two increments executed with proper locking produce the serial sum.
        let engine = Engine::new();
        engine.poke("counter", 0);
        for _ in 0..10 {
            let mut t = engine.begin();
            let v = engine.read(&t, "counter").unwrap();
            engine.write(&t, "counter", v + 1).unwrap();
            engine.commit(&mut t).unwrap();
        }
        assert_eq!(engine.peek("counter"), 10);
    }

    #[test]
    fn crash_recovery_replays_committed_transactions_only() {
        let engine = Engine::new();
        let mut t1 = engine.begin();
        engine.write(&t1, "x", 5).unwrap();
        engine.commit(&mut t1).unwrap();
        let t2 = engine.begin();
        engine.write(&t2, "y", 9).unwrap();
        // t2 never commits; crash.
        engine.crash_and_recover();
        assert_eq!(engine.peek("x"), 5);
        assert_eq!(engine.peek("y"), 0);
        // The engine is usable after recovery.
        let mut t3 = engine.begin();
        engine.write(&t3, "y", 1).unwrap();
        engine.commit(&mut t3).unwrap();
        assert_eq!(engine.peek("y"), 1);
    }

    #[test]
    fn reopen_from_a_torn_wal_frame_replays_the_clean_prefix() {
        // Build a log: one committed write, then crash mid-way through a
        // second transaction's record.
        let engine = Engine::new();
        let mut t1 = engine.begin();
        engine.write(&t1, "x", 5).unwrap();
        engine.commit(&mut t1).unwrap();
        let mut t2 = engine.begin();
        engine.write(&t2, "y", 9).unwrap();
        engine.commit(&mut t2).unwrap();
        let frame = engine.wal_frame();
        // The crash tears the frame inside t2's records.
        let torn = &frame[..frame.len() - 6];
        let reopened = Engine::reopen_from_frame(torn).expect("header intact");
        assert_eq!(reopened.peek("x"), 5, "the clean prefix replays");
        assert_eq!(reopened.peek("y"), 0, "the torn transaction is gone");
        // The reopened engine accepts new transactions with fresh ids.
        let mut t3 = reopened.begin();
        reopened.write(&t3, "y", 2).unwrap();
        reopened.commit(&mut t3).unwrap();
        assert_eq!(reopened.peek("y"), 2);
        // An intact frame reopens to exactly the pre-crash state.
        let full = Engine::reopen_from_frame(&frame).expect("intact frame");
        assert_eq!(full.peek("x"), 5);
        assert_eq!(full.peek("y"), 9);
        assert!(Engine::reopen_from_frame(&frame[..2]).is_none());
    }

    #[test]
    fn reopened_engines_never_reuse_torn_transaction_ids() {
        // t1 (id 1) commits x=5; t2 (id 2) writes z=9 but its Commit record
        // is torn off by the crash. A fresh transaction on the reopened
        // engine must NOT reuse id 2: if it did, its own Commit{2} would
        // make the next replay treat t2 as committed and resurrect z=9.
        let engine = Engine::new();
        let mut t1 = engine.begin();
        engine.write(&t1, "x", 5).unwrap();
        engine.commit(&mut t1).unwrap();
        let mut t2 = engine.begin();
        engine.write(&t2, "z", 9).unwrap();
        engine.commit(&mut t2).unwrap();
        let frame = engine.wal_frame();
        let torn = &frame[..frame.len() - 6]; // tear inside t2's Commit
        let reopened = Engine::reopen_from_frame(torn).expect("header intact");
        assert_eq!(reopened.peek("z"), 0);
        let mut t3 = reopened.begin();
        assert!(t3.id > 2, "fresh id {} collides with the torn txn", t3.id);
        reopened.write(&t3, "y", 1).unwrap();
        reopened.commit(&mut t3).unwrap();
        // Replaying the combined log keeps the torn transaction dead.
        reopened.crash_and_recover();
        assert_eq!(reopened.peek("x"), 5);
        assert_eq!(reopened.peek("y"), 1);
        assert_eq!(reopened.peek("z"), 0, "torn write resurrected");
    }

    #[test]
    fn write_logged_is_durable_and_respects_locks() {
        let engine = Engine::new();
        engine.write_logged("x", 5).unwrap();
        assert_eq!(engine.peek("x"), 5);
        engine.crash_and_recover();
        assert_eq!(engine.peek("x"), 5, "write_logged must be WAL-covered");
        // A conflicting in-flight writer blocks it instead of clobbering.
        let mut t = engine.begin();
        engine.write(&t, "x", 9).unwrap();
        assert!(matches!(
            engine.write_logged("x", 1),
            Err(EngineError::WouldBlock { .. })
        ));
        engine.commit(&mut t).unwrap();
        assert_eq!(engine.peek("x"), 9);
    }

    #[test]
    fn write_logged_batch_is_one_commit_cycle() {
        let engine = Engine::new();
        let before = engine.wal_len();
        engine
            .write_logged_batch(&[("a", 1), ("b", 2), ("c", 3)])
            .unwrap();
        assert_eq!(engine.peek("a"), 1);
        assert_eq!(engine.peek("c"), 3);
        // One Begin + three Writes + one Commit, not three full cycles.
        assert_eq!(engine.wal_len() - before, 5);
        assert_eq!(engine.committed_count(), 1);
        // And the whole batch is durable.
        engine.crash_and_recover();
        assert_eq!(engine.peek("b"), 2);
    }

    #[test]
    fn write_logged_batch_is_atomic_under_conflict() {
        let engine = Engine::new();
        engine.write_logged("b", 7).unwrap();
        let mut t = engine.begin();
        engine.write(&t, "b", 9).unwrap();
        // `b` is locked: the whole batch aborts, `a` is not applied.
        assert!(matches!(
            engine.write_logged_batch(&[("a", 1), ("b", 2)]),
            Err(EngineError::WouldBlock { .. })
        ));
        assert_eq!(engine.peek("a"), 0);
        assert_eq!(engine.peek("b"), 7);
        assert_eq!(engine.aborted_count(), 1);
        engine.commit(&mut t).unwrap();
        // After the conflict clears the batch goes through.
        engine.write_logged_batch(&[("a", 1), ("b", 2)]).unwrap();
        assert_eq!(engine.peek("a"), 1);
        assert_eq!(engine.peek("b"), 2);
    }

    #[test]
    fn write_logged_batch_duplicate_objects_apply_in_order() {
        let engine = Engine::new();
        engine.write_logged_batch(&[("x", 5), ("x", 9)]).unwrap();
        assert_eq!(engine.peek("x"), 9);
        engine.crash_and_recover();
        assert_eq!(engine.peek("x"), 9, "recovery replays the last write");
        // An empty batch is a no-op, not a logged transaction.
        let before = engine.wal_len();
        engine.write_logged_batch(&[]).unwrap();
        assert_eq!(engine.wal_len(), before);
    }

    #[test]
    fn snapshot_and_install() {
        let engine = Engine::new();
        engine.poke("a", 1);
        engine.poke("b", 2);
        let snap = engine.snapshot();
        let other = Engine::new();
        other.install(snap);
        assert_eq!(other.peek("a"), 1);
        assert_eq!(other.peek("b"), 2);
    }

    #[test]
    fn relational_layer_round_trip() {
        let engine = Engine::new();
        engine.create_table(TableSchema::new(
            "stock",
            vec![Column::int("itemid"), Column::int("qty")],
            &["itemid"],
        ));
        engine
            .insert_row("stock", vec![Value::Int(1), Value::Int(10)])
            .unwrap();
        let row = engine.get_row("stock", &[Value::Int(1)]).unwrap().unwrap();
        assert_eq!(row[1], Value::Int(10));
        assert!(matches!(
            engine.insert_row("stock", vec![Value::Int(1), Value::Int(3)]),
            Err(EngineError::Table(TableError::DuplicateKey(_)))
        ));
        assert!(matches!(
            engine.get_row("nope", &[Value::Int(1)]),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn zero_values_keep_namespace_canonical() {
        let engine = Engine::new();
        let mut t = engine.begin();
        engine.write(&t, "x", 0).unwrap();
        engine.commit(&mut t).unwrap();
        assert_eq!(engine.snapshot().len(), 0);
        engine.poke("y", 0);
        assert_eq!(engine.snapshot().len(), 0);
    }
}
