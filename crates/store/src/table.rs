//! Relational tables with primary-key storage and secondary indexes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::schema::{Row, TableSchema, Value};

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableError {
    /// The row does not match the schema.
    SchemaMismatch,
    /// A row with the same primary key already exists.
    DuplicateKey(Vec<Value>),
    /// No row with the given primary key exists.
    NotFound(Vec<Value>),
    /// Unknown column name.
    UnknownColumn(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::SchemaMismatch => write!(f, "row does not match table schema"),
            TableError::DuplicateKey(k) => write!(f, "duplicate primary key {k:?}"),
            TableError::NotFound(k) => write!(f, "no row with primary key {k:?}"),
            TableError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
        }
    }
}

impl std::error::Error for TableError {}

/// A table: schema, primary-key ordered rows and secondary indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The schema.
    pub schema: TableSchema,
    rows: BTreeMap<Vec<Value>, Row>,
    /// Secondary indexes: indexed column → (value → keys of matching rows).
    indexes: BTreeMap<usize, BTreeMap<Value, Vec<Vec<Value>>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: BTreeMap::new(),
            indexes: BTreeMap::new(),
        }
    }

    /// Declares a secondary index on the named column (existing rows are
    /// indexed immediately).
    pub fn create_index(&mut self, column: &str) -> Result<(), TableError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| TableError::UnknownColumn(column.to_string()))?;
        let mut map: BTreeMap<Value, Vec<Vec<Value>>> = BTreeMap::new();
        for (key, row) in &self.rows {
            map.entry(row[idx].clone()).or_default().push(key.clone());
        }
        self.indexes.insert(idx, map);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row.
    pub fn insert(&mut self, row: Row) -> Result<(), TableError> {
        if !self.schema.validate(&row) {
            return Err(TableError::SchemaMismatch);
        }
        let key = self.schema.key_of(&row);
        if self.rows.contains_key(&key) {
            return Err(TableError::DuplicateKey(key));
        }
        for (col, index) in self.indexes.iter_mut() {
            index
                .entry(row[*col].clone())
                .or_default()
                .push(key.clone());
        }
        self.rows.insert(key, row);
        Ok(())
    }

    /// Fetches a row by primary key.
    pub fn get(&self, key: &[Value]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Updates a single column of the row with the given primary key.
    pub fn update_column(
        &mut self,
        key: &[Value],
        column: &str,
        value: Value,
    ) -> Result<(), TableError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| TableError::UnknownColumn(column.to_string()))?;
        let row = self
            .rows
            .get_mut(key)
            .ok_or_else(|| TableError::NotFound(key.to_vec()))?;
        let old = std::mem::replace(&mut row[idx], value.clone());
        if let Some(index) = self.indexes.get_mut(&idx) {
            if let Some(keys) = index.get_mut(&old) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    index.remove(&old);
                }
            }
            index.entry(value).or_default().push(key.to_vec());
        }
        Ok(())
    }

    /// Deletes a row by primary key, returning it.
    pub fn delete(&mut self, key: &[Value]) -> Result<Row, TableError> {
        let row = self
            .rows
            .remove(key)
            .ok_or_else(|| TableError::NotFound(key.to_vec()))?;
        for (col, index) in self.indexes.iter_mut() {
            if let Some(keys) = index.get_mut(&row[*col]) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    index.remove(&row[*col]);
                }
            }
        }
        Ok(row)
    }

    /// Full scan in primary-key order.
    pub fn scan(&self) -> impl Iterator<Item = &Row> {
        self.rows.values()
    }

    /// Looks up rows by an indexed column value; falls back to a scan when no
    /// index exists on the column.
    pub fn lookup(&self, column: &str, value: &Value) -> Result<Vec<&Row>, TableError> {
        let idx = self
            .schema
            .column_index(column)
            .ok_or_else(|| TableError::UnknownColumn(column.to_string()))?;
        if let Some(index) = self.indexes.get(&idx) {
            Ok(index
                .get(value)
                .map(|keys| keys.iter().filter_map(|k| self.rows.get(k)).collect())
                .unwrap_or_default())
        } else {
            Ok(self.scan().filter(|r| &r[idx] == value).collect())
        }
    }

    /// The smallest primary key strictly greater than `key`, if any (used by
    /// "oldest order" style scans).
    pub fn next_key_after(&self, key: &[Value]) -> Option<Vec<Value>> {
        self.rows
            .range(key.to_vec()..)
            .find(|(k, _)| k.as_slice() != key)
            .map(|(k, _)| k.clone())
    }

    /// The smallest primary key, if any.
    pub fn first_key(&self) -> Option<Vec<Value>> {
        self.rows.keys().next().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};

    fn stock() -> Table {
        Table::new(TableSchema::new(
            "stock",
            vec![Column::int("itemid"), Column::int("qty")],
            &["itemid"],
        ))
    }

    fn int_row(a: i64, b: i64) -> Row {
        vec![Value::Int(a), Value::Int(b)]
    }

    #[test]
    fn insert_get_and_duplicate_detection() {
        let mut t = stock();
        t.insert(int_row(1, 10)).unwrap();
        t.insert(int_row(2, 20)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&[Value::Int(1)]).unwrap()[1], Value::Int(10));
        assert_eq!(
            t.insert(int_row(1, 99)),
            Err(TableError::DuplicateKey(vec![Value::Int(1)]))
        );
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut t = stock();
        assert_eq!(
            t.insert(vec![Value::Int(1)]),
            Err(TableError::SchemaMismatch)
        );
        assert_eq!(
            t.insert(vec![Value::Int(1), Value::from("x")]),
            Err(TableError::SchemaMismatch)
        );
    }

    #[test]
    fn update_and_delete() {
        let mut t = stock();
        t.insert(int_row(1, 10)).unwrap();
        t.update_column(&[Value::Int(1)], "qty", Value::Int(9))
            .unwrap();
        assert_eq!(t.get(&[Value::Int(1)]).unwrap()[1], Value::Int(9));
        assert!(matches!(
            t.update_column(&[Value::Int(9)], "qty", Value::Int(0)),
            Err(TableError::NotFound(_))
        ));
        let deleted = t.delete(&[Value::Int(1)]).unwrap();
        assert_eq!(deleted[1], Value::Int(9));
        assert!(t.is_empty());
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = stock();
        t.insert(int_row(1, 10)).unwrap();
        t.insert(int_row(2, 10)).unwrap();
        t.insert(int_row(3, 30)).unwrap();
        t.create_index("qty").unwrap();
        assert_eq!(t.lookup("qty", &Value::Int(10)).unwrap().len(), 2);
        // Update moves the row between index buckets.
        t.update_column(&[Value::Int(1)], "qty", Value::Int(30))
            .unwrap();
        assert_eq!(t.lookup("qty", &Value::Int(10)).unwrap().len(), 1);
        assert_eq!(t.lookup("qty", &Value::Int(30)).unwrap().len(), 2);
        // Delete removes from the index.
        t.delete(&[Value::Int(3)]).unwrap();
        assert_eq!(t.lookup("qty", &Value::Int(30)).unwrap().len(), 1);
    }

    #[test]
    fn lookup_without_index_scans() {
        let mut t = stock();
        t.insert(int_row(5, 50)).unwrap();
        assert_eq!(t.lookup("qty", &Value::Int(50)).unwrap().len(), 1);
        assert!(matches!(
            t.lookup("missing", &Value::Int(0)),
            Err(TableError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ordered_scan_and_key_navigation() {
        let mut t = stock();
        for i in [3, 1, 2] {
            t.insert(int_row(i, i * 10)).unwrap();
        }
        let keys: Vec<i64> = t.scan().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(t.first_key(), Some(vec![Value::Int(1)]));
        assert_eq!(
            t.next_key_after(&[Value::Int(1)]),
            Some(vec![Value::Int(2)])
        );
        assert_eq!(t.next_key_after(&[Value::Int(3)]), None);
    }
}
