//! Write-ahead logging and recovery.
//!
//! The paper relies on "the recovery mechanisms of the underlying database"
//! and notes that "all in-memory state can be recomputed after failure
//! recovery" (Section 5.2). The WAL here plays that role for our in-memory
//! engine: committed object writes are logged before they are applied, and
//! [`Wal::recover`] rebuilds the committed object state (uncommitted
//! transactions are discarded), after which the protocol layer can recompute
//! its treaty tables.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A log sequence number.
pub type Lsn = u64;

/// Records appended to the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A transaction began.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction wrote `value` to `object` (logged before commit).
    Write {
        /// Transaction id.
        txn: u64,
        /// Object name.
        object: String,
        /// New value.
        value: i64,
        /// Previous value (for diagnostics / undo-style tooling).
        previous: i64,
    },
    /// A transaction committed.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction aborted.
    Abort {
        /// Transaction id.
        txn: u64,
    },
}

/// The state recovered from a log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveredState {
    /// Committed object values.
    pub objects: BTreeMap<String, i64>,
    /// Ids of transactions that committed.
    pub committed: Vec<u64>,
    /// Ids of transactions that began but neither committed nor aborted
    /// (losers discarded by recovery).
    pub in_flight: Vec<u64>,
}

/// An append-only write-ahead log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, returning its LSN.
    pub fn append(&mut self, record: LogRecord) -> Lsn {
        self.records.push(record);
        self.records.len() as Lsn
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records in append order.
    pub fn records(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter()
    }

    /// The highest transaction id appearing anywhere in the log (0 when the
    /// log is empty). Recovery seeds its id counter past this so fresh
    /// transactions can never collide with logged ones.
    pub fn max_txn_id(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                LogRecord::Begin { txn }
                | LogRecord::Commit { txn }
                | LogRecord::Abort { txn }
                | LogRecord::Write { txn, .. } => *txn,
            })
            .max()
            .unwrap_or(0)
    }

    /// Truncates the log (after a checkpoint has captured the state).
    pub fn truncate(&mut self) {
        self.records.clear();
    }

    /// Replays the log: redo the writes of committed transactions, in commit
    /// order, on top of `baseline` (the last checkpoint image).
    pub fn recover(&self, baseline: &BTreeMap<String, i64>) -> RecoveredState {
        let mut committed: Vec<u64> = Vec::new();
        let mut aborted: Vec<u64> = Vec::new();
        let mut begun: Vec<u64> = Vec::new();
        for r in &self.records {
            match r {
                LogRecord::Begin { txn } => begun.push(*txn),
                LogRecord::Commit { txn } => committed.push(*txn),
                LogRecord::Abort { txn } => aborted.push(*txn),
                LogRecord::Write { .. } => {}
            }
        }
        let mut objects = baseline.clone();
        // Redo in log order, but only writes of committed transactions.
        for r in &self.records {
            if let LogRecord::Write {
                txn, object, value, ..
            } = r
            {
                if committed.contains(txn) {
                    objects.insert(object.clone(), *value);
                }
            }
        }
        let in_flight = begun
            .into_iter()
            .filter(|t| !committed.contains(t) && !aborted.contains(t))
            .collect();
        RecoveredState {
            objects,
            committed,
            in_flight,
        }
    }

    /// Serializes the log to a compact binary frame (length-prefixed
    /// records, big-endian), the way an on-disk log writer would.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.records.len() as u32).to_be_bytes());
        for r in &self.records {
            match r {
                LogRecord::Begin { txn } => {
                    buf.push(0);
                    buf.extend_from_slice(&txn.to_be_bytes());
                }
                LogRecord::Commit { txn } => {
                    buf.push(1);
                    buf.extend_from_slice(&txn.to_be_bytes());
                }
                LogRecord::Abort { txn } => {
                    buf.push(2);
                    buf.extend_from_slice(&txn.to_be_bytes());
                }
                LogRecord::Write {
                    txn,
                    object,
                    value,
                    previous,
                } => {
                    buf.push(3);
                    buf.extend_from_slice(&txn.to_be_bytes());
                    let name = object.as_bytes();
                    buf.extend_from_slice(&(name.len() as u32).to_be_bytes());
                    buf.extend_from_slice(name);
                    buf.extend_from_slice(&value.to_be_bytes());
                    buf.extend_from_slice(&previous.to_be_bytes());
                }
            }
        }
        buf
    }

    /// Decodes a frame produced by [`Wal::encode`]. Returns `None` on any
    /// truncated or malformed input.
    pub fn decode(data: &[u8]) -> Option<Wal> {
        let (wal, complete) = Self::decode_lenient(data)?;
        complete.then_some(wal)
    }

    /// Decodes as much of a frame as is intact: a crash can tear the tail of
    /// an on-disk log mid-record, and recovery must still replay the clean
    /// prefix (a torn record cannot belong to a committed transaction — its
    /// commit record would have to follow it). Returns `None` only when even
    /// the frame header is unreadable.
    pub fn decode_prefix(data: &[u8]) -> Option<Wal> {
        Self::decode_lenient(data).map(|(wal, _)| wal)
    }

    /// Shared decoder: returns the longest cleanly decodable prefix and
    /// whether the full frame was intact.
    fn decode_lenient(data: &[u8]) -> Option<(Wal, bool)> {
        let mut cursor = Cursor { data, pos: 0 };
        let count = cursor.u32()? as usize;
        let mut records = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let record = (|| {
                let tag = cursor.u8()?;
                let txn = cursor.u64()?;
                Some(match tag {
                    0 => LogRecord::Begin { txn },
                    1 => LogRecord::Commit { txn },
                    2 => LogRecord::Abort { txn },
                    3 => {
                        let len = cursor.u32()? as usize;
                        let name = cursor.take(len)?;
                        let object = String::from_utf8(name.to_vec()).ok()?;
                        let value = cursor.i64()?;
                        let previous = cursor.i64()?;
                        LogRecord::Write {
                            txn,
                            object,
                            value,
                            previous,
                        }
                    }
                    _ => return None,
                })
            })();
            match record {
                Some(record) => records.push(record),
                None => return Some((Wal { records }, false)),
            }
        }
        Some((Wal { records }, true))
    }
}

/// A bounds-checked big-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_be_bytes(s.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(txn: u64, object: &str, value: i64, previous: i64) -> LogRecord {
        LogRecord::Write {
            txn,
            object: object.to_string(),
            value,
            previous,
        }
    }

    #[test]
    fn committed_writes_are_redone() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        wal.append(write(1, "x", 5, 0));
        wal.append(LogRecord::Commit { txn: 1 });
        let state = wal.recover(&BTreeMap::new());
        assert_eq!(state.objects.get("x"), Some(&5));
        assert_eq!(state.committed, vec![1]);
        assert!(state.in_flight.is_empty());
    }

    #[test]
    fn uncommitted_and_aborted_writes_are_discarded() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        wal.append(write(1, "x", 5, 0));
        wal.append(LogRecord::Begin { txn: 2 });
        wal.append(write(2, "y", 7, 0));
        wal.append(LogRecord::Abort { txn: 2 });
        let state = wal.recover(&BTreeMap::new());
        assert!(state.objects.is_empty());
        assert_eq!(state.in_flight, vec![1]);
    }

    #[test]
    fn recovery_applies_on_top_of_baseline_in_order() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        wal.append(write(1, "x", 5, 3));
        wal.append(LogRecord::Commit { txn: 1 });
        wal.append(LogRecord::Begin { txn: 2 });
        wal.append(write(2, "x", 9, 5));
        wal.append(LogRecord::Commit { txn: 2 });
        let baseline: BTreeMap<String, i64> = [("x".to_string(), 3), ("z".to_string(), 1)]
            .into_iter()
            .collect();
        let state = wal.recover(&baseline);
        assert_eq!(state.objects.get("x"), Some(&9));
        assert_eq!(state.objects.get("z"), Some(&1));
    }

    #[test]
    fn replay_of_interleaved_transactions_is_deterministic_and_idempotent() {
        // Two writers interleave; one aborts, one commits, one crashes
        // in flight. Replay must keep exactly the committed effects, in log
        // order, and replaying the same log twice must agree.
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        wal.append(LogRecord::Begin { txn: 2 });
        wal.append(write(1, "x", 10, 0));
        wal.append(write(2, "x", 20, 0));
        wal.append(write(2, "y", 2, 0));
        wal.append(LogRecord::Abort { txn: 2 });
        wal.append(write(1, "y", 1, 0));
        wal.append(LogRecord::Commit { txn: 1 });
        wal.append(LogRecord::Begin { txn: 3 });
        wal.append(write(3, "z", 30, 0));
        let first = wal.recover(&BTreeMap::new());
        assert_eq!(first.objects.get("x"), Some(&10));
        assert_eq!(first.objects.get("y"), Some(&1));
        assert_eq!(
            first.objects.get("z"),
            None,
            "in-flight txn 3 must not replay"
        );
        assert_eq!(first.committed, vec![1]);
        assert_eq!(first.in_flight, vec![3]);
        let second = wal.recover(&BTreeMap::new());
        assert_eq!(first, second, "replay must be deterministic");
        // Replay also survives an encode/decode cycle of the log itself.
        let decoded = Wal::decode(&wal.encode()).expect("decode");
        assert_eq!(decoded.recover(&BTreeMap::new()), first);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 42 });
        wal.append(write(42, "stock[7]", 99, 100));
        wal.append(LogRecord::Commit { txn: 42 });
        wal.append(LogRecord::Abort { txn: 43 });
        let encoded = wal.encode();
        let decoded = Wal::decode(&encoded).expect("decode");
        assert_eq!(decoded.len(), wal.len());
        assert_eq!(
            decoded.records().collect::<Vec<_>>(),
            wal.records().collect::<Vec<_>>()
        );
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        let mut wal = Wal::new();
        wal.append(write(1, "x", 1, 0));
        let encoded = wal.encode();
        let truncated = &encoded[..encoded.len() - 3];
        assert!(Wal::decode(truncated).is_none());
        assert!(Wal::decode(&[]).is_none());
    }

    #[test]
    fn decode_prefix_recovers_the_clean_prefix_of_a_torn_frame() {
        // A committed transaction followed by a second one whose final write
        // is torn mid-record by the crash.
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        wal.append(write(1, "x", 5, 0));
        wal.append(LogRecord::Commit { txn: 1 });
        wal.append(LogRecord::Begin { txn: 2 });
        wal.append(write(2, "stock[123]", 77, 0));
        let encoded = wal.encode();
        // Tear the tail mid-way through the last record.
        let torn = &encoded[..encoded.len() - 10];
        let prefix = Wal::decode_prefix(torn).expect("frame header is intact");
        assert_eq!(prefix.len(), 4, "the torn record is dropped");
        // The clean prefix replays exactly the committed state.
        let state = prefix.recover(&BTreeMap::new());
        assert_eq!(state.objects.get("x"), Some(&5));
        assert!(!state.objects.contains_key("stock[123]"));
        assert_eq!(state.committed, vec![1]);
        assert_eq!(state.in_flight, vec![2]);
        // An intact frame decodes identically through both entry points.
        assert_eq!(Wal::decode_prefix(&encoded).unwrap().len(), wal.len());
        // Even a frame torn inside the header is rejected, not mis-read.
        assert!(Wal::decode_prefix(&encoded[..3]).is_none());
    }

    #[test]
    fn truncate_clears_the_log() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        assert!(!wal.is_empty());
        wal.truncate();
        assert!(wal.is_empty());
    }
}
