//! # homeo-store
//!
//! In-memory transactional storage engine substrate.
//!
//! The paper's prototype is middleware on top of MySQL InnoDB: each site has
//! a local database that provides serializable local execution, and the
//! homeostasis layer's in-memory state (treaty tables, stored procedures) is
//! rebuilt after failures using the underlying engine's recovery. This crate
//! plays the MySQL role:
//!
//! * typed relational tables with primary keys and secondary indexes
//!   ([`schema`], [`table`]),
//! * a flat integer *object* namespace — the view the `L`-level transactions
//!   operate on ([`engine`]),
//! * strict two-phase locking with shared/exclusive modes for serializable
//!   local interleavings ([`locks`]),
//! * a write-ahead log and recovery ([`wal`]),
//! * the [`engine::Engine`] façade tying it together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod locks;
pub mod schema;
pub mod table;
pub mod wal;

pub use engine::{Engine, EngineError, TxnHandle, TxnStatus};
pub use locks::{LockManager, LockMode, LockOutcome};
pub use schema::{Column, ColumnType, Row, TableSchema, Value};
pub use table::{Table, TableError};
pub use wal::{LogRecord, RecoveredState, Wal};
