//! Offline in-tree binding for the Linux readiness syscalls `std::net` does
//! not expose — the shim-crate counterpart of `serde`/`criterion` under
//! `crates/shims/`, except that here the thing being replaced is not a
//! crates.io dependency but the `libc`/`mio` layer a reactor would normally
//! sit on. The workspace is fully offline, so the handful of syscalls the
//! cluster's event loop needs are declared directly against the libc that
//! std already links:
//!
//! * [`Poller`] — `epoll_create1` / `epoll_ctl` / `epoll_wait` behind a safe
//!   token-based readiness API ([`Events`] / [`Event`]).
//! * [`connect_nonblocking`] — `socket(SOCK_NONBLOCK) + connect`, returning
//!   an in-progress [`TcpStream`]; completion is an [`Event::writable`]
//!   wakeup, success/failure read with [`TcpStream::take_error`].
//! * [`listen_on`] — `socket + bind + listen` with an explicit accept
//!   backlog (std hardcodes 128, far too small for a high-fanout site).
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE`'s soft limit to the hard
//!   limit, so a site or load client can hold tens of thousands of sockets.
//!
//! This crate is the only place in the workspace allowed to contain `unsafe`
//! (`homeo-cluster` itself is `#![forbid(unsafe_code)]`): every binding is
//! wrapped so callers only ever see owned std types and `io::Result`s.
//! Linux-only, like the deployment path it serves.

#![warn(missing_docs)]

use std::ffi::{c_int, c_void};
use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

// Constants from the Linux uapi headers (x86_64/aarch64 generic values).
const EPOLL_CLOEXEC: c_int = 0x80000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0x800;
const SOCK_CLOEXEC: c_int = 0x80000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;
const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event`: packed on x86_64 (a kernel ABI quirk), naturally
/// aligned everywhere else.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Big-endian.
    port: u16,
    /// Big-endian.
    addr: u32,
    zero: [u8; 8],
}

#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    /// Big-endian.
    port: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(sockfd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn bind(sockfd: c_int, addr: *const c_void, len: u32) -> c_int;
    fn listen(sockfd: c_int, backlog: c_int) -> c_int;
    fn setsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness wakeup for a registered file descriptor, identified by the
/// caller-chosen token.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token passed at registration.
    pub token: u64,
    /// Data (or EOF, or an error) can be read without blocking.
    pub readable: bool,
    /// The send buffer has room (or the error is pending) — a write will not
    /// block.
    pub writable: bool,
    /// The kernel flagged the connection as errored or hung up
    /// (`EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`); the next read/write surfaces
    /// the detail.
    pub closed: bool,
}

/// A reusable buffer of [`Event`]s filled by [`Poller::wait`].
pub struct Events {
    raw: Vec<RawEvent>,
    count: usize,
}

impl Events {
    /// A buffer holding at most `capacity` events per wait (minimum one).
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![RawEvent { events: 0, data: 0 }; capacity.max(1)],
            count: 0,
        }
    }

    /// Events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.count].iter().map(|raw| {
            // Copy out of the (possibly packed) kernel struct before use.
            let bits = { raw.events };
            Event {
                token: { raw.data },
                readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            }
        })
    }

    /// Number of events delivered by the last [`Poller::wait`].
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the last wait timed out without events.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A level-triggered epoll instance: register descriptors with a token and
/// an interest set, then [`wait`](Poller::wait) for readiness.
pub struct Poller {
    fd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error, any other return is a fresh fd we own.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { fd })
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = RawEvent {
            events,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it. The fd is
        // the caller's live descriptor (enforced by taking `&impl AsRawFd`).
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers a descriptor under `token` with the given interest.
    pub fn add(
        &self,
        fd: &impl AsRawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd.as_raw_fd(),
            Self::interest(readable, writable),
            token,
        )
    }

    /// Replaces a registered descriptor's token and interest.
    pub fn modify(
        &self,
        fd: &impl AsRawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd.as_raw_fd(),
            Self::interest(readable, writable),
            token,
        )
    }

    /// Deregisters a descriptor. (Closing the descriptor deregisters it
    /// implicitly; explicit removal keeps token reuse honest.)
    pub fn remove(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses (`None` blocks indefinitely). Fills `events` and
    /// returns the event count; `Ok(0)` is a timeout. `EINTR` retries
    /// internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(c_int::MAX as u128) as c_int;
                // Round a sub-millisecond deadline up, not down to a spin.
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        events.count = 0;
        loop {
            // SAFETY: the buffer has `raw.len()` writable RawEvent slots and
            // outlives the call; the kernel writes at most `maxevents`.
            let ret = unsafe {
                epoll_wait(
                    self.fd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as c_int,
                    timeout_ms,
                )
            };
            match cvt(ret) {
                Ok(n) => {
                    events.count = n as usize;
                    return Ok(events.count);
                }
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: we own the epoll fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

/// Calls `connect(2)` on a fresh nonblocking socket and returns the stream
/// with the connect still in flight (`EINPROGRESS`). Register it for
/// writability: the completion wakeup's verdict is
/// [`TcpStream::take_error`] — `None` means connected.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
    let fd = new_socket(addr, SOCK_NONBLOCK)?;
    let ret = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from(*v4.ip()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: `sa` is a correctly laid out sockaddr_in living across
            // the call; `fd` is the socket created above.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: as above, with a sockaddr_in6.
            unsafe {
                connect(
                    fd,
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if ret < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINPROGRESS) {
            // SAFETY: the socket was never handed out; close our only copy.
            unsafe { close(fd) };
            return Err(err);
        }
    }
    // SAFETY: `fd` is a valid connected/connecting TCP socket we exclusively
    // own; from_raw_fd transfers that ownership to the TcpStream.
    Ok(unsafe { TcpStream::from_raw_fd(fd) })
}

/// Binds `addr` (with `SO_REUSEADDR`, like std) and listens with an explicit
/// accept backlog — the high-fanout replacement for `TcpListener::bind`'s
/// hardcoded backlog of 128.
pub fn listen_on(addr: SocketAddr, backlog: i32) -> io::Result<TcpListener> {
    let fd = new_socket(addr, 0)?;
    let guard = FdGuard(fd);
    let one: c_int = 1;
    // SAFETY: `one` lives across the call; SO_REUSEADDR takes an int.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&one as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    })?;
    let ret = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port: v4.port().to_be(),
                addr: u32::from(*v4.ip()).to_be(),
                zero: [0; 8],
            };
            // SAFETY: correctly laid out sockaddr_in, live across the call.
            unsafe {
                bind(
                    fd,
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // SAFETY: correctly laid out sockaddr_in6, live across the call.
            unsafe {
                bind(
                    fd,
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    cvt(ret)?;
    // SAFETY: `fd` is a bound socket; listen takes no pointers.
    cvt(unsafe { listen(fd, backlog.max(1)) })?;
    std::mem::forget(guard);
    // SAFETY: `fd` is a valid listening socket we exclusively own.
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

/// Raises the process's `RLIMIT_NOFILE` soft limit to its hard limit and
/// returns the resulting soft limit. A site holding thousands of client
/// connections (or a fan-out load client opening them) calls this at
/// startup; failures are worth ignoring — the caller just keeps the
/// inherited limit.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a writable rlimit struct living across the call.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.cur < lim.max {
        let raised = RLimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `raised` lives across the call; only the soft limit moves.
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &raised) })?;
        return Ok(raised.cur);
    }
    Ok(lim.cur)
}

fn new_socket(addr: SocketAddr, extra_flags: c_int) -> io::Result<RawFd> {
    let domain = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    // SAFETY: socket takes no pointers; a non-negative return is a fresh fd.
    cvt(unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC | extra_flags, 0) })
}

/// Closes a raw fd on drop — covers the error paths between `socket(2)` and
/// the std wrapper taking ownership.
struct FdGuard(RawFd);

impl Drop for FdGuard {
    fn drop(&mut self) {
        // SAFETY: the guarded fd is exclusively ours until forgotten.
        unsafe { close(self.0) };
    }
}

/// A localhost `SocketAddr` helper for tests and loopback tooling.
pub fn loopback(port: u16) -> SocketAddr {
    SocketAddr::from((Ipv4Addr::LOCALHOST, port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn nonblocking_connect_completes_as_a_writable_event() {
        let listener = listen_on(loopback(0), 64).expect("listen");
        let addr = listener.local_addr().expect("addr");
        let stream = connect_nonblocking(addr).expect("connect in flight");
        let poller = Poller::new().expect("poller");
        poller.add(&stream, 7, false, true).expect("register");
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(n >= 1, "connect completion must wake the poller");
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token, 7);
        assert!(ev.writable);
        assert!(stream.take_error().expect("SO_ERROR").is_none());
        // The other side really accepted a connection.
        let (mut accepted, _) = listener.accept().expect("accept");
        accepted.write_all(b"ping").expect("write");
        // Readability is reported once data arrives.
        poller.modify(&stream, 7, true, false).expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait for data");
        assert!(n >= 1 && events.iter().any(|e| e.token == 7 && e.readable));
        let mut stream = stream;
        let mut buf = [0u8; 4];
        stream.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");
        poller.remove(&stream).expect("deregister");
    }

    #[test]
    fn a_refused_connect_surfaces_as_an_error_not_a_hang() {
        // Grab a loopback port with no listener behind it.
        let dead = {
            let l = listen_on(loopback(0), 1).expect("listen");
            l.local_addr().expect("addr")
        };
        match connect_nonblocking(dead) {
            // Loopback may refuse synchronously or via the readiness path.
            Err(_) => {}
            Ok(stream) => {
                let poller = Poller::new().expect("poller");
                poller.add(&stream, 1, false, true).expect("register");
                let mut events = Events::with_capacity(4);
                let n = poller
                    .wait(&mut events, Some(Duration::from_secs(5)))
                    .expect("wait");
                assert!(n >= 1, "a refused connect must still wake the poller");
                assert!(
                    stream.take_error().expect("SO_ERROR").is_some(),
                    "SO_ERROR must report the refusal"
                );
            }
        }
    }

    #[test]
    fn wait_times_out_on_an_idle_poller() {
        let poller = Poller::new().expect("poller");
        let mut events = Events::with_capacity(4);
        let started = std::time::Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn the_nofile_limit_can_be_raised() {
        let limit = raise_nofile_limit().expect("rlimit");
        assert!(limit > 0);
        // Idempotent: a second call reports the same (now maxed) limit.
        assert_eq!(raise_nofile_limit().expect("rlimit again"), limit);
    }

    #[test]
    fn listener_backlog_accepts_a_burst_without_refusing() {
        let listener = listen_on(loopback(0), 256).expect("listen");
        let addr = listener.local_addr().expect("addr");
        let streams: Vec<TcpStream> = (0..64)
            .map(|_| connect_nonblocking(addr).expect("connect"))
            .collect();
        let poller = Poller::new().expect("poller");
        for (i, s) in streams.iter().enumerate() {
            poller.add(s, i as u64, false, true).expect("register");
        }
        let mut events = Events::with_capacity(64);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut completed = vec![false; streams.len()];
        while completed.iter().any(|done| !done) {
            assert!(std::time::Instant::now() < deadline, "burst must complete");
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .expect("wait");
            for ev in events.iter() {
                let i = ev.token as usize;
                if !completed[i] {
                    assert!(streams[i].take_error().expect("SO_ERROR").is_none());
                    completed[i] = true;
                    poller.remove(&streams[i]).expect("deregister");
                }
            }
        }
    }
}
