//! Offline in-tree shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as documentation of
//! which types are wire-safe; no serializer is ever constructed and no bound
//! `T: Serialize` appears anywhere, so the derives can legally expand to
//! nothing. Written against `proc_macro` alone — no syn/quote — because the
//! build environment is fully offline.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and any `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and any `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
