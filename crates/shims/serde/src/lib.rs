//! Offline in-tree shim for the `serde` crate.
//!
//! The build environment has no access to crates.io, and the workspace uses
//! serde purely as `#[derive(Serialize, Deserialize)]` annotations on value
//! types — nothing ever instantiates a serializer. This shim provides the two
//! marker traits and (behind the `derive` feature) derive macros that emit
//! trivial implementations, so every annotated type compiles unchanged and
//! the real serde can be swapped back in via `[workspace.dependencies]`
//! without touching any source file.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
///
/// The real trait's methods are generic over a `Serializer`; since no code in
/// this workspace serializes anything, the shim needs no methods at all.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
///
/// Lifetime-free: the workspace never names the trait, it only derives it.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
