//! Offline in-tree shim for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! slice of criterion's API that the workspace's six bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! timed-loop harness. Timings are printed as `group/name: mean per-iter`;
//! statistical analysis, plots and HTML reports are out of scope. Swapping
//! the real criterion back in is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value or the computation behind it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to every bench target; hands out benchmark groups.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement: Duration::from_secs(1),
            default_warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement: self.default_measurement,
            warm_up: self.default_warm_up,
            _criterion: self,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        let measurement = self.default_measurement;
        let warm_up = self.default_warm_up;
        run_benchmark(&name.into(), sample_size, measurement, warm_up, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target wall-clock budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Wall-clock budget for the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.measurement, self.warm_up, f);
        self
    }

    /// Ends the group (a no-op in the shim; results are printed as they run).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, preventing the result from being
    /// optimized away.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed rate to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 10_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let budget_iters = (measurement.as_secs_f64() / per_iter.max(1e-9)) as u64;
    let iters_per_sample = (budget_iters / sample_size as u64).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = total.as_secs_f64() / total_iters.max(1) as f64;
    println!("{name}: {:.3} µs/iter ({total_iters} iters)", mean * 1e6);
}

/// Declares a function that runs the listed benchmark targets, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
