//! Pretty printing for `L` syntax trees.
//!
//! The output follows the concrete syntax accepted by [`crate::parser`], so
//! `parse(print(t)) == t` (round-tripping is exercised by property tests).

use std::fmt::Write;

use crate::ast::{AExp, BExp, Com, Transaction};

/// Renders an arithmetic expression.
pub fn aexp_to_string(e: &AExp) -> String {
    let mut s = String::new();
    write_aexp(&mut s, e, 0);
    s
}

/// Renders a boolean expression.
pub fn bexp_to_string(b: &BExp) -> String {
    let mut s = String::new();
    write_bexp(&mut s, b, 0);
    s
}

/// Renders a command with indentation.
pub fn com_to_string(c: &Com) -> String {
    let mut s = String::new();
    write_com(&mut s, c, 1);
    s
}

/// Renders an entire transaction in the concrete syntax.
pub fn transaction_to_string(t: &Transaction) -> String {
    let mut s = String::new();
    let params = t
        .params
        .iter()
        .map(|p| p.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(s, "transaction {}({}) {{", t.name, params);
    write_com(&mut s, &t.body, 1);
    s.push_str("}\n");
    s
}

// Precedence: 0 = additive, 1 = multiplicative, 2 = unary/atom
fn write_aexp(out: &mut String, e: &AExp, prec: u8) {
    match e {
        AExp::Const(n) => {
            let _ = write!(out, "{n}");
        }
        AExp::Param(p) => {
            let _ = write!(out, "{p}");
        }
        AExp::Var(v) => {
            let _ = write!(out, "{v}");
        }
        AExp::Read(x) => {
            let _ = write!(out, "read({x})");
        }
        AExp::Add(a, b) => {
            let needs_parens = prec > 0;
            if needs_parens {
                out.push('(');
            }
            write_aexp(out, a, 0);
            // Render `a + (-b)` as `a - b` for readability.
            if let AExp::Neg(inner) = b.as_ref() {
                out.push_str(" - ");
                write_aexp(out, inner, 1);
            } else {
                out.push_str(" + ");
                write_aexp(out, b, 1);
            }
            if needs_parens {
                out.push(')');
            }
        }
        AExp::Mul(a, b) => {
            let needs_parens = prec > 1;
            if needs_parens {
                out.push('(');
            }
            write_aexp(out, a, 1);
            out.push_str(" * ");
            write_aexp(out, b, 2);
            if needs_parens {
                out.push(')');
            }
        }
        AExp::Neg(a) => {
            out.push('-');
            write_aexp(out, a, 2);
        }
    }
}

fn write_bexp(out: &mut String, b: &BExp, prec: u8) {
    match b {
        BExp::True => out.push_str("true"),
        BExp::False => out.push_str("false"),
        BExp::Cmp(a, op, c) => {
            write_aexp(out, a, 0);
            let _ = write!(out, " {} ", op.symbol());
            write_aexp(out, c, 0);
        }
        BExp::And(a, c) => {
            let needs_parens = prec > 0;
            if needs_parens {
                out.push('(');
            }
            write_bexp(out, a, 1);
            out.push_str(" && ");
            write_bexp(out, c, 1);
            if needs_parens {
                out.push(')');
            }
        }
        BExp::Not(a) => {
            out.push_str("!(");
            write_bexp(out, a, 0);
            out.push(')');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_com(out: &mut String, c: &Com, level: usize) {
    match c {
        Com::Skip => {
            indent(out, level);
            out.push_str("skip;\n");
        }
        Com::Assign(v, e) => {
            indent(out, level);
            let _ = write!(out, "{v} := ");
            write_aexp(out, e, 0);
            out.push_str(";\n");
        }
        Com::Write(x, e) => {
            indent(out, level);
            let _ = write!(out, "write({x} = ");
            write_aexp(out, e, 0);
            out.push_str(");\n");
        }
        Com::Print(e) => {
            indent(out, level);
            out.push_str("print(");
            write_aexp(out, e, 0);
            out.push_str(");\n");
        }
        Com::Seq(a, b) => {
            write_com(out, a, level);
            write_com(out, b, level);
        }
        Com::If(cond, t, e) => {
            indent(out, level);
            out.push_str("if (");
            write_bexp(out, cond, 0);
            out.push_str(") then {\n");
            write_com(out, t, level + 1);
            indent(out, level);
            if matches!(e.as_ref(), Com::Skip) {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                write_com(out, e, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AExp, Com};
    use crate::ids::{ObjId, TempVar};

    #[test]
    fn renders_sub_and_comparisons() {
        let e = AExp::read("x").sub(AExp::Const(1));
        assert_eq!(aexp_to_string(&e), "read(x) - 1");
        let b = AExp::read("x").ge(AExp::Const(0));
        assert_eq!(bexp_to_string(&b), "!(read(x) < 0)");
    }

    #[test]
    fn renders_precedence_with_parentheses() {
        // (x + 1) * 2
        let e = AExp::read("x").add(AExp::Const(1)).mul(AExp::Const(2));
        assert_eq!(aexp_to_string(&e), "(read(x) + 1) * 2");
        // x + 1 * 2 — no parens needed
        let e2 = AExp::read("x").add(AExp::Const(1).mul(AExp::Const(2)));
        assert_eq!(aexp_to_string(&e2), "read(x) + 1 * 2");
    }

    #[test]
    fn renders_transaction_t1() {
        let t1 = crate::programs::t1();
        let s = transaction_to_string(&t1);
        assert!(s.contains("transaction T1()"));
        assert!(s.contains("if (xh + yh < 10) then {"));
        assert!(s.contains("write(x = xh + 1);"));
        assert!(s.contains("} else {"));
    }

    #[test]
    fn skip_else_branch_is_elided() {
        let c = Com::if_then_else(
            crate::ast::BExp::True,
            Com::Assign(TempVar::new("t"), AExp::Const(1)),
            Com::Skip,
        );
        let s = com_to_string(&c);
        assert!(!s.contains("else"));
    }

    #[test]
    fn write_command_rendering() {
        let c = Com::Write(ObjId::new("y"), AExp::Const(3).neg());
        assert_eq!(com_to_string(&c), "  write(y = -3);\n");
    }
}
