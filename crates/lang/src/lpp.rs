//! The higher-level language **L++** (Section 2.4, Appendix A).
//!
//! `L++` adds bounded arrays and relations with read / update / insert /
//! delete operations and bounded (`foreach`) iteration. It adds no
//! expressive power over `L`: every construct lowers to nested
//! `if-then-else` chains over a fixed set of `L` objects, exactly as
//! described in Appendix A of the paper:
//!
//! * an array `a` of length `n` is stored as the objects `a[0] .. a[n-1]`;
//! * a relation `r(c0, ..., ck)` with at most `m` rows is stored column-wise
//!   as objects `r.c<j>[i]` for row `i`, plus an occupancy flag
//!   `r.__used[i]` that distinguishes used from preallocated-but-free slots;
//! * `foreach` is unrolled over all `m` slots, guarded on the occupancy flag.
//!
//! Evaluating an `L++` transaction is defined as evaluating its lowering,
//! which keeps a single semantics for both languages.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{AExp, BExp, Com, Transaction};
use crate::ids::{ObjId, ParamId, TempVar};

/// A declaration of a bounded array or relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decl {
    /// `array name[len]`
    Array {
        /// Array name.
        name: String,
        /// Number of preallocated slots.
        len: usize,
    },
    /// `relation name(cols...)[max_rows]`
    Relation {
        /// Relation name.
        name: String,
        /// Column names; column 0 is treated as the key by keyed operations.
        cols: Vec<String>,
        /// Number of preallocated row slots.
        max_rows: usize,
    },
}

impl Decl {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            Decl::Array { name, .. } | Decl::Relation { name, .. } => name,
        }
    }
}

/// A schema: the set of declarations visible to a group of transactions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    decls: BTreeMap<String, Decl>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an array declaration.
    pub fn array(mut self, name: impl Into<String>, len: usize) -> Self {
        let name = name.into();
        self.decls.insert(name.clone(), Decl::Array { name, len });
        self
    }

    /// Adds a relation declaration.
    pub fn relation(mut self, name: impl Into<String>, cols: &[&str], max_rows: usize) -> Self {
        let name = name.into();
        self.decls.insert(
            name.clone(),
            Decl::Relation {
                name,
                cols: cols.iter().map(|c| c.to_string()).collect(),
                max_rows,
            },
        );
        self
    }

    /// Looks up a declaration.
    pub fn get(&self, name: &str) -> Option<&Decl> {
        self.decls.get(name)
    }

    /// Iterates over all declarations.
    pub fn decls(&self) -> impl Iterator<Item = &Decl> {
        self.decls.values()
    }

    /// The object id of array slot `a[i]`.
    pub fn array_obj(name: &str, index: usize) -> ObjId {
        ObjId::array_slot(name, index)
    }

    /// The object id of relation cell `r.col[row]`.
    pub fn rel_obj(rel: &str, col: &str, row: usize) -> ObjId {
        ObjId::new(format!("{rel}.{col}[{row}]"))
    }

    /// The object id of the occupancy flag for row `row` of relation `rel`.
    pub fn rel_used_obj(rel: &str, row: usize) -> ObjId {
        ObjId::new(format!("{rel}.__used[{row}]"))
    }
}

/// Errors raised while lowering `L++` to `L`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LowerError {
    /// Referenced an undeclared array or relation.
    Undeclared(String),
    /// Referenced a column that the relation does not have.
    UnknownColumn {
        /// Relation name.
        relation: String,
        /// Offending column name.
        column: String,
    },
    /// Used an array operation on a relation or vice versa.
    KindMismatch(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Undeclared(n) => write!(f, "undeclared array or relation `{n}`"),
            LowerError::UnknownColumn { relation, column } => {
                write!(f, "relation `{relation}` has no column `{column}`")
            }
            LowerError::KindMismatch(n) => {
                write!(f, "`{n}` used with the wrong kind of operation")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// `L++` commands. Plain `L` commands are embedded directly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LppCom {
    /// No effect.
    Skip,
    /// `x̂ := e`.
    Assign(TempVar, AExp),
    /// `write(x = e)` on a scalar object.
    Write(ObjId, AExp),
    /// `print(e)`.
    Print(AExp),
    /// Sequencing.
    Seq(Box<LppCom>, Box<LppCom>),
    /// `if b then c1 else c2`.
    If(BExp, Box<LppCom>, Box<LppCom>),
    /// `x̂ := a[idx]` — dynamic array read.
    ArrayGet {
        /// Destination temporary.
        dst: TempVar,
        /// Array name.
        array: String,
        /// Index expression.
        index: AExp,
    },
    /// `a[idx] := value` — dynamic array write.
    ArrayPut {
        /// Array name.
        array: String,
        /// Index expression.
        index: AExp,
        /// Value expression.
        value: AExp,
    },
    /// `x̂ := r[key].col` — read a column of the row whose key column equals
    /// `key`; yields 0 when no such row exists.
    RelGet {
        /// Destination temporary.
        dst: TempVar,
        /// Relation name.
        relation: String,
        /// Key expression (matched against column 0).
        key: AExp,
        /// Column to read.
        column: String,
    },
    /// `r[key].col := value` — update a column of the matching row.
    RelUpdate {
        /// Relation name.
        relation: String,
        /// Key expression (matched against column 0).
        key: AExp,
        /// Column to update.
        column: String,
        /// New value.
        value: AExp,
    },
    /// `insert r(values...)` — insert into the first free slot.
    RelInsert {
        /// Relation name.
        relation: String,
        /// One value per declared column.
        values: Vec<AExp>,
    },
    /// `delete r[key]` — delete the row whose key column equals `key`.
    RelDelete {
        /// Relation name.
        relation: String,
        /// Key expression (matched against column 0).
        key: AExp,
    },
    /// `foreach row in r { body }` — bounded iteration over occupied rows.
    ///
    /// Inside `body`, the temporary variable `<binder>_<col>` holds the value
    /// of each column of the current row, and `<binder>_row` its slot index.
    ForEach {
        /// Binder prefix for the per-column temporaries.
        binder: String,
        /// Relation name.
        relation: String,
        /// Loop body.
        body: Box<LppCom>,
    },
}

impl LppCom {
    /// Sequencing with `skip` elision.
    pub fn then(self, next: LppCom) -> LppCom {
        match (&self, &next) {
            (LppCom::Skip, _) => next,
            (_, LppCom::Skip) => self,
            _ => LppCom::Seq(Box::new(self), Box::new(next)),
        }
    }

    /// Sequences an iterator of commands.
    pub fn seq_all(cmds: impl IntoIterator<Item = LppCom>) -> LppCom {
        cmds.into_iter().fold(LppCom::Skip, |acc, c| acc.then(c))
    }
}

/// An `L++` transaction: a named command over a schema, with parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LppTransaction {
    /// Transaction name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<ParamId>,
    /// Body.
    pub body: LppCom,
}

impl LppTransaction {
    /// Creates a new `L++` transaction.
    pub fn new(name: impl Into<String>, params: Vec<ParamId>, body: LppCom) -> Self {
        LppTransaction {
            name: name.into(),
            params,
            body,
        }
    }

    /// Lowers the transaction to plain `L` against the given schema.
    pub fn lower(&self, schema: &Schema) -> Result<Transaction, LowerError> {
        let body = lower_com(&self.body, schema, &mut 0)?;
        Ok(Transaction::new(
            self.name.clone(),
            self.params.clone(),
            body,
        ))
    }
}

fn array_len(schema: &Schema, name: &str) -> Result<usize, LowerError> {
    match schema.get(name) {
        Some(Decl::Array { len, .. }) => Ok(*len),
        Some(Decl::Relation { .. }) => Err(LowerError::KindMismatch(name.to_string())),
        None => Err(LowerError::Undeclared(name.to_string())),
    }
}

fn relation_decl<'s>(schema: &'s Schema, name: &str) -> Result<(&'s [String], usize), LowerError> {
    match schema.get(name) {
        Some(Decl::Relation { cols, max_rows, .. }) => Ok((cols.as_slice(), *max_rows)),
        Some(Decl::Array { .. }) => Err(LowerError::KindMismatch(name.to_string())),
        None => Err(LowerError::Undeclared(name.to_string())),
    }
}

fn column_index(cols: &[String], relation: &str, column: &str) -> Result<usize, LowerError> {
    cols.iter()
        .position(|c| c == column)
        .ok_or_else(|| LowerError::UnknownColumn {
            relation: relation.to_string(),
            column: column.to_string(),
        })
}

/// Builds the nested-if chain `if sel = 0 then body(0) else if sel = 1 ...`,
/// with a final `else fallback`.
fn index_dispatch(
    selector: &AExp,
    len: usize,
    mut body: impl FnMut(usize) -> Com,
    fallback: Com,
) -> Com {
    let mut out = fallback;
    for i in (0..len).rev() {
        out = Com::if_then_else(selector.clone().eq(AExp::Const(i as i64)), body(i), out);
    }
    out
}

fn lower_com(c: &LppCom, schema: &Schema, fresh: &mut usize) -> Result<Com, LowerError> {
    Ok(match c {
        LppCom::Skip => Com::Skip,
        LppCom::Assign(v, e) => Com::Assign(v.clone(), e.clone()),
        LppCom::Write(x, e) => Com::Write(x.clone(), e.clone()),
        LppCom::Print(e) => Com::Print(e.clone()),
        LppCom::Seq(a, b) => lower_com(a, schema, fresh)?.then(lower_com(b, schema, fresh)?),
        LppCom::If(b, t, e) => Com::if_then_else(
            b.clone(),
            lower_com(t, schema, fresh)?,
            lower_com(e, schema, fresh)?,
        ),
        LppCom::ArrayGet { dst, array, index } => {
            let len = array_len(schema, array)?;
            index_dispatch(
                index,
                len,
                |i| Com::Assign(dst.clone(), AExp::Read(Schema::array_obj(array, i))),
                Com::Assign(dst.clone(), AExp::Const(0)),
            )
        }
        LppCom::ArrayPut {
            array,
            index,
            value,
        } => {
            let len = array_len(schema, array)?;
            index_dispatch(
                index,
                len,
                |i| Com::Write(Schema::array_obj(array, i), value.clone()),
                Com::Skip,
            )
        }
        LppCom::RelGet {
            dst,
            relation,
            key,
            column,
        } => {
            let (cols, max_rows) = relation_decl(schema, relation)?;
            let _ = column_index(cols, relation, column)?;
            let key_col = &cols[0];
            // Scan rows from last to first so that the first matching
            // occupied row (lowest index) wins.
            let mut out = Com::Assign(dst.clone(), AExp::Const(0));
            for row in (0..max_rows).rev() {
                let used = AExp::Read(Schema::rel_used_obj(relation, row));
                let key_here = AExp::Read(Schema::rel_obj(relation, key_col, row));
                let cond = used.eq(AExp::Const(1)).and(key_here.eq(key.clone()));
                out = Com::if_then_else(
                    cond,
                    Com::Assign(
                        dst.clone(),
                        AExp::Read(Schema::rel_obj(relation, column, row)),
                    ),
                    out,
                );
            }
            out
        }
        LppCom::RelUpdate {
            relation,
            key,
            column,
            value,
        } => {
            let (cols, max_rows) = relation_decl(schema, relation)?;
            let _ = column_index(cols, relation, column)?;
            let key_col = &cols[0];
            let mut out = Com::Skip;
            for row in (0..max_rows).rev() {
                let used = AExp::Read(Schema::rel_used_obj(relation, row));
                let key_here = AExp::Read(Schema::rel_obj(relation, key_col, row));
                let cond = used.eq(AExp::Const(1)).and(key_here.eq(key.clone()));
                out = Com::if_then_else(
                    cond,
                    Com::Write(Schema::rel_obj(relation, column, row), value.clone()),
                    out,
                );
            }
            out
        }
        LppCom::RelInsert { relation, values } => {
            let (cols, max_rows) = relation_decl(schema, relation)?;
            if values.len() != cols.len() {
                return Err(LowerError::UnknownColumn {
                    relation: relation.to_string(),
                    column: format!("<expected {} values, got {}>", cols.len(), values.len()),
                });
            }
            let cols = cols.to_vec();
            // Find the first free slot: nested if over the occupancy flags.
            let mut out = Com::Skip; // relation full: silently drop, as in the
                                     // preallocation scheme of Appendix A.
            for row in (0..max_rows).rev() {
                let used = AExp::Read(Schema::rel_used_obj(relation, row));
                let mut writes: Vec<Com> = cols
                    .iter()
                    .zip(values)
                    .map(|(col, v)| Com::Write(Schema::rel_obj(relation, col, row), v.clone()))
                    .collect();
                writes.push(Com::Write(
                    Schema::rel_used_obj(relation, row),
                    AExp::Const(1),
                ));
                out = Com::if_then_else(used.eq(AExp::Const(0)), Com::seq_all(writes), out);
            }
            out
        }
        LppCom::RelDelete { relation, key } => {
            let (cols, max_rows) = relation_decl(schema, relation)?;
            let key_col = &cols[0];
            let mut out = Com::Skip;
            for row in (0..max_rows).rev() {
                let used = AExp::Read(Schema::rel_used_obj(relation, row));
                let key_here = AExp::Read(Schema::rel_obj(relation, key_col, row));
                let cond = used.eq(AExp::Const(1)).and(key_here.eq(key.clone()));
                out = Com::if_then_else(
                    cond,
                    Com::Write(Schema::rel_used_obj(relation, row), AExp::Const(0)),
                    out,
                );
            }
            out
        }
        LppCom::ForEach {
            binder,
            relation,
            body,
        } => {
            let (cols, max_rows) = relation_decl(schema, relation)?;
            let cols = cols.to_vec();
            *fresh += 1;
            let mut iterations = Vec::with_capacity(max_rows);
            let lowered_body = lower_com(body, schema, fresh)?;
            for row in 0..max_rows {
                let used = AExp::Read(Schema::rel_used_obj(relation, row));
                let mut binds: Vec<Com> = cols
                    .iter()
                    .map(|col| {
                        Com::Assign(
                            TempVar::new(format!("{binder}_{col}")),
                            AExp::Read(Schema::rel_obj(relation, col, row)),
                        )
                    })
                    .collect();
                binds.push(Com::Assign(
                    TempVar::new(format!("{binder}_row")),
                    AExp::Const(row as i64),
                ));
                binds.push(lowered_body.clone());
                iterations.push(Com::if_then_else(
                    used.eq(AExp::Const(1)),
                    Com::seq_all(binds),
                    Com::Skip,
                ));
            }
            Com::seq_all(iterations)
        }
    })
}

/// Helpers for loading an initial [`crate::Database`] that matches a schema.
pub mod populate {
    use super::*;
    use crate::database::Database;

    /// Sets `a[i] = values[i]` for each provided value.
    pub fn array(db: &mut Database, name: &str, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            db.set(Schema::array_obj(name, i), *v);
        }
    }

    /// Inserts each row (one value per declared column) into consecutive
    /// slots of the relation, marking them used.
    pub fn relation(db: &mut Database, schema: &Schema, name: &str, rows: &[Vec<i64>]) {
        let (cols, max_rows) = match schema.get(name) {
            Some(Decl::Relation { cols, max_rows, .. }) => (cols.clone(), *max_rows),
            _ => panic!("`{name}` is not a declared relation"),
        };
        assert!(
            rows.len() <= max_rows,
            "relation `{name}` holds at most {max_rows} rows, got {}",
            rows.len()
        );
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols.len(), "row width mismatch for `{name}`");
            for (col, v) in cols.iter().zip(row) {
                db.set(Schema::rel_obj(name, col, i), *v);
            }
            db.set(Schema::rel_used_obj(name, i), 1);
        }
    }

    /// Reads back the occupied rows of a relation, in slot order.
    pub fn read_relation(db: &Database, schema: &Schema, name: &str) -> Vec<Vec<i64>> {
        let (cols, max_rows) = match schema.get(name) {
            Some(Decl::Relation { cols, max_rows, .. }) => (cols.clone(), *max_rows),
            _ => panic!("`{name}` is not a declared relation"),
        };
        let mut out = Vec::new();
        for i in 0..max_rows {
            if db.get(&Schema::rel_used_obj(name, i)) == 1 {
                out.push(
                    cols.iter()
                        .map(|c| db.get(&Schema::rel_obj(name, c, i)))
                        .collect(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{num, param, read, var};
    use crate::database::Database;
    use crate::eval::Evaluator;

    fn schema() -> Schema {
        Schema::new()
            .array("a", 4)
            .relation("stock", &["itemid", "qty"], 3)
    }

    #[test]
    fn array_get_and_put_dispatch_on_dynamic_index() {
        let txn = LppTransaction::new(
            "bump",
            vec![ParamId::new("i")],
            LppCom::seq_all([
                LppCom::ArrayGet {
                    dst: TempVar::new("v"),
                    array: "a".into(),
                    index: param("i"),
                },
                LppCom::ArrayPut {
                    array: "a".into(),
                    index: param("i"),
                    value: var("v").add(num(10)),
                },
            ]),
        );
        let lowered = txn.lower(&schema()).unwrap();
        let mut db = Database::new();
        populate::array(&mut db, "a", &[1, 2, 3, 4]);
        let out = Evaluator::eval(&lowered, &db, &[2]).unwrap();
        assert_eq!(out.database.get(&Schema::array_obj("a", 2)), 13);
        assert_eq!(out.database.get(&Schema::array_obj("a", 0)), 1);
    }

    #[test]
    fn out_of_bounds_index_falls_back_to_default() {
        let txn = LppTransaction::new(
            "oob",
            vec![ParamId::new("i")],
            LppCom::seq_all([
                LppCom::ArrayGet {
                    dst: TempVar::new("v"),
                    array: "a".into(),
                    index: param("i"),
                },
                LppCom::Print(var("v")),
            ]),
        );
        let lowered = txn.lower(&schema()).unwrap();
        let mut db = Database::new();
        populate::array(&mut db, "a", &[5, 6, 7, 8]);
        let out = Evaluator::eval(&lowered, &db, &[99]).unwrap();
        assert_eq!(out.log, vec![0]);
    }

    #[test]
    fn relation_get_update_insert_delete() {
        let s = schema();
        let mut db = Database::new();
        populate::relation(&mut db, &s, "stock", &[vec![7, 50], vec![9, 20]]);

        // Update item 9's qty to 19.
        let upd = LppTransaction::new(
            "upd",
            vec![],
            LppCom::RelUpdate {
                relation: "stock".into(),
                key: num(9),
                column: "qty".into(),
                value: num(19),
            },
        )
        .lower(&s)
        .unwrap();
        let db = Evaluator::eval(&upd, &db, &[]).unwrap().database;
        assert_eq!(
            populate::read_relation(&db, &s, "stock"),
            vec![vec![7, 50], vec![9, 19]]
        );

        // Read item 7's qty.
        let get = LppTransaction::new(
            "get",
            vec![],
            LppCom::seq_all([
                LppCom::RelGet {
                    dst: TempVar::new("q"),
                    relation: "stock".into(),
                    key: num(7),
                    column: "qty".into(),
                },
                LppCom::Print(var("q")),
            ]),
        )
        .lower(&s)
        .unwrap();
        assert_eq!(Evaluator::eval(&get, &db, &[]).unwrap().log, vec![50]);

        // Insert a third item, filling the relation.
        let ins = LppTransaction::new(
            "ins",
            vec![],
            LppCom::RelInsert {
                relation: "stock".into(),
                values: vec![num(11), num(5)],
            },
        )
        .lower(&s)
        .unwrap();
        let db = Evaluator::eval(&ins, &db, &[]).unwrap().database;
        assert_eq!(
            populate::read_relation(&db, &s, "stock"),
            vec![vec![7, 50], vec![9, 19], vec![11, 5]]
        );

        // Delete item 9; its slot becomes free and is reused by an insert.
        let del = LppTransaction::new(
            "del",
            vec![],
            LppCom::RelDelete {
                relation: "stock".into(),
                key: num(9),
            },
        )
        .lower(&s)
        .unwrap();
        let db = Evaluator::eval(&del, &db, &[]).unwrap().database;
        assert_eq!(
            populate::read_relation(&db, &s, "stock"),
            vec![vec![7, 50], vec![11, 5]]
        );
        let db = Evaluator::eval(&ins, &db, &[]).unwrap().database;
        assert_eq!(
            populate::read_relation(&db, &s, "stock"),
            vec![vec![7, 50], vec![11, 5], vec![11, 5]]
        );
    }

    #[test]
    fn foreach_visits_only_occupied_rows_in_order() {
        let s = schema();
        let mut db = Database::new();
        populate::relation(&mut db, &s, "stock", &[vec![7, 50], vec![9, 20]]);
        let scan = LppTransaction::new(
            "scan",
            vec![],
            LppCom::ForEach {
                binder: "r".into(),
                relation: "stock".into(),
                body: Box::new(LppCom::Print(var("r_qty"))),
            },
        )
        .lower(&s)
        .unwrap();
        assert_eq!(Evaluator::eval(&scan, &db, &[]).unwrap().log, vec![50, 20]);
    }

    #[test]
    fn foreach_can_aggregate_with_a_temp_accumulator() {
        let s = schema();
        let mut db = Database::new();
        populate::relation(&mut db, &s, "stock", &[vec![1, 10], vec![2, 32]]);
        let total = LppTransaction::new(
            "total",
            vec![],
            LppCom::seq_all([
                LppCom::Assign(TempVar::new("sum"), num(0)),
                LppCom::ForEach {
                    binder: "r".into(),
                    relation: "stock".into(),
                    body: Box::new(LppCom::Assign(
                        TempVar::new("sum"),
                        var("sum").add(var("r_qty")),
                    )),
                },
                LppCom::Write(ObjId::new("grand_total"), var("sum")),
            ]),
        )
        .lower(&s)
        .unwrap();
        let out = Evaluator::eval(&total, &db, &[]).unwrap();
        assert_eq!(out.database.get(&ObjId::new("grand_total")), 42);
    }

    #[test]
    fn lowering_errors_are_reported() {
        let txn = LppTransaction::new(
            "bad",
            vec![],
            LppCom::ArrayGet {
                dst: TempVar::new("v"),
                array: "nope".into(),
                index: num(0),
            },
        );
        assert!(matches!(
            txn.lower(&schema()),
            Err(LowerError::Undeclared(_))
        ));

        let txn = LppTransaction::new(
            "bad2",
            vec![],
            LppCom::RelGet {
                dst: TempVar::new("v"),
                relation: "stock".into(),
                key: num(1),
                column: "missing".into(),
            },
        );
        assert!(matches!(
            txn.lower(&schema()),
            Err(LowerError::UnknownColumn { .. })
        ));

        let txn = LppTransaction::new(
            "bad3",
            vec![],
            LppCom::ArrayGet {
                dst: TempVar::new("v"),
                array: "stock".into(),
                index: num(0),
            },
        );
        assert!(matches!(
            txn.lower(&schema()),
            Err(LowerError::KindMismatch(_))
        ));
    }

    #[test]
    fn plain_l_commands_pass_through_unchanged() {
        let txn = LppTransaction::new(
            "plain",
            vec![],
            LppCom::seq_all([
                LppCom::Assign(TempVar::new("t"), read("x").add(num(1))),
                LppCom::Write(ObjId::new("x"), var("t")),
                LppCom::Print(var("t")),
            ]),
        );
        let lowered = txn.lower(&schema()).unwrap();
        let db = Database::from_pairs([("x", 4)]);
        let out = Evaluator::eval(&lowered, &db, &[]).unwrap();
        assert_eq!(out.database.get(&ObjId::new("x")), 5);
        assert_eq!(out.log, vec![5]);
    }
}
