//! Lexer for the concrete syntax of `L` and `L++`.
//!
//! The paper's prototype used an ANTLR-4 generated parser; this repository
//! substitutes a hand-written lexer + recursive-descent parser with no
//! external dependencies.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A lexical token with its source position (byte offset).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenKind {
    /// An integer literal.
    Int(i64),
    /// An identifier (variable, object, parameter or relation name).
    Ident(String),
    /// A keyword.
    Keyword(Keyword),
    /// `:=`
    Assign,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `.` (separates the components of a structured array index, e.g.
    /// `stock[0.1.2]`; dots *inside* an identifier are part of the
    /// identifier itself).
    Dot,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Keyword {
    Transaction,
    If,
    Then,
    Else,
    Skip,
    Write,
    Print,
    Read,
    True,
    False,
    // L++ extensions
    Array,
    Relation,
    Foreach,
    In,
    Get,
    Put,
    Insert,
    Delete,
    Size,
}

impl Keyword {
    fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "transaction" => Keyword::Transaction,
            "if" => Keyword::If,
            "then" => Keyword::Then,
            "else" => Keyword::Else,
            "skip" => Keyword::Skip,
            "write" => Keyword::Write,
            "print" => Keyword::Print,
            "read" => Keyword::Read,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "array" => Keyword::Array,
            "relation" => Keyword::Relation,
            "foreach" => Keyword::Foreach,
            "in" => Keyword::In,
            "get" => Keyword::Get,
            "put" => Keyword::Put,
            "insert" => Keyword::Insert,
            "delete" => Keyword::Delete,
            "size" => Keyword::Size,
            _ => return None,
        })
    }
}

/// Errors raised by the lexer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input. `//` line comments and whitespace are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    offset: start,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    offset: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' | '@' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                let text = &input[start..i];
                let kind = match Keyword::from_ident(text) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Assign,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `:=`".to_string(),
                        offset: i,
                    });
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    offset: i,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    offset: i,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: i,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: i,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                // Accept both `=` and `==` for equality.
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i - 1,
                });
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Bang,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: i,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    tokens.push(Token {
                        kind: TokenKind::AndAnd,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `&&`".to_string(),
                        offset: i,
                    });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(Token {
                        kind: TokenKind::OrOr,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `||`".to_string(),
                        offset: i,
                    });
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    offset: i,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        let ks = kinds("xh := read(x);");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("xh".into()),
                TokenKind::Assign,
                TokenKind::Keyword(Keyword::Read),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        let ks = kinds("< <= > >= = == !=");
        assert_eq!(
            ks,
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let ks = kinds("x // this is x\n  + 1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_recognised() {
        let ks = kinds("if then else skip write print true false foreach relation");
        assert!(ks
            .iter()
            .take(10)
            .all(|k| matches!(k, TokenKind::Keyword(_))));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("x $ y").is_err());
        assert!(tokenize("x : y").is_err());
        assert!(tokenize("a & b").is_err());
    }

    #[test]
    fn integer_out_of_range_is_reported() {
        let err = tokenize("99999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    /// Renders a token back to the surface syntax it was lexed from.
    fn lexeme(kind: &TokenKind) -> String {
        match kind {
            TokenKind::Int(n) => n.to_string(),
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Keyword(k) => format!("{k:?}").to_lowercase(),
            TokenKind::Assign => ":=".into(),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::LBrace => "{".into(),
            TokenKind::RBrace => "}".into(),
            TokenKind::LBracket => "[".into(),
            TokenKind::RBracket => "]".into(),
            TokenKind::Semi => ";".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::Eq => "=".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::Le => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::Ge => ">=".into(),
            TokenKind::Ne => "!=".into(),
            TokenKind::Plus => "+".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Star => "*".into(),
            TokenKind::AndAnd => "&&".into(),
            TokenKind::OrOr => "||".into(),
            TokenKind::Bang => "!".into(),
            TokenKind::Dot => ".".into(),
            TokenKind::Eof => String::new(),
        }
    }

    #[test]
    fn token_stream_round_trips_through_rendered_lexemes() {
        let src = r#"
            transaction Order(itemid, amount) {
              qty := read(stock[itemid]);
              if (qty - amount >= 0 && !(amount <= 0)) then {
                write(stock[itemid] = qty - amount);
              } else {
                print(-1);
              };
              count := size(orders) * 2 + 1;
            }
        "#;
        let original = kinds(src);
        let rendered: String = original.iter().map(lexeme).collect::<Vec<_>>().join(" ");
        assert_eq!(
            kinds(&rendered),
            original,
            "re-lexing the rendered lexemes must reproduce the token stream"
        );
    }

    #[test]
    fn offsets_point_at_token_starts() {
        let src = "ab := 12;";
        let tokens = tokenize(src).unwrap();
        for t in &tokens {
            if t.kind != TokenKind::Eof {
                let head = lexeme(&t.kind);
                assert!(
                    src[t.offset..].starts_with(head.chars().next().unwrap()),
                    "token {:?} offset {} does not point at its first character",
                    t.kind,
                    t.offset
                );
            }
        }
        assert_eq!(tokens.last().unwrap().offset, src.len());
    }

    #[test]
    fn identifiers_may_contain_dots_and_at() {
        let ks = kinds("stock.qty @itemid");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("stock.qty".into()),
                TokenKind::Ident("@itemid".into()),
                TokenKind::Eof,
            ]
        );
    }
}
