//! Ergonomic builders for constructing `L` transactions programmatically.
//!
//! The paper's examples and the workload crates construct transactions in
//! code; the builder keeps those definitions readable without going through
//! the textual parser.

use crate::ast::{AExp, BExp, Com, Transaction};
use crate::ids::{ObjId, ParamId, TempVar};

/// Shorthand for an integer constant expression.
pub fn num(n: i64) -> AExp {
    AExp::Const(n)
}

/// Shorthand for `read(x)`.
pub fn read(x: impl Into<ObjId>) -> AExp {
    AExp::Read(x.into())
}

/// Shorthand for a temporary-variable reference.
pub fn var(v: impl Into<TempVar>) -> AExp {
    AExp::Var(v.into())
}

/// Shorthand for a parameter reference.
pub fn param(p: impl Into<ParamId>) -> AExp {
    AExp::Param(p.into())
}

/// Shorthand for `x̂ := e`.
pub fn assign(v: impl Into<TempVar>, e: AExp) -> Com {
    Com::Assign(v.into(), e)
}

/// Shorthand for `write(x = e)`.
pub fn write(x: impl Into<ObjId>, e: AExp) -> Com {
    Com::Write(x.into(), e)
}

/// Shorthand for `print(e)`.
pub fn print(e: AExp) -> Com {
    Com::Print(e)
}

/// Shorthand for `if b then t else e`.
pub fn ite(b: BExp, t: Com, e: Com) -> Com {
    Com::if_then_else(b, t, e)
}

/// Shorthand for `if b then t` (else skip).
pub fn when(b: BExp, t: Com) -> Com {
    Com::if_then_else(b, t, Com::Skip)
}

/// Sequences a list of commands.
pub fn seq(cmds: impl IntoIterator<Item = Com>) -> Com {
    Com::seq_all(cmds)
}

/// Builder for a whole transaction.
#[derive(Debug, Default)]
pub struct TxnBuilder {
    name: String,
    params: Vec<ParamId>,
    cmds: Vec<Com>,
}

impl TxnBuilder {
    /// Starts a new transaction with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TxnBuilder {
            name: name.into(),
            params: Vec::new(),
            cmds: Vec::new(),
        }
    }

    /// Declares a formal parameter and returns an expression referring to it.
    pub fn param(&mut self, name: impl Into<ParamId>) -> AExp {
        let id = name.into();
        self.params.push(id.clone());
        AExp::Param(id)
    }

    /// Appends a command to the body.
    pub fn push(&mut self, c: Com) -> &mut Self {
        self.cmds.push(c);
        self
    }

    /// Appends several commands to the body.
    pub fn extend(&mut self, cmds: impl IntoIterator<Item = Com>) -> &mut Self {
        self.cmds.extend(cmds);
        self
    }

    /// Finishes the builder, producing the [`Transaction`].
    pub fn build(self) -> Transaction {
        Transaction::new(self.name, self.params, Com::seq_all(self.cmds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::Evaluator;

    #[test]
    fn builder_constructs_runnable_transaction() {
        let mut b = TxnBuilder::new("incr");
        let p = b.param("amount");
        b.push(assign("cur", read("counter")));
        b.push(write("counter", var("cur").add(p)));
        b.push(print(var("cur")));
        let txn = b.build();

        assert_eq!(txn.params.len(), 1);
        let db = Database::from_pairs([("counter", 5)]);
        let out = Evaluator::eval(&txn, &db, &[3]).unwrap();
        assert_eq!(out.database.get(&"counter".into()), 8);
        assert_eq!(out.log, vec![5]);
    }

    #[test]
    fn when_produces_skip_else() {
        let c = when(read("x").gt(num(0)), write("y", num(1)));
        match c {
            Com::If(_, _, e) => assert_eq!(*e, Com::Skip),
            _ => panic!("expected if"),
        }
    }

    #[test]
    fn seq_elides_empty() {
        assert_eq!(seq([]), Com::Skip);
        assert_eq!(seq([Com::Skip, Com::Skip]), Com::Skip);
    }
}
