//! Interned identifier types for database objects, temporary variables and
//! transaction parameters.
//!
//! The paper distinguishes three name spaces:
//!
//! * database **objects** `x, y, z, ...` (the only state visible across
//!   transactions),
//! * **temporary variables** `x̂, ŷ, ...` local to a transaction,
//! * integer **parameters** `p, p0, ...` supplied at invocation time.
//!
//! All three are cheap-to-clone wrappers around reference-counted strings so
//! they can be used freely as map keys throughout the analysis and protocol
//! layers.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a new identifier from anything string-like.
            pub fn new(name: impl AsRef<str>) -> Self {
                Self(Arc::from(name.as_ref()))
            }

            /// Returns the identifier text.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self::new(s)
            }
        }
    };
}

id_type!(
    /// The name of a database object (`Obj` in the paper).
    ///
    /// Objects hold integer values; objects not present in a database have
    /// the default value `0`.
    ObjId
);

id_type!(
    /// A temporary program variable (`x̂` in the paper), local to a single
    /// transaction execution and never stored in the database.
    TempVar
);

id_type!(
    /// A formal integer parameter of a transaction.
    ParamId
);

impl ObjId {
    /// Builds the object id used to store slot `index` of the bounded array
    /// `base` (Appendix A: an array `a` of length `n` is the object set
    /// `{a0, a1, ..., a_{n-1}}`).
    pub fn array_slot(base: &str, index: usize) -> Self {
        Self::new(format!("{base}[{index}]"))
    }

    /// Builds the per-site delta object `d<x><site>` introduced by the
    /// remote-write transformation of Appendix B.
    pub fn delta(base: &ObjId, site: usize) -> Self {
        Self::new(format!("δ{}@{}", base.as_str(), site))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_compare_by_content() {
        assert_eq!(ObjId::new("x"), ObjId::from("x"));
        assert_ne!(ObjId::new("x"), ObjId::new("y"));
        assert_eq!(TempVar::new("t").as_str(), "t");
    }

    #[test]
    fn ids_hash_by_content() {
        let mut set = HashSet::new();
        set.insert(ObjId::new("x"));
        set.insert(ObjId::new("x"));
        set.insert(ObjId::new("y"));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_plain_name() {
        assert_eq!(ObjId::new("stock").to_string(), "stock");
        assert_eq!(ParamId::new("itemid").to_string(), "itemid");
    }

    #[test]
    fn array_slot_and_delta_naming() {
        let a3 = ObjId::array_slot("a", 3);
        assert_eq!(a3.as_str(), "a[3]");
        let d = ObjId::delta(&ObjId::new("x"), 2);
        assert_eq!(d.as_str(), "δx@2");
        assert_ne!(ObjId::delta(&ObjId::new("x"), 1), d);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [ObjId::new("b"), ObjId::new("a"), ObjId::new("c")];
        v.sort();
        let names: Vec<_> = v.iter().map(|o| o.as_str().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
