//! Deterministic evaluation of `L` transactions (Definition 2.1).
//!
//! `Eval(T, D)` produces an updated database `D'` and a log `G'` of values
//! printed during execution. Evaluation is deterministic: `D'` and `G'` are
//! uniquely determined by `T`, its parameter bindings and `D`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ast::{AExp, BExp, Com, Transaction};
use crate::database::Database;
use crate::ids::{ObjId, ParamId, TempVar};

/// A binding of transaction parameters to concrete integers.
pub type ParamBinding = BTreeMap<ParamId, i64>;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalError {
    /// A temporary variable was read before being assigned.
    UnboundTempVar(String),
    /// A parameter was referenced but not supplied.
    UnboundParam(String),
    /// Arithmetic overflowed 64-bit signed range.
    Overflow,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundTempVar(v) => write!(f, "unbound temporary variable `{v}`"),
            EvalError::UnboundParam(p) => write!(f, "unbound parameter `{p}`"),
            EvalError::Overflow => write!(f, "arithmetic overflow during evaluation"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The observable outcome of evaluating a transaction: the updated database
/// and the print log, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// The database after the transaction's writes.
    pub database: Database,
    /// The values printed, in program order.
    pub log: Vec<i64>,
    /// The objects actually written (with their final values) — useful for
    /// the protocol layer, which broadcasts updated objects at cleanup.
    pub writes: BTreeMap<ObjId, i64>,
}

/// Evaluator for `L` transactions. A fresh evaluator is cheap to construct;
/// it owns only the scratch state for a single run.
#[derive(Debug, Default)]
pub struct Evaluator {
    temps: BTreeMap<TempVar, i64>,
    params: ParamBinding,
    log: Vec<i64>,
    writes: BTreeMap<ObjId, i64>,
}

impl Evaluator {
    /// Creates an evaluator with no parameter bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates transaction `txn` on database `db` with positional
    /// arguments `args` (must match the transaction's parameter list).
    pub fn eval(txn: &Transaction, db: &Database, args: &[i64]) -> Result<EvalOutcome, EvalError> {
        if args.len() != txn.params.len() {
            return Err(EvalError::UnboundParam(format!(
                "{} expects {} arguments, got {}",
                txn.name,
                txn.params.len(),
                args.len()
            )));
        }
        let params: ParamBinding = txn
            .params
            .iter()
            .cloned()
            .zip(args.iter().copied())
            .collect();
        Self::eval_with_bindings(txn, db, params)
    }

    /// Evaluates with an explicit parameter binding map.
    pub fn eval_with_bindings(
        txn: &Transaction,
        db: &Database,
        params: ParamBinding,
    ) -> Result<EvalOutcome, EvalError> {
        let mut ev = Evaluator {
            params,
            ..Default::default()
        };
        let mut working = db.clone();
        ev.run_com(&txn.body, &mut working)?;
        Ok(EvalOutcome {
            database: working,
            log: ev.log,
            writes: ev.writes,
        })
    }

    /// Evaluates an arithmetic expression against the current state.
    fn eval_aexp(&self, e: &AExp, db: &Database) -> Result<i64, EvalError> {
        match e {
            AExp::Const(n) => Ok(*n),
            AExp::Param(p) => self
                .params
                .get(p)
                .copied()
                .ok_or_else(|| EvalError::UnboundParam(p.to_string())),
            AExp::Var(v) => self
                .temps
                .get(v)
                .copied()
                .ok_or_else(|| EvalError::UnboundTempVar(v.to_string())),
            AExp::Read(x) => Ok(db.get(x)),
            AExp::Add(a, b) => self
                .eval_aexp(a, db)?
                .checked_add(self.eval_aexp(b, db)?)
                .ok_or(EvalError::Overflow),
            AExp::Mul(a, b) => self
                .eval_aexp(a, db)?
                .checked_mul(self.eval_aexp(b, db)?)
                .ok_or(EvalError::Overflow),
            AExp::Neg(a) => self
                .eval_aexp(a, db)?
                .checked_neg()
                .ok_or(EvalError::Overflow),
        }
    }

    /// Evaluates a boolean expression against the current state.
    fn eval_bexp(&self, b: &BExp, db: &Database) -> Result<bool, EvalError> {
        match b {
            BExp::True => Ok(true),
            BExp::False => Ok(false),
            BExp::Cmp(a, op, c) => Ok(op.eval(self.eval_aexp(a, db)?, self.eval_aexp(c, db)?)),
            BExp::And(a, c) => Ok(self.eval_bexp(a, db)? && self.eval_bexp(c, db)?),
            BExp::Not(a) => Ok(!self.eval_bexp(a, db)?),
        }
    }

    fn run_com(&mut self, c: &Com, db: &mut Database) -> Result<(), EvalError> {
        match c {
            Com::Skip => Ok(()),
            Com::Assign(v, e) => {
                let value = self.eval_aexp(e, db)?;
                self.temps.insert(v.clone(), value);
                Ok(())
            }
            Com::Write(x, e) => {
                let value = self.eval_aexp(e, db)?;
                db.set(x.clone(), value);
                self.writes.insert(x.clone(), value);
                Ok(())
            }
            Com::Print(e) => {
                let value = self.eval_aexp(e, db)?;
                self.log.push(value);
                Ok(())
            }
            Com::Seq(a, b) => {
                self.run_com(a, db)?;
                self.run_com(b, db)
            }
            Com::If(cond, t, e) => {
                if self.eval_bexp(cond, db)? {
                    self.run_com(t, db)
                } else {
                    self.run_com(e, db)
                }
            }
        }
    }

    /// Evaluates a closed boolean formula (no temporary variables or
    /// parameters) against a database. Useful for checking symbolic-table
    /// guards and treaties against concrete states.
    pub fn eval_closed_bexp(b: &BExp, db: &Database) -> Result<bool, EvalError> {
        let ev = Evaluator::default();
        ev.eval_bexp(b, db)
    }

    /// Evaluates a closed arithmetic expression against a database.
    pub fn eval_closed_aexp(e: &AExp, db: &Database) -> Result<i64, EvalError> {
        let ev = Evaluator::default();
        ev.eval_aexp(e, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AExp, Com};

    fn write(x: &str, e: AExp) -> Com {
        Com::Write(ObjId::new(x), e)
    }

    #[test]
    fn straight_line_evaluation() {
        // x̂ := read(x); write(y = x̂ + 1); print(x̂)
        let txn = Transaction::simple(
            "t",
            Com::Assign(TempVar::new("xh"), AExp::read("x"))
                .then(write("y", AExp::var("xh").add(AExp::Const(1))))
                .then(Com::Print(AExp::var("xh"))),
        );
        let db = Database::from_pairs([("x", 10)]);
        let out = Evaluator::eval(&txn, &db, &[]).unwrap();
        assert_eq!(out.database.get(&ObjId::new("y")), 11);
        assert_eq!(out.log, vec![10]);
        assert_eq!(out.writes.get(&ObjId::new("y")), Some(&11));
    }

    #[test]
    fn t1_from_figure_3_takes_correct_branch() {
        let t1 = crate::programs::t1();
        // x + y < 10: increments x
        let db = Database::from_pairs([("x", 3), ("y", 4)]);
        let out = Evaluator::eval(&t1, &db, &[]).unwrap();
        assert_eq!(out.database.get(&ObjId::new("x")), 4);
        // x + y >= 10: decrements x
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        let out = Evaluator::eval(&t1, &db, &[]).unwrap();
        assert_eq!(out.database.get(&ObjId::new("x")), 9);
    }

    #[test]
    fn unbound_temp_var_is_an_error() {
        let txn = Transaction::simple("t", write("x", AExp::var("nope")));
        let err = Evaluator::eval(&txn, &Database::new(), &[]).unwrap_err();
        assert!(matches!(err, EvalError::UnboundTempVar(_)));
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let txn = Transaction::new("t", vec![ParamId::new("p")], write("x", AExp::param("p")));
        let err = Evaluator::eval(&txn, &Database::new(), &[]).unwrap_err();
        assert!(matches!(err, EvalError::UnboundParam(_)));
        let ok = Evaluator::eval(&txn, &Database::new(), &[7]).unwrap();
        assert_eq!(ok.database.get(&ObjId::new("x")), 7);
    }

    #[test]
    fn parameters_bind_positionally() {
        let txn = Transaction::new(
            "t",
            vec![ParamId::new("a"), ParamId::new("b")],
            write("x", AExp::param("a").sub(AExp::param("b"))),
        );
        let out = Evaluator::eval(&txn, &Database::new(), &[10, 4]).unwrap();
        assert_eq!(out.database.get(&ObjId::new("x")), 6);
    }

    #[test]
    fn overflow_is_detected() {
        let txn = Transaction::simple("t", write("x", AExp::Const(i64::MAX).add(AExp::Const(1))));
        let err = Evaluator::eval(&txn, &Database::new(), &[]).unwrap_err();
        assert_eq!(err, EvalError::Overflow);
    }

    #[test]
    fn instantiation_agrees_with_parameter_binding() {
        let txn = crate::programs::micro_order();
        let db = Database::from_pairs([("stock[7]", 5)]);
        let by_args = Evaluator::eval(&txn, &db, &[7]).unwrap();
        let closed = txn.instantiate(&[7]);
        let by_inst = Evaluator::eval(&closed, &db, &[]).unwrap();
        assert_eq!(by_args.database, by_inst.database);
        assert_eq!(by_args.log, by_inst.log);
    }

    #[test]
    fn closed_formula_evaluation() {
        let db = Database::from_pairs([("x", 10), ("y", 13)]);
        let f = AExp::read("x").add(AExp::read("y")).ge(AExp::Const(20));
        assert!(Evaluator::eval_closed_bexp(&f, &db).unwrap());
        let g = AExp::read("x").add(AExp::read("y")).lt(AExp::Const(20));
        assert!(!Evaluator::eval_closed_bexp(&g, &db).unwrap());
    }
}
