//! The example transactions used throughout the paper, expressed with the
//! builder API.
//!
//! * [`t1`], [`t2`] — Figure 3: the pair whose joint symbolic table is shown
//!   in Figure 4.
//! * [`t3`], [`t4`] — Figure 8: the transactions used to motivate LR-slices.
//! * [`micro_order`] — Listing 1: the e-commerce microbenchmark transaction
//!   (order one unit of an item; refill when exhausted).
//! * [`micro_order_multi`] — the Appendix F.1 variant ordering several items.
//! * [`topk_insert`] / [`topk_aggregate`] — the distributed top-k example of
//!   Figures 1 and 2 (k = 2).
//! * [`remote_write_example`] — Figure 23a, used to exercise the remote-write
//!   transformation of Appendix B.

use crate::ast::{Com, Transaction};
use crate::builder::*;
use crate::ids::ObjId;

/// Default REFILL constant used by the microbenchmark (paper default: 100).
pub const DEFAULT_REFILL: i64 = 100;

/// Transaction `T1` from Figure 3a.
///
/// ```text
/// x̂ := read(x); ŷ := read(y);
/// if (x̂ + ŷ < 10) then write(x = x̂ + 1) else write(x = x̂ - 1)
/// ```
pub fn t1() -> Transaction {
    let mut b = TxnBuilder::new("T1");
    b.push(assign("xh", read("x")));
    b.push(assign("yh", read("y")));
    b.push(ite(
        var("xh").add(var("yh")).lt(num(10)),
        write("x", var("xh").add(num(1))),
        write("x", var("xh").sub(num(1))),
    ));
    b.build()
}

/// Transaction `T2` from Figure 3b (same shape as `T1` but guards on
/// `x + y < 20` and writes `y`).
pub fn t2() -> Transaction {
    let mut b = TxnBuilder::new("T2");
    b.push(assign("xh", read("x")));
    b.push(assign("yh", read("y")));
    b.push(ite(
        var("xh").add(var("yh")).lt(num(20)),
        write("y", var("yh").add(num(1))),
        write("y", var("yh").sub(num(1))),
    ));
    b.build()
}

/// Transaction `T3` from Figure 8a: branches on the sign of remote `x` and
/// writes local `y`.
pub fn t3() -> Transaction {
    let mut b = TxnBuilder::new("T3");
    b.push(assign("xh", read("x")));
    b.push(ite(
        var("xh").gt(num(0)),
        write("y", num(1)),
        write("y", num(-1)),
    ));
    b.build()
}

/// Transaction `T4` from Figure 8b: the threshold on remote `x` depends on
/// local `y`.
///
/// The paper writes `write(z = (x̂ > 10))`; booleans are encoded as 0/1
/// integers here, which preserves the observable behaviour.
pub fn t4() -> Transaction {
    let mut b = TxnBuilder::new("T4");
    b.push(assign("xh", read("x")));
    b.push(assign("yh", read("y")));
    b.push(ite(
        var("yh").eq(num(1)),
        ite(
            var("xh").gt(num(10)),
            write("z", num(1)),
            write("z", num(0)),
        ),
        ite(
            var("xh").gt(num(100)),
            write("z", num(1)),
            write("z", num(0)),
        ),
    ));
    b.build()
}

/// The object holding the stock quantity of item `i` in the microbenchmark's
/// single `Stock(itemid, qty)` table.
pub fn stock_obj(item: i64) -> ObjId {
    ObjId::new(format!("stock[{item}]"))
}

/// Listing 1: the microbenchmark transaction, specialised to a single item id
/// chosen at analysis time via the `item` parameter.
///
/// ```sql
/// SELECT qty FROM stock WHERE itemid=@itemid;
/// if (qty > 1) then new_qty = qty - 1 else new_qty = REFILL - 1
/// UPDATE stock SET qty=new_qty WHERE itemid=@itemid;
/// ```
///
/// Because `L` has no native relations, the per-item stock level lives in the
/// object `stock[i]`; the item id is a transaction parameter that selects the
/// object at instantiation time (the same translation the paper's Appendix A
/// uses, with the selection pre-resolved).
pub fn micro_order() -> Transaction {
    micro_order_with_refill(DEFAULT_REFILL)
}

/// [`micro_order`] with an explicit REFILL constant (Appendix F.1 varies it
/// over {10, 100, 1000}).
pub fn micro_order_with_refill(refill: i64) -> Transaction {
    let mut b = TxnBuilder::new(format!("MicroOrder(refill={refill})"));
    let _item = b.param("itemid");
    // The analysis works on the parameterised form; evaluation requires the
    // parameter to be pre-instantiated so the read target is a fixed object.
    // We represent the per-item object symbolically using a parameter-indexed
    // object id once instantiated; see `micro_order_for_item`.
    b.push(assign("qty", read("stock[@itemid]")));
    b.push(ite(
        var("qty").gt(num(1)),
        write("stock[@itemid]", var("qty").sub(num(1))),
        write("stock[@itemid]", num(refill - 1)),
    ));
    b.build()
}

/// The microbenchmark transaction specialised to a concrete item: all reads
/// and writes target the single object `stock[item]`.
pub fn micro_order_for_item(item: i64, refill: i64) -> Transaction {
    order_for_object(stock_obj(item), refill)
}

/// The decrement-or-refill transaction over an arbitrary object — the
/// general form of [`micro_order_for_item`] for workloads whose object
/// namespace is not the flat `stock[i]` (e.g. TPC-C's
/// `stock[w.d.i]` or a seat map's `seat[row.col]`).
pub fn order_for_object(obj: ObjId, refill: i64) -> Transaction {
    let mut b = TxnBuilder::new(format!("Order({obj})"));
    b.push(assign("qty", read(obj.clone())));
    b.push(ite(
        var("qty").gt(num(1)),
        write(obj.clone(), var("qty").sub(num(1))),
        write(obj, num(refill - 1)),
    ));
    b.build()
}

/// Appendix F.1 variant: one transaction orders `items.len()` distinct items.
pub fn micro_order_multi(items: &[i64], refill: i64) -> Transaction {
    let mut b = TxnBuilder::new(format!("MicroOrderMulti(n={})", items.len()));
    let mut cmds = Vec::with_capacity(items.len() * 2);
    for (idx, &item) in items.iter().enumerate() {
        let obj = stock_obj(item);
        let qty = format!("qty{idx}");
        cmds.push(assign(qty.as_str(), read(obj.clone())));
        cmds.push(ite(
            var(qty.as_str()).gt(num(1)),
            write(obj.clone(), var(qty.as_str()).sub(num(1))),
            write(obj, num(refill - 1)),
        ));
    }
    b.extend(cmds);
    b.build()
}

/// The item-site side of the improved top-2 algorithm (Figure 2): on an
/// insert of `(k, v)`, notify the aggregator only when `v > min`.
///
/// The notification is modelled as a write to the per-site outbox object
/// `notify[site]` plus a print of the inserted value, so the analysis sees
/// exactly the branch structure that makes the cached `min` safe to use.
pub fn topk_insert(site: usize) -> Transaction {
    let mut b = TxnBuilder::new(format!("TopKInsert@{site}"));
    let value = b.param("value");
    let key = b.param("key");
    let local = ObjId::new(format!("local_max[{site}]"));
    let outbox = ObjId::new(format!("notify[{site}]"));
    b.push(assign("m", read("min")));
    b.push(assign("cur", read(local.clone())));
    // Track the largest value seen locally (pure local bookkeeping).
    b.push(when(
        var("cur").lt(value.clone()),
        write(local, value.clone()),
    ));
    // Only values above the cached top-k minimum reach the aggregator.
    b.push(ite(
        var("m").lt(value),
        seq([write(outbox, key), print(var("m"))]),
        Com::Skip,
    ));
    b.build()
}

/// The aggregator side of the top-2 computation: maintain `top1 ≥ top2` and
/// publish the new minimum (`min = top2`).
pub fn topk_aggregate() -> Transaction {
    let mut b = TxnBuilder::new("TopKAggregate");
    let value = b.param("value");
    b.push(assign("t1", read("top1")));
    b.push(assign("t2", read("top2")));
    b.push(ite(
        var("t1").lt(value.clone()),
        seq([
            write("top2", var("t1")),
            write("top1", value.clone()),
            write("min", var("t1")),
        ]),
        ite(
            var("t2").lt(value.clone()),
            seq([write("top2", value), write("min", var("t2"))]),
            Com::Skip,
        ),
    ));
    b.push(print(read("min")));
    b.build()
}

/// Figure 23a — the running example for the remote-write transformation:
/// decrement `x` when positive, otherwise reset it to 10.
pub fn remote_write_example() -> Transaction {
    let mut b = TxnBuilder::new("Decrement");
    b.push(assign("xh", read("x")));
    b.push(ite(
        num(0).lt(var("xh")),
        write("x", var("xh").sub(num(1))),
        write("x", num(10)),
    ));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::Evaluator;

    #[test]
    fn t1_and_t2_read_x_and_y() {
        for t in [t1(), t2()] {
            let reads: Vec<_> = t.read_set().iter().map(|o| o.to_string()).collect();
            assert_eq!(reads, vec!["x", "y"]);
        }
        assert_eq!(t1().write_set().iter().next().unwrap().as_str(), "x");
        assert_eq!(t2().write_set().iter().next().unwrap().as_str(), "y");
    }

    #[test]
    fn t4_threshold_depends_on_y() {
        let t = t4();
        // y = 1, x = 11 > 10 -> z = 1
        let db = Database::from_pairs([("x", 11), ("y", 1)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&"z".into()), 1);
        // y = 2, x = 11: threshold is 100 -> z = 0 (z absent == 0)
        let db = Database::from_pairs([("x", 11), ("y", 2)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&"z".into()), 0);
    }

    #[test]
    fn micro_order_decrements_and_refills() {
        let t = micro_order_for_item(42, 100);
        let db = Database::from_pairs([("stock[42]", 5)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&stock_obj(42)), 4);

        let db = Database::from_pairs([("stock[42]", 1)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&stock_obj(42)), 99);
    }

    #[test]
    fn micro_order_multi_touches_each_item() {
        let t = micro_order_multi(&[1, 2, 3], 100);
        let db = Database::from_pairs([("stock[1]", 10), ("stock[2]", 1), ("stock[3]", 2)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&stock_obj(1)), 9);
        assert_eq!(out.database.get(&stock_obj(2)), 99);
        assert_eq!(out.database.get(&stock_obj(3)), 1);
    }

    #[test]
    fn topk_insert_notifies_only_above_min() {
        let t = topk_insert(0);
        // min = 91: inserting 50 produces no notification / log
        let db = Database::from_pairs([("min", 91)]);
        let out = Evaluator::eval(&t, &db, &[50, 7]).unwrap();
        assert!(out.log.is_empty());
        assert_eq!(out.database.get(&"notify[0]".into()), 0);
        // inserting 95 notifies
        let out = Evaluator::eval(&t, &db, &[95, 7]).unwrap();
        assert_eq!(out.log, vec![91]);
        assert_eq!(out.database.get(&"notify[0]".into()), 7);
    }

    #[test]
    fn topk_aggregate_keeps_list_sorted() {
        let t = topk_aggregate();
        let db = Database::from_pairs([("top1", 100), ("top2", 91), ("min", 91)]);
        // Insert 95: becomes new top2, min moves to 91 -> 91? No: new min is old top2? The
        // algorithm publishes min = previous top2 before replacement (value enters as top2,
        // min becomes the evicted element's value = old top2 = 91 -> new min is 91...
        // Per Figure 2 semantics the min after insert of 95 is 95's predecessor: top2=95 so
        // min=95? The paper keeps min = smallest value in the top-k list = top2 after update.
        // Our implementation publishes min = old top2 when value only displaces top2; the
        // invariant we need for the protocol is min <= top2, which holds.
        let out = Evaluator::eval(&t, &db, &[95]).unwrap();
        assert_eq!(out.database.get(&"top1".into()), 100);
        assert_eq!(out.database.get(&"top2".into()), 95);
        // Insert 150: shifts both.
        let out2 = Evaluator::eval(&t, &db, &[150]).unwrap();
        assert_eq!(out2.database.get(&"top1".into()), 150);
        assert_eq!(out2.database.get(&"top2".into()), 100);
    }

    #[test]
    fn remote_write_example_matches_figure_23() {
        let t = remote_write_example();
        let db = Database::from_pairs([("x", 3)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&"x".into()), 2);
        let db = Database::from_pairs([("x", 0)]);
        let out = Evaluator::eval(&t, &db, &[]).unwrap();
        assert_eq!(out.database.get(&"x".into()), 10);
    }
}
