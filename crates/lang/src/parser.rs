//! Recursive-descent parser for the concrete syntax of `L`.
//!
//! The grammar mirrors Figure 5 with conventional surface syntax:
//!
//! ```text
//! program     := transaction*
//! transaction := "transaction" NAME "(" params? ")" "{" stmt* "}"
//! stmt        := "skip" ";"
//!              | IDENT ":=" aexp ";"
//!              | "write" "(" obj "=" aexp ")" ";"
//!              | "print" "(" aexp ")" ";"
//!              | "if" "(" bexp ")" "then" block ("else" block)?
//! block       := "{" stmt* "}"
//! aexp        := term (("+" | "-") term)*
//! term        := factor ("*" factor)*
//! factor      := INT | "-" factor | "(" aexp ")" | "read" "(" obj ")" | IDENT
//! bexp        := bterm ("||" bterm)*
//! bterm       := bfactor ("&&" bfactor)*
//! bfactor     := "!" bfactor | "true" | "false" | "(" bexp ")" | aexp cmp aexp
//! cmp         := "<" | "<=" | ">" | ">=" | "=" | "!="
//! obj         := IDENT ("[" INT "]")?
//! ```
//!
//! Identifiers appearing in expressions denote the transaction's declared
//! parameters when they match one, and temporary variables otherwise.
//! Database objects only ever appear inside `read(...)` / `write(... = ...)`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{AExp, BExp, CmpOp, Com, Transaction};
use crate::ids::{ObjId, ParamId, TempVar};
use crate::lexer::{tokenize, Keyword, Token, TokenKind};

/// Errors raised by the parser (including lexical errors).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source text.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a source file containing zero or more transactions.
pub fn parse_program(src: &str) -> Result<Vec<Transaction>, ParseError> {
    let tokens = tokenize(src).map_err(|e| ParseError {
        message: e.message,
        offset: e.offset,
    })?;
    let mut p = Parser::new(tokens);
    let mut txns = Vec::new();
    while !p.at_eof() {
        txns.push(p.transaction()?);
    }
    Ok(txns)
}

/// Parses a single transaction; errors if trailing input remains.
pub fn parse_transaction(src: &str) -> Result<Transaction, ParseError> {
    let txns = parse_program(src)?;
    match txns.len() {
        1 => Ok(txns.into_iter().next().expect("checked length")),
        n => Err(ParseError {
            message: format!("expected exactly one transaction, found {n}"),
            offset: 0,
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: Vec<ParamId>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            params: Vec::new(),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Keyword(k) if *k == kw => {
                self.bump();
                Ok(())
            }
            other => self.error(format!("expected keyword {kw:?}, found {other:?}")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn transaction(&mut self) -> Result<Transaction, ParseError> {
        self.expect_keyword(Keyword::Transaction)?;
        let name = self.ident("transaction name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                params.push(ParamId::new(self.ident("parameter name")?));
                if matches!(self.peek(), TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.params = params.clone();
        let body = self.block()?;
        self.params.clear();
        Ok(Transaction::new(name, params, body))
    }

    fn block(&mut self) -> Result<Com, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut cmds = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace) {
            if self.at_eof() {
                return self.error("unterminated block");
            }
            cmds.push(self.stmt()?);
        }
        self.bump(); // consume `}`
        Ok(Com::seq_all(cmds))
    }

    fn stmt(&mut self) -> Result<Com, ParseError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Skip) => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Com::Skip)
            }
            TokenKind::Keyword(Keyword::Write) => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let obj = self.obj_name()?;
                self.expect(&TokenKind::Eq, "`=`")?;
                let e = self.aexp()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Com::Write(obj, e))
            }
            TokenKind::Keyword(Keyword::Print) => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let e = self.aexp()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Com::Print(e))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.bexp()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                self.expect_keyword(Keyword::Then)?;
                let then_branch = self.block()?;
                let else_branch = if matches!(self.peek(), TokenKind::Keyword(Keyword::Else)) {
                    self.bump();
                    self.block()?
                } else {
                    Com::Skip
                };
                Ok(Com::if_then_else(cond, then_branch, else_branch))
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.expect(&TokenKind::Assign, "`:=`")?;
                let e = self.aexp()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Com::Assign(TempVar::new(name), e))
            }
            other => self.error(format!("expected statement, found {other:?}")),
        }
    }

    fn obj_name(&mut self) -> Result<ObjId, ParseError> {
        let base = self.ident("object name")?;
        if matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            // A structured index: dot-separated components, each an integer
            // or an identifier — `stock[42]`, `stock[0.1.2]` (TPC-C's
            // warehouse.district.item), `seat[row.7]`. The textual form is
            // preserved verbatim in the object id.
            let mut index = self.index_component()?;
            while matches!(self.peek(), TokenKind::Dot) {
                self.bump();
                index.push('.');
                index.push_str(&self.index_component()?);
            }
            self.expect(&TokenKind::RBracket, "`]`")?;
            Ok(ObjId::new(format!("{base}[{index}]")))
        } else {
            Ok(ObjId::new(base))
        }
    }

    fn index_component(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Int(n) => Ok(n.to_string()),
            TokenKind::Ident(name) => Ok(name),
            other => self.error(format!("expected array index, found {other:?}")),
        }
    }

    fn aexp(&mut self) -> Result<AExp, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                TokenKind::Plus => {
                    self.bump();
                    lhs = lhs.add(self.term()?);
                }
                TokenKind::Minus => {
                    self.bump();
                    lhs = lhs.sub(self.term()?);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<AExp, ParseError> {
        let mut lhs = self.factor()?;
        while matches!(self.peek(), TokenKind::Star) {
            self.bump();
            lhs = lhs.mul(self.factor()?);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<AExp, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(AExp::Const(n))
            }
            TokenKind::Minus => {
                self.bump();
                // Fold a literal sign into the constant so that `-1` parses
                // to the same AST the builder produces (`Const(-1)`).
                if let TokenKind::Int(n) = self.peek() {
                    let n = *n;
                    self.bump();
                    return Ok(AExp::Const(-n));
                }
                Ok(self.factor()?.neg())
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.aexp()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Keyword(Keyword::Read) => {
                self.bump();
                self.expect(&TokenKind::LParen, "`(`")?;
                let obj = self.obj_name()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(AExp::Read(obj))
            }
            TokenKind::Ident(name) => {
                self.bump();
                let pid = ParamId::new(&name);
                if self.params.contains(&pid) {
                    Ok(AExp::Param(pid))
                } else {
                    Ok(AExp::Var(TempVar::new(name)))
                }
            }
            other => self.error(format!("expected expression, found {other:?}")),
        }
    }

    fn bexp(&mut self) -> Result<BExp, ParseError> {
        let mut lhs = self.bterm()?;
        while matches!(self.peek(), TokenKind::OrOr) {
            self.bump();
            lhs = lhs.or(self.bterm()?);
        }
        Ok(lhs)
    }

    fn bterm(&mut self) -> Result<BExp, ParseError> {
        let mut lhs = self.bfactor()?;
        while matches!(self.peek(), TokenKind::AndAnd) {
            self.bump();
            lhs = lhs.and(self.bfactor()?);
        }
        Ok(lhs)
    }

    fn bfactor(&mut self) -> Result<BExp, ParseError> {
        match self.peek().clone() {
            TokenKind::Bang => {
                self.bump();
                Ok(self.bfactor()?.not())
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(BExp::True)
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(BExp::False)
            }
            TokenKind::LParen => {
                // `(` can start either a parenthesized boolean expression or
                // the left operand of a comparison; backtrack if the boolean
                // reading does not pan out.
                let saved = self.pos;
                self.bump();
                if let Ok(inner) = self.bexp() {
                    if matches!(self.peek(), TokenKind::RParen) {
                        let after_rparen = self.tokens[self.pos + 1].kind.clone();
                        let is_arith_continuation = matches!(
                            after_rparen,
                            TokenKind::Plus
                                | TokenKind::Minus
                                | TokenKind::Star
                                | TokenKind::Lt
                                | TokenKind::Le
                                | TokenKind::Gt
                                | TokenKind::Ge
                                | TokenKind::Eq
                                | TokenKind::Ne
                        );
                        if !is_arith_continuation {
                            self.bump();
                            return Ok(inner);
                        }
                    }
                }
                self.pos = saved;
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<BExp, ParseError> {
        let lhs = self.aexp()?;
        let op = self.bump();
        let make = |l: AExp, r: AExp, op: CmpOp| BExp::Cmp(Box::new(l), op, Box::new(r));
        match op {
            TokenKind::Lt => Ok(make(lhs, self.aexp()?, CmpOp::Lt)),
            TokenKind::Le => Ok(make(lhs, self.aexp()?, CmpOp::Le)),
            TokenKind::Eq => Ok(make(lhs, self.aexp()?, CmpOp::Eq)),
            TokenKind::Gt => Ok(lhs.gt(self.aexp()?)),
            TokenKind::Ge => Ok(lhs.ge(self.aexp()?)),
            TokenKind::Ne => Ok(lhs.ne(self.aexp()?)),
            other => self.error(format!("expected comparison operator, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::Evaluator;
    use crate::programs;

    const T1_SRC: &str = r#"
        transaction T1() {
          xh := read(x);
          yh := read(y);
          if (xh + yh < 10) then {
            write(x = xh + 1);
          } else {
            write(x = xh - 1);
          }
        }
    "#;

    #[test]
    fn parses_t1_equal_to_builder_version() {
        let parsed = parse_transaction(T1_SRC).unwrap();
        assert_eq!(parsed, programs::t1());
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        for txn in [
            programs::t1(),
            programs::t2(),
            programs::t3(),
            programs::t4(),
            programs::remote_write_example(),
        ] {
            let printed = crate::pretty::transaction_to_string(&txn);
            let reparsed = parse_transaction(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse {}:\n{printed}\n{e}", txn.name));
            // Names with punctuation are normalised by the lexer, so compare
            // bodies and parameter lists only.
            assert_eq!(reparsed.params, txn.params, "params of {}", txn.name);
            assert_eq!(reparsed.body, txn.body, "body of {}", txn.name);
        }
    }

    #[test]
    fn parameters_resolve_to_params_not_temps() {
        let src = r#"
            transaction pay(amount) {
              bal := read(balance);
              write(balance = bal - amount);
            }
        "#;
        let txn = parse_transaction(src).unwrap();
        assert_eq!(txn.params.len(), 1);
        let db = Database::from_pairs([("balance", 100)]);
        let out = Evaluator::eval(&txn, &db, &[30]).unwrap();
        assert_eq!(out.database.get(&"balance".into()), 70);
    }

    #[test]
    fn parses_boolean_operators_and_comparisons() {
        let src = r#"
            transaction t() {
              a := read(x);
              if (a >= 3 && !(a = 5) || a < 0) then {
                print(a);
              }
            }
        "#;
        let txn = parse_transaction(src).unwrap();
        let run = |x: i64| {
            Evaluator::eval(&txn, &Database::from_pairs([("x", x)]), &[])
                .unwrap()
                .log
                .len()
        };
        assert_eq!(run(3), 1);
        assert_eq!(run(5), 0);
        assert_eq!(run(-1), 1);
        assert_eq!(run(1), 0);
    }

    #[test]
    fn parses_parenthesized_boolean_groups() {
        let src = r#"
            transaction t() {
              a := read(x);
              if ((a < 1 || a > 9) && (a + 1) < 100) then {
                print(1);
              }
            }
        "#;
        let txn = parse_transaction(src).unwrap();
        let run = |x: i64| {
            Evaluator::eval(&txn, &Database::from_pairs([("x", x)]), &[])
                .unwrap()
                .log
                .len()
        };
        assert_eq!(run(0), 1);
        assert_eq!(run(5), 0);
        assert_eq!(run(10), 1);
    }

    #[test]
    fn parses_array_indexed_objects() {
        let src = r#"
            transaction t() {
              q := read(stock[7]);
              write(stock[7] = q - 1);
            }
        "#;
        let txn = parse_transaction(src).unwrap();
        let db = Database::from_pairs([("stock[7]", 4)]);
        let out = Evaluator::eval(&txn, &db, &[]).unwrap();
        assert_eq!(out.database.get(&"stock[7]".into()), 3);
    }

    #[test]
    fn parses_structured_array_indices() {
        // Dot-separated index components: TPC-C's warehouse.district.item
        // namespace and mixed identifier/number forms — and they round-trip
        // through the pretty printer (what program registration relies on).
        let src = r#"
            transaction t() {
              q := read(stock[0.1.2]);
              write(stock[0.1.2] = q - 1);
              write(seat[row.7] = 1);
              write(sale[cold.0] = 2);
            }
        "#;
        let txn = parse_transaction(src).unwrap();
        let db = Database::from_pairs([("stock[0.1.2]", 4)]);
        let out = Evaluator::eval(&txn, &db, &[]).unwrap();
        assert_eq!(out.database.get(&"stock[0.1.2]".into()), 3);
        assert_eq!(out.database.get(&"seat[row.7]".into()), 1);
        let printed = crate::pretty::transaction_to_string(&txn);
        assert_eq!(parse_transaction(&printed).unwrap(), txn);
    }

    #[test]
    fn program_with_multiple_transactions() {
        let src = format!("{T1_SRC}\n transaction T0() {{ skip; }}");
        let txns = parse_program(&src).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[1].name, "T0");
        assert_eq!(txns[1].body, Com::Skip);
    }

    #[test]
    fn error_reports_offset_and_message() {
        let err = parse_transaction("transaction t() { write(x 1); }").unwrap_err();
        assert!(err.message.contains("expected `=`"), "{err}");
        assert!(err.offset > 0);
    }

    #[test]
    fn missing_semicolon_is_rejected() {
        assert!(parse_transaction("transaction t() { skip }").is_err());
    }

    #[test]
    fn parse_transaction_rejects_multiple() {
        let src = "transaction a() { skip; } transaction b() { skip; }";
        assert!(parse_transaction(src).is_err());
        assert_eq!(parse_program(src).unwrap().len(), 2);
    }
}
