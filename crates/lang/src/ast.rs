//! Abstract syntax of the language `L` (Figure 5 of the paper).
//!
//! ```text
//! (AExp)   e ::= n | p | x̂ | e0 ⊕ e1 | -e | read(x)
//! (BExp)   b ::= true | false | e0 ⋈ e1 | b0 ∧ b1 | ¬b
//! (Com)    c ::= skip | x̂ := e | c0; c1 | if b then c1 else c2
//!              | write(x = e) | print(e)
//! (Trans)  T ::= {c} (P)
//! ⊕ ::= + | *        ⋈ ::= < | = | ≤
//! ```
//!
//! The AST also carries a few derived conveniences (subtraction as
//! `e0 + (-e1)`, `>`/`≥`/`≠` as negations, `∨` via De Morgan) that are pure
//! sugar over the paper's grammar — constructors normalise them so that the
//! analysis only ever sees the primitive forms.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ObjId, ParamId, TempVar};

/// Arithmetic expressions over integers.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AExp {
    /// Integer literal `n`.
    Const(i64),
    /// Formal transaction parameter `p`.
    Param(ParamId),
    /// Temporary variable `x̂`.
    Var(TempVar),
    /// `read(x)` — the current value of database object `x`.
    Read(ObjId),
    /// `e0 + e1`.
    Add(Box<AExp>, Box<AExp>),
    /// `e0 * e1`.
    Mul(Box<AExp>, Box<AExp>),
    /// `-e`.
    Neg(Box<AExp>),
}

/// Comparison operators allowed in `L` (`<`, `=`, `≤`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Debug)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Equality.
    Eq,
    /// Less than or equal.
    Le,
}

impl CmpOp {
    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Le => lhs <= rhs,
        }
    }

    /// The operator symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Eq => "=",
            CmpOp::Le => "<=",
        }
    }
}

/// Boolean expressions.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BExp {
    /// Literal `true`.
    True,
    /// Literal `false`.
    False,
    /// `e0 ⋈ e1`.
    Cmp(Box<AExp>, CmpOp, Box<AExp>),
    /// `b0 ∧ b1`.
    And(Box<BExp>, Box<BExp>),
    /// `¬b`.
    Not(Box<BExp>),
}

/// Commands.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Com {
    /// `skip` — no effect.
    Skip,
    /// `x̂ := e` — assign to a temporary variable.
    Assign(TempVar, AExp),
    /// `c0 ; c1` — sequencing.
    Seq(Box<Com>, Box<Com>),
    /// `if b then c1 else c2`.
    If(BExp, Box<Com>, Box<Com>),
    /// `write(x = e)` — store the value of `e` into database object `x`.
    Write(ObjId, AExp),
    /// `print(e)` — append the value of `e` to the externally visible log.
    Print(AExp),
}

/// A transaction `{c}(P)`: a named command with a list of integer parameters.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Human-readable transaction name (used by catalogs and diagnostics).
    pub name: String,
    /// Formal parameters, in declaration order.
    pub params: Vec<ParamId>,
    /// The transaction body.
    pub body: Com,
}

// ---------------------------------------------------------------------------
// Constructors / sugar
// ---------------------------------------------------------------------------

impl AExp {
    /// `read(x)` for a named object.
    pub fn read(obj: impl Into<ObjId>) -> Self {
        AExp::Read(obj.into())
    }

    /// A temporary-variable reference.
    pub fn var(v: impl Into<TempVar>) -> Self {
        AExp::Var(v.into())
    }

    /// A parameter reference.
    pub fn param(p: impl Into<ParamId>) -> Self {
        AExp::Param(p.into())
    }

    // The arithmetic builder methods below deliberately shadow the std ops
    // names: they are the surface syntax of the `L` expression DSL
    // (`x.add(y)` reads as the paper's `x + y`), and taking `self` by value
    // keeps construction allocation-free in the common chaining case.

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: AExp) -> Self {
        AExp::Add(Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`, encoded as `self + (-rhs)`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: AExp) -> Self {
        AExp::Add(Box::new(self), Box::new(AExp::Neg(Box::new(rhs))))
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: AExp) -> Self {
        AExp::Mul(Box::new(self), Box::new(rhs))
    }

    /// `-self`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Self {
        AExp::Neg(Box::new(self))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: AExp) -> BExp {
        BExp::Cmp(Box::new(self), CmpOp::Lt, Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: AExp) -> BExp {
        BExp::Cmp(Box::new(self), CmpOp::Le, Box::new(rhs))
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: AExp) -> BExp {
        BExp::Cmp(Box::new(self), CmpOp::Eq, Box::new(rhs))
    }

    /// `self > rhs`, encoded as `¬(self ≤ rhs)`.
    pub fn gt(self, rhs: AExp) -> BExp {
        BExp::Not(Box::new(self.le(rhs)))
    }

    /// `self >= rhs`, encoded as `¬(self < rhs)`.
    pub fn ge(self, rhs: AExp) -> BExp {
        BExp::Not(Box::new(self.lt(rhs)))
    }

    /// `self != rhs`, encoded as `¬(self = rhs)`.
    pub fn ne(self, rhs: AExp) -> BExp {
        BExp::Not(Box::new(self.eq(rhs)))
    }

    /// The set of database objects read (transitively) by this expression.
    pub fn reads(&self) -> BTreeSet<ObjId> {
        let mut out = BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeSet<ObjId>) {
        match self {
            AExp::Const(_) | AExp::Param(_) | AExp::Var(_) => {}
            AExp::Read(x) => {
                out.insert(x.clone());
            }
            AExp::Add(a, b) | AExp::Mul(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            AExp::Neg(a) => a.collect_reads(out),
        }
    }

    /// The set of temporary variables referenced by this expression.
    pub fn temp_vars(&self) -> BTreeSet<TempVar> {
        let mut out = BTreeSet::new();
        self.collect_temp_vars(&mut out);
        out
    }

    fn collect_temp_vars(&self, out: &mut BTreeSet<TempVar>) {
        match self {
            AExp::Const(_) | AExp::Param(_) | AExp::Read(_) => {}
            AExp::Var(v) => {
                out.insert(v.clone());
            }
            AExp::Add(a, b) | AExp::Mul(a, b) => {
                a.collect_temp_vars(out);
                b.collect_temp_vars(out);
            }
            AExp::Neg(a) => a.collect_temp_vars(out),
        }
    }

    /// The set of parameters referenced by this expression.
    pub fn params(&self) -> BTreeSet<ParamId> {
        let mut out = BTreeSet::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut BTreeSet<ParamId>) {
        match self {
            AExp::Const(_) | AExp::Var(_) | AExp::Read(_) => {}
            AExp::Param(p) => {
                out.insert(p.clone());
            }
            AExp::Add(a, b) | AExp::Mul(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            AExp::Neg(a) => a.collect_params(out),
        }
    }

    /// Substitutes expression `e` for every occurrence of temporary variable
    /// `v` (`self{e/v}` in the paper's notation).
    pub fn subst_var(&self, v: &TempVar, e: &AExp) -> AExp {
        match self {
            AExp::Var(w) if w == v => e.clone(),
            AExp::Const(_) | AExp::Param(_) | AExp::Var(_) | AExp::Read(_) => self.clone(),
            AExp::Add(a, b) => AExp::Add(Box::new(a.subst_var(v, e)), Box::new(b.subst_var(v, e))),
            AExp::Mul(a, b) => AExp::Mul(Box::new(a.subst_var(v, e)), Box::new(b.subst_var(v, e))),
            AExp::Neg(a) => AExp::Neg(Box::new(a.subst_var(v, e))),
        }
    }

    /// Substitutes expression `e` for every `read(x)` of database object `x`
    /// (`self{e/x}` in the paper's notation, used by the `write` rule).
    pub fn subst_read(&self, x: &ObjId, e: &AExp) -> AExp {
        match self {
            AExp::Read(y) if y == x => e.clone(),
            AExp::Const(_) | AExp::Param(_) | AExp::Var(_) | AExp::Read(_) => self.clone(),
            AExp::Add(a, b) => {
                AExp::Add(Box::new(a.subst_read(x, e)), Box::new(b.subst_read(x, e)))
            }
            AExp::Mul(a, b) => {
                AExp::Mul(Box::new(a.subst_read(x, e)), Box::new(b.subst_read(x, e)))
            }
            AExp::Neg(a) => AExp::Neg(Box::new(a.subst_read(x, e))),
        }
    }

    /// Substitutes a constant for every occurrence of parameter `p`.
    pub fn subst_param(&self, p: &ParamId, value: i64) -> AExp {
        match self {
            AExp::Param(q) if q == p => AExp::Const(value),
            AExp::Const(_) | AExp::Param(_) | AExp::Var(_) | AExp::Read(_) => self.clone(),
            AExp::Add(a, b) => AExp::Add(
                Box::new(a.subst_param(p, value)),
                Box::new(b.subst_param(p, value)),
            ),
            AExp::Mul(a, b) => AExp::Mul(
                Box::new(a.subst_param(p, value)),
                Box::new(b.subst_param(p, value)),
            ),
            AExp::Neg(a) => AExp::Neg(Box::new(a.subst_param(p, value))),
        }
    }

    /// Returns `Some(n)` when the expression is a constant (possibly after
    /// folding additions, multiplications and negations of constants).
    pub fn const_fold(&self) -> Option<i64> {
        match self {
            AExp::Const(n) => Some(*n),
            AExp::Param(_) | AExp::Var(_) | AExp::Read(_) => None,
            AExp::Add(a, b) => Some(a.const_fold()?.wrapping_add(b.const_fold()?)),
            AExp::Mul(a, b) => Some(a.const_fold()?.wrapping_mul(b.const_fold()?)),
            AExp::Neg(a) => Some(a.const_fold()?.wrapping_neg()),
        }
    }
}

impl From<i64> for AExp {
    fn from(n: i64) -> Self {
        AExp::Const(n)
    }
}

impl BExp {
    /// Conjunction `self ∧ rhs` with unit simplification.
    pub fn and(self, rhs: BExp) -> BExp {
        match (&self, &rhs) {
            (BExp::True, _) => rhs,
            (_, BExp::True) => self,
            (BExp::False, _) | (_, BExp::False) => BExp::False,
            _ => BExp::And(Box::new(self), Box::new(rhs)),
        }
    }

    /// Negation `¬self` with double-negation elimination.
    ///
    /// Named after the paper's `¬` rather than implementing `std::ops::Not`:
    /// the simplifying constructor is part of the DSL surface next to
    /// [`BExp::and`].
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> BExp {
        match self {
            BExp::True => BExp::False,
            BExp::False => BExp::True,
            BExp::Not(inner) => *inner,
            other => BExp::Not(Box::new(other)),
        }
    }

    /// Disjunction encoded through De Morgan: `¬(¬a ∧ ¬b)`.
    pub fn or(self, rhs: BExp) -> BExp {
        match (&self, &rhs) {
            (BExp::False, _) => rhs,
            (_, BExp::False) => self,
            (BExp::True, _) | (_, BExp::True) => BExp::True,
            _ => self.not().and(rhs.not()).not(),
        }
    }

    /// Conjunction of an iterator of formulas.
    pub fn conj(parts: impl IntoIterator<Item = BExp>) -> BExp {
        parts
            .into_iter()
            .fold(BExp::True, |acc, next| acc.and(next))
    }

    /// The database objects read by this formula.
    pub fn reads(&self) -> BTreeSet<ObjId> {
        let mut out = BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeSet<ObjId>) {
        match self {
            BExp::True | BExp::False => {}
            BExp::Cmp(a, _, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            BExp::And(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            BExp::Not(a) => a.collect_reads(out),
        }
    }

    /// The temporary variables referenced by this formula.
    pub fn temp_vars(&self) -> BTreeSet<TempVar> {
        let mut out = BTreeSet::new();
        self.collect_temp_vars(&mut out);
        out
    }

    fn collect_temp_vars(&self, out: &mut BTreeSet<TempVar>) {
        match self {
            BExp::True | BExp::False => {}
            BExp::Cmp(a, _, b) => {
                a.collect_temp_vars(out);
                b.collect_temp_vars(out);
            }
            BExp::And(a, b) => {
                a.collect_temp_vars(out);
                b.collect_temp_vars(out);
            }
            BExp::Not(a) => a.collect_temp_vars(out),
        }
    }

    /// The parameters referenced by this formula.
    pub fn params(&self) -> BTreeSet<ParamId> {
        let mut out = BTreeSet::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut BTreeSet<ParamId>) {
        match self {
            BExp::True | BExp::False => {}
            BExp::Cmp(a, _, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            BExp::And(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            BExp::Not(a) => a.collect_params(out),
        }
    }

    /// Substitutes an arithmetic expression for a temporary variable in all
    /// atoms.
    pub fn subst_var(&self, v: &TempVar, e: &AExp) -> BExp {
        match self {
            BExp::True | BExp::False => self.clone(),
            BExp::Cmp(a, op, b) => BExp::Cmp(
                Box::new(a.subst_var(v, e)),
                *op,
                Box::new(b.subst_var(v, e)),
            ),
            BExp::And(a, b) => BExp::And(Box::new(a.subst_var(v, e)), Box::new(b.subst_var(v, e))),
            BExp::Not(a) => BExp::Not(Box::new(a.subst_var(v, e))),
        }
    }

    /// Substitutes an arithmetic expression for `read(x)` in all atoms.
    pub fn subst_read(&self, x: &ObjId, e: &AExp) -> BExp {
        match self {
            BExp::True | BExp::False => self.clone(),
            BExp::Cmp(a, op, b) => BExp::Cmp(
                Box::new(a.subst_read(x, e)),
                *op,
                Box::new(b.subst_read(x, e)),
            ),
            BExp::And(a, b) => {
                BExp::And(Box::new(a.subst_read(x, e)), Box::new(b.subst_read(x, e)))
            }
            BExp::Not(a) => BExp::Not(Box::new(a.subst_read(x, e))),
        }
    }

    /// Substitutes a constant for a parameter in all atoms.
    pub fn subst_param(&self, p: &ParamId, value: i64) -> BExp {
        match self {
            BExp::True | BExp::False => self.clone(),
            BExp::Cmp(a, op, b) => BExp::Cmp(
                Box::new(a.subst_param(p, value)),
                *op,
                Box::new(b.subst_param(p, value)),
            ),
            BExp::And(a, b) => BExp::And(
                Box::new(a.subst_param(p, value)),
                Box::new(b.subst_param(p, value)),
            ),
            BExp::Not(a) => BExp::Not(Box::new(a.subst_param(p, value))),
        }
    }
}

impl Com {
    /// Sequencing `self ; next`, eliding `skip`s.
    pub fn then(self, next: Com) -> Com {
        match (&self, &next) {
            (Com::Skip, _) => next,
            (_, Com::Skip) => self,
            _ => Com::Seq(Box::new(self), Box::new(next)),
        }
    }

    /// Sequences an iterator of commands.
    pub fn seq_all(cmds: impl IntoIterator<Item = Com>) -> Com {
        cmds.into_iter().fold(Com::Skip, |acc, c| acc.then(c))
    }

    /// `if cond then then_branch else else_branch`.
    pub fn if_then_else(cond: BExp, then_branch: Com, else_branch: Com) -> Com {
        Com::If(cond, Box::new(then_branch), Box::new(else_branch))
    }

    /// The set of database objects this command may write.
    pub fn writes(&self) -> BTreeSet<ObjId> {
        let mut out = BTreeSet::new();
        self.collect_writes(&mut out);
        out
    }

    fn collect_writes(&self, out: &mut BTreeSet<ObjId>) {
        match self {
            Com::Skip | Com::Assign(_, _) | Com::Print(_) => {}
            Com::Write(x, _) => {
                out.insert(x.clone());
            }
            Com::Seq(a, b) => {
                a.collect_writes(out);
                b.collect_writes(out);
            }
            Com::If(_, a, b) => {
                a.collect_writes(out);
                b.collect_writes(out);
            }
        }
    }

    /// The set of database objects this command may read (in expressions,
    /// conditions, or written values).
    pub fn reads(&self) -> BTreeSet<ObjId> {
        let mut out = BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeSet<ObjId>) {
        match self {
            Com::Skip => {}
            Com::Assign(_, e) | Com::Write(_, e) | Com::Print(e) => e.collect_reads(out),
            Com::Seq(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Com::If(b, t, e) => {
                b.collect_reads(out);
                t.collect_reads(out);
                e.collect_reads(out);
            }
        }
    }

    /// The set of parameters referenced anywhere in the command.
    pub fn params(&self) -> BTreeSet<ParamId> {
        let mut out = BTreeSet::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut BTreeSet<ParamId>) {
        match self {
            Com::Skip => {}
            Com::Assign(_, e) | Com::Write(_, e) | Com::Print(e) => e.collect_params(out),
            Com::Seq(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Com::If(b, t, e) => {
                b.collect_params(out);
                t.collect_params(out);
                e.collect_params(out);
            }
        }
    }

    /// Substitutes a constant for a parameter throughout the command.
    pub fn subst_param(&self, p: &ParamId, value: i64) -> Com {
        match self {
            Com::Skip => Com::Skip,
            Com::Assign(v, e) => Com::Assign(v.clone(), e.subst_param(p, value)),
            Com::Write(x, e) => Com::Write(x.clone(), e.subst_param(p, value)),
            Com::Print(e) => Com::Print(e.subst_param(p, value)),
            Com::Seq(a, b) => Com::Seq(
                Box::new(a.subst_param(p, value)),
                Box::new(b.subst_param(p, value)),
            ),
            Com::If(b, t, e) => Com::If(
                b.subst_param(p, value),
                Box::new(t.subst_param(p, value)),
                Box::new(e.subst_param(p, value)),
            ),
        }
    }

    /// The number of AST nodes in the command (used by tests and by the
    /// analysis to bound path explosion).
    pub fn size(&self) -> usize {
        match self {
            Com::Skip => 1,
            Com::Assign(_, _) | Com::Write(_, _) | Com::Print(_) => 1,
            Com::Seq(a, b) => 1 + a.size() + b.size(),
            Com::If(_, t, e) => 1 + t.size() + e.size(),
        }
    }
}

impl Transaction {
    /// Creates a new transaction.
    pub fn new(name: impl Into<String>, params: Vec<ParamId>, body: Com) -> Self {
        Transaction {
            name: name.into(),
            params,
            body,
        }
    }

    /// Creates a parameterless transaction.
    pub fn simple(name: impl Into<String>, body: Com) -> Self {
        Self::new(name, Vec::new(), body)
    }

    /// Database objects this transaction may write.
    pub fn write_set(&self) -> BTreeSet<ObjId> {
        self.body.writes()
    }

    /// Database objects this transaction may read.
    pub fn read_set(&self) -> BTreeSet<ObjId> {
        self.body.reads()
    }

    /// Instantiates the transaction's parameters with concrete values,
    /// producing a closed (parameterless) transaction.
    ///
    /// # Panics
    /// Panics if `args.len() != self.params.len()`.
    pub fn instantiate(&self, args: &[i64]) -> Transaction {
        assert_eq!(
            args.len(),
            self.params.len(),
            "transaction {} expects {} arguments, got {}",
            self.name,
            self.params.len(),
            args.len()
        );
        let mut body = self.body.clone();
        for (p, v) in self.params.iter().zip(args) {
            body = body.subst_param(p, *v);
        }
        Transaction {
            name: format!("{}({:?})", self.name, args),
            params: Vec::new(),
            body,
        }
    }
}

impl fmt::Debug for AExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::aexp_to_string(self))
    }
}

impl fmt::Debug for BExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::bexp_to_string(self))
    }
}

impl fmt::Debug for Com {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::com_to_string(self))
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::transaction_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> AExp {
        AExp::read("x")
    }

    #[test]
    fn sugar_builds_primitive_forms() {
        // a - b  ==>  a + (-b)
        let e = x().sub(AExp::Const(1));
        match e {
            AExp::Add(_, b) => assert!(matches!(*b, AExp::Neg(_))),
            _ => panic!("sub should lower to add/neg"),
        }
        // a > b ==> ¬(a ≤ b)
        let b = x().gt(AExp::Const(0));
        assert!(matches!(b, BExp::Not(_)));
    }

    #[test]
    fn and_simplifies_units() {
        assert_eq!(
            BExp::True.and(x().lt(AExp::Const(3))),
            x().lt(AExp::Const(3))
        );
        assert_eq!(BExp::False.and(BExp::True), BExp::False);
        assert_eq!(
            x().lt(AExp::Const(3)).and(BExp::True),
            x().lt(AExp::Const(3))
        );
    }

    #[test]
    fn not_eliminates_double_negation() {
        let b = x().lt(AExp::Const(3));
        assert_eq!(b.clone().not().not(), b);
        assert_eq!(BExp::True.not(), BExp::False);
    }

    #[test]
    fn read_and_write_sets() {
        let c = Com::Write(ObjId::new("x"), AExp::read("y").add(AExp::read("z")))
            .then(Com::Print(AExp::read("w")));
        assert_eq!(
            c.reads()
                .into_iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>(),
            vec!["w", "y", "z"]
        );
        assert_eq!(
            c.writes()
                .into_iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>(),
            vec!["x"]
        );
    }

    #[test]
    fn substitution_of_temp_vars() {
        // (x̂ + 1){read(x)/x̂} == read(x) + 1
        let e = AExp::var("t").add(AExp::Const(1));
        let got = e.subst_var(&TempVar::new("t"), &x());
        assert_eq!(got, x().add(AExp::Const(1)));
    }

    #[test]
    fn substitution_of_reads() {
        // (read(x) + read(y)){read(x)+1 / x} == (read(x)+1) + read(y)
        let e = x().add(AExp::read("y"));
        let got = e.subst_read(&ObjId::new("x"), &x().add(AExp::Const(1)));
        assert_eq!(got, x().add(AExp::Const(1)).add(AExp::read("y")));
    }

    #[test]
    fn parameter_instantiation() {
        let t = Transaction::new(
            "t",
            vec![ParamId::new("p")],
            Com::Write(ObjId::new("x"), AExp::param("p").add(AExp::Const(1))),
        );
        let closed = t.instantiate(&[41]);
        assert!(closed.params.is_empty());
        assert_eq!(
            closed.body,
            Com::Write(ObjId::new("x"), AExp::Const(41).add(AExp::Const(1)))
        );
    }

    #[test]
    #[should_panic(expected = "expects 1 arguments")]
    fn instantiate_with_wrong_arity_panics() {
        let t = Transaction::new(
            "t",
            vec![ParamId::new("p")],
            Com::Write(ObjId::new("x"), AExp::param("p")),
        );
        let _ = t.instantiate(&[]);
    }

    #[test]
    fn const_folding() {
        let e = AExp::Const(2).add(AExp::Const(3)).mul(AExp::Const(4)).neg();
        assert_eq!(e.const_fold(), Some(-20));
        assert_eq!(x().add(AExp::Const(1)).const_fold(), None);
    }

    #[test]
    fn command_size_counts_nodes() {
        let c = Com::Skip.then(Com::Print(AExp::Const(1)));
        assert_eq!(c.size(), 1); // skip elided
        let c2 = Com::if_then_else(BExp::True, Com::Print(AExp::Const(1)), Com::Skip);
        assert_eq!(c2.size(), 3);
    }
}
