//! # homeo-lang
//!
//! The transaction languages **L** and **L++** from *"The Homeostasis
//! Protocol: Avoiding Transaction Coordination Through Program Analysis"*
//! (SIGMOD 2015), Section 2.
//!
//! `L` is a small, loop-free imperative language over an integer key-value
//! database. A transaction is a sequence of commands built from arithmetic
//! expressions ([`AExp`]), boolean expressions ([`BExp`]) and commands
//! ([`Com`]): `skip`, temporary-variable assignment, sequencing,
//! `if-then-else`, `write(x = e)` and `print(e)`. Transactions may take
//! integer parameters.
//!
//! `L++` ([`lpp`]) adds bounded arrays and relations with read / update /
//! insert / delete operations and bounded iteration. It adds no expressive
//! power: every `L++` program lowers to an `L` program (Appendix A of the
//! paper), and this crate implements that lowering.
//!
//! The crate provides:
//!
//! * the abstract syntax ([`ast`]), identifiers ([`ids`]) and pretty printer
//!   ([`pretty`]),
//! * integer databases with finite support ([`database`]),
//! * a deterministic evaluator ([`eval`]) producing the updated database and
//!   the print log (Definition 2.1),
//! * a lexer and recursive-descent parser for a concrete syntax
//!   ([`lexer`], [`parser`]),
//! * the higher-level language `L++` and its lowering ([`lpp`]),
//! * a convenient builder API ([`builder`]) and the example programs used
//!   throughout the paper ([`programs`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod database;
pub mod eval;
pub mod ids;
pub mod lexer;
pub mod lpp;
pub mod parser;
pub mod pretty;
pub mod programs;

pub use ast::{AExp, BExp, CmpOp, Com, Transaction};
pub use database::Database;
pub use eval::{EvalError, EvalOutcome, Evaluator, ParamBinding};
pub use ids::{ObjId, ParamId, TempVar};
pub use parser::{parse_program, parse_transaction, ParseError};
