//! Integer databases with finite support (Section 2.1).
//!
//! A database `D` is a map from objects to integers with finite support:
//! objects not explicitly present have the default value `0`.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::ObjId;

/// A database: a finite map from [`ObjId`] to `i64`, all other objects being
/// implicitly `0`.
///
/// Ordered storage (`BTreeMap`) keeps iteration deterministic, which matters
/// for reproducible protocol runs and benchmarks.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Database {
    entries: BTreeMap<ObjId, i64>,
}

impl Database {
    /// Creates an empty database (all objects 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a database from `(object, value)` pairs.
    pub fn from_pairs<I, K>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, i64)>,
        K: Into<ObjId>,
    {
        let mut db = Self::new();
        for (k, v) in pairs {
            db.set(k.into(), v);
        }
        db
    }

    /// The value of `obj` (0 if absent).
    pub fn get(&self, obj: &ObjId) -> i64 {
        self.entries.get(obj).copied().unwrap_or(0)
    }

    /// Sets the value of `obj`. Setting an object to `0` removes it from the
    /// support so that databases compare equal regardless of how zeros were
    /// produced.
    pub fn set(&mut self, obj: ObjId, value: i64) {
        if value == 0 {
            self.entries.remove(&obj);
        } else {
            self.entries.insert(obj, value);
        }
    }

    /// Adds `delta` to the value of `obj`.
    pub fn add(&mut self, obj: ObjId, delta: i64) {
        let new = self.get(&obj) + delta;
        self.set(obj, new);
    }

    /// Returns true if the object is explicitly present (has a non-zero
    /// value).
    pub fn contains(&self, obj: &ObjId) -> bool {
        self.entries.contains_key(obj)
    }

    /// The number of objects in the support.
    pub fn support_len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when no object has a non-zero value.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the support in object order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjId, i64)> {
        self.entries.iter().map(|(k, v)| (k, *v))
    }

    /// The objects in the support, in order.
    pub fn objects(&self) -> impl Iterator<Item = &ObjId> {
        self.entries.keys()
    }

    /// Merges `other` into `self`: every object in `other`'s support
    /// overwrites the corresponding value in `self`. Used when sites
    /// exchange updated objects during the protocol's cleanup phase.
    pub fn merge_from(&mut self, other: &Database) {
        for (k, v) in other.iter() {
            self.set(k.clone(), v);
        }
    }

    /// Restricts the database to objects satisfying the predicate — the
    /// `Π_i(D)` projection used in the proof of Theorem 3.8.
    pub fn project(&self, mut keep: impl FnMut(&ObjId) -> bool) -> Database {
        Database {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Returns the set of objects on which `self` and `other` differ.
    pub fn diff(&self, other: &Database) -> Vec<ObjId> {
        let mut out = Vec::new();
        for (k, v) in self.iter() {
            if other.get(k) != v {
                out.push(k.clone());
            }
        }
        for (k, _) in other.iter() {
            if !self.contains(k) && other.get(k) != self.get(k) {
                out.push(k.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (k, v) in self.iter() {
            map.entry(&k.as_str(), &v);
        }
        map.finish()
    }
}

impl<K: Into<ObjId>> FromIterator<(K, i64)> for Database {
    fn from_iter<T: IntoIterator<Item = (K, i64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_objects_default_to_zero() {
        let db = Database::new();
        assert_eq!(db.get(&ObjId::new("x")), 0);
        assert!(db.is_empty());
    }

    #[test]
    fn zero_writes_keep_support_canonical() {
        let mut a = Database::from_pairs([("x", 5)]);
        a.set(ObjId::new("x"), 0);
        let b = Database::new();
        assert_eq!(a, b);
        assert_eq!(a.support_len(), 0);
    }

    #[test]
    fn add_accumulates() {
        let mut db = Database::new();
        db.add(ObjId::new("x"), 3);
        db.add(ObjId::new("x"), -1);
        assert_eq!(db.get(&ObjId::new("x")), 2);
    }

    #[test]
    fn merge_overwrites_only_support() {
        let mut a = Database::from_pairs([("x", 1), ("y", 2)]);
        let b = Database::from_pairs([("y", 7), ("z", 9)]);
        a.merge_from(&b);
        assert_eq!(a.get(&ObjId::new("x")), 1);
        assert_eq!(a.get(&ObjId::new("y")), 7);
        assert_eq!(a.get(&ObjId::new("z")), 9);
    }

    #[test]
    fn projection_restricts_support() {
        let db = Database::from_pairs([("a", 1), ("b", 2), ("c", 3)]);
        let p = db.project(|o| o.as_str() != "b");
        assert_eq!(p.get(&ObjId::new("a")), 1);
        assert_eq!(p.get(&ObjId::new("b")), 0);
        assert_eq!(p.get(&ObjId::new("c")), 3);
    }

    #[test]
    fn diff_is_symmetric_set_of_changed_objects() {
        let a = Database::from_pairs([("x", 1), ("y", 2)]);
        let b = Database::from_pairs([("y", 2), ("z", 4)]);
        let d = a.diff(&b);
        let names: Vec<_> = d.iter().map(|o| o.as_str().to_string()).collect();
        assert_eq!(names, vec!["x", "z"]);
        assert_eq!(a.diff(&a), Vec::<ObjId>::new());
    }
}
