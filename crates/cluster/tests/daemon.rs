//! End-to-end multi-process test: real `homeostasisd` processes on
//! loopback, driven by the `tcp_load` client, conservation self-verified.
//!
//! This is the acceptance path of the deployable cluster — one OS process
//! per site, every protocol frame over the kernel's network stack — run
//! against the binary Cargo builds for this crate
//! (`CARGO_BIN_EXE_homeostasisd`), deployed through the same
//! [`DaemonFleet`] the `cluster-tcp` smoke scenario uses.

use std::path::Path;
use std::process::Command;

use homeo_cluster::{free_loopback_addrs, tcp_load, ClusterSpec, DaemonFleet};

#[test]
fn homeostasisd_processes_serve_a_conserving_cluster() {
    let spec = ClusterSpec::new(free_loopback_addrs(3).expect("reserve loopback ports"));
    let _fleet = DaemonFleet::spawn(Path::new(env!("CARGO_BIN_EXE_homeostasisd")), &spec)
        .expect("spawn homeostasisd site processes");
    let report = tcp_load(&spec, 800, 8, 11).expect("drive the cluster over TCP");
    assert_eq!(report.committed, report.issued, "operations were lost");
    assert!(
        report.synchronized > 0,
        "the load must force synchronization rounds across processes"
    );
    assert!(
        report.conserved,
        "conservation failed across processes: {report:?}"
    );
    // A second client run against the same (now drained) daemons must
    // still conserve: the baseline is the acked post-seed state, not the
    // seed values.
    let again = tcp_load(&spec, 200, 8, 12).expect("re-run the load client");
    assert!(
        again.conserved,
        "conservation failed on a reused cluster: {again:?}"
    );
}

#[test]
fn homeostasisd_rejects_bad_usage() {
    // Unknown flags and unreadable configs are usage errors (exit 2), so a
    // misconfigured CI job fails loudly instead of hanging.
    let status = Command::new(env!("CARGO_BIN_EXE_homeostasisd"))
        .arg("--nonsense")
        .status()
        .expect("run homeostasisd");
    assert_eq!(status.code(), Some(2));
    let status = Command::new(env!("CARGO_BIN_EXE_homeostasisd"))
        .args(["--config", "/definitely/not/a/file"])
        .status()
        .expect("run homeostasisd");
    assert_eq!(status.code(), Some(2));
}
